//! Verifiable analytics: TPC-H Q1/Q6/Q19 over VeriDB, with the overhead
//! of verifiability measured against a no-verification baseline — a
//! miniature of the paper's §6.3 / Figure 12 experiment.
//!
//! Run with: `cargo run --release --example analytics_tpch`

use std::time::Instant;
use veridb::{PlanOptions, PreferredJoin, VeriDb, VeriDbConfig};
use veridb_workloads::tpch::{self, TpchConfig, TpchData};

fn main() -> veridb::Result<()> {
    let cfg = TpchConfig {
        lineitem_rows: 60_000,
        part_rows: 2_000,
        ..TpchConfig::default()
    };
    println!(
        "generating TPC-H data: {} lineitem rows, {} part rows…",
        cfg.lineitem_rows, cfg.part_rows
    );
    let data = TpchData::generate(&cfg);

    let mut base_cfg = VeriDbConfig::baseline();
    base_cfg.verify_every_ops = None;
    let baseline = VeriDb::open(base_cfg)?;
    data.load(&baseline)?;

    let verified = VeriDb::open(VeriDbConfig::default())?;
    data.load(&verified)?;

    let auto = PlanOptions::default();
    let merge = PlanOptions {
        prefer_join: PreferredJoin::Merge,
        ..Default::default()
    };

    for (name, sql, opts) in [
        ("Q1 (pricing summary)", tpch::q1(), &auto),
        ("Q6 (revenue change)", tpch::q6(), &auto),
        ("Q19 (discounted revenue, MergeJoin)", tpch::q19(), &merge),
        (
            "Q3 (shipping priority — beyond the paper's set)",
            tpch::q3(),
            &auto,
        ),
    ] {
        let t0 = Instant::now();
        let b = baseline.sql_with(sql, opts)?;
        let base_s = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let v = verified.sql_with(sql, opts)?;
        let ver_s = t0.elapsed().as_secs_f64();
        assert_eq!(b.rows, v.rows, "verifiability must not change answers");
        println!(
            "\n{name}: baseline {base_s:.3}s, verified {ver_s:.3}s \
             (overhead {:.0}%)",
            (ver_s - base_s) / base_s * 100.0
        );
        println!("{}", v.to_table());
    }

    // Q19 is extremely selective; show the reference value next to the
    // engine's (NULL means verified-zero matching rows).
    let q19_ref = tpch::q19_expected(&data);
    println!("Q19 reference revenue: {q19_ref:.2}");

    // Validate against the engine-independent reference implementation.
    let q6_ref = tpch::q6_expected(&data);
    let q6_got = verified.sql(tpch::q6())?.rows[0][0].as_f64().unwrap_or(0.0);
    assert!((q6_got - q6_ref).abs() < 1e-6 * q6_ref.abs().max(1.0));
    println!("Q6 cross-checked against reference implementation: {q6_got:.2}");

    // The verified instance passes its deferred check.
    verified.verify_now()?;
    println!("deferred verification passed — results are endorsed");
    Ok(())
}
