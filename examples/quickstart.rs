//! Quickstart: open a VeriDB instance, create a table, run SQL, and check
//! the deferred verification.
//!
//! Run with: `cargo run --release --example quickstart`

use veridb::{VeriDb, VeriDbConfig};

fn main() -> veridb::Result<()> {
    // Default configuration: 8 KiB pages, 16 RSWS partitions, HMAC-SHA-256
    // digests, background verifier scanning one page per 1000 operations.
    let db = VeriDb::open(VeriDbConfig::default())?;

    // The quote table from the paper's Figure 4.
    db.sql("CREATE TABLE quote (id INT PRIMARY KEY, count INT, price INT)")?;
    db.sql("INSERT INTO quote VALUES (1,100,100),(2,100,200),(3,500,100),(4,600,100)")?;

    // Point lookup: the existence of id=1 is proved by the record
    // ⟨id1, id2, (100, $100)⟩ read from write-read consistent memory.
    let r = db.sql("SELECT * FROM quote WHERE id = 1")?;
    println!("point lookup:\n{}", r.to_table());

    // Verified absence: a miss comes with evidence too (the ⟨id4, ⊤⟩ gap).
    let r = db.sql("SELECT * FROM quote WHERE id = 99")?;
    println!(
        "verified miss: {} rows (absence is proven, not assumed)",
        r.rows.len()
    );

    // Range scan with completeness checks (Figure 5's three conditions).
    let r = db.sql("SELECT id, count FROM quote WHERE id BETWEEN 2 AND 3")?;
    println!("range scan:\n{}", r.to_table());

    // Updates and aggregation.
    db.sql("UPDATE quote SET count = count + 50 WHERE price = 100")?;
    let r = db.sql(
        "SELECT price, SUM(count) AS total, COUNT(*) AS n \
         FROM quote GROUP BY price ORDER BY price",
    )?;
    println!("aggregate:\n{}", r.to_table());

    // Look at the plan the in-enclave compiler chose.
    let plan = db.explain(
        "SELECT id FROM quote WHERE id >= 2 AND id <= 3",
        &veridb::PlanOptions::default(),
    )?;
    println!("plan:\n{plan}");

    // Deferred verification: scan every partition and check h(RS) = h(WS).
    let report = db.verify_now()?;
    println!(
        "verification passed: {} pages processed, epochs now {:?}",
        report.pages_processed, report.epochs
    );

    // Simulated SGX cost accounting.
    let costs = db.costs();
    println!(
        "simulated enclave costs: {} PRF evals, {} verified reads, {} verified writes",
        costs.prf_evals, costs.verified_reads, costs.verified_writes
    );
    Ok(())
}
