//! Multi-column `⟨key, nKey⟩` chains (the paper's §5.3, Figure 6).
//!
//! A relation with verified access methods on *two* columns keeps one copy
//! of the data but two key chains; inserts splice both chains, and range
//! scans on either column come with completeness evidence.
//!
//! Run with: `cargo run --release --example multi_column_chains`

use veridb::{PlanOptions, VeriDb, VeriDbConfig};

fn main() -> veridb::Result<()> {
    let db = VeriDb::open(VeriDbConfig::default())?;

    // Figure 6's relation: column c1 is the primary chain, c2 carries a
    // second chain (CHAINED).
    db.sql("CREATE TABLE fig6 (c1 INT PRIMARY KEY, c2 INT CHAINED, payload TEXT)")?;

    // Insert ⟨1, 4, data1⟩: chain 1 becomes ⊥→1→⊤, chain 2 becomes ⊥→4→⊤.
    db.sql("INSERT INTO fig6 VALUES (1, 4, 'data1')")?;
    // Insert ⟨3, 2, data2⟩: chain 1 becomes ⊥→1→3→⊤, chain 2 ⊥→2→4→⊤.
    db.sql("INSERT INTO fig6 VALUES (3, 2, 'data2')")?;

    let r = db.sql("SELECT * FROM fig6")?;
    println!("in c1 (primary-chain) order:\n{}", r.to_table());

    // A range scan on c2 uses the second chain — see the plan.
    let sql = "SELECT c2, c1, payload FROM fig6 WHERE c2 >= 2 AND c2 <= 4";
    println!(
        "plan for a c2 range:\n{}",
        db.explain(sql, &PlanOptions::default())?
    );
    let r = db.sql(sql)?;
    println!("in c2 (secondary-chain) order:\n{}", r.to_table());

    // Secondary chains handle duplicate values (composite keys break the
    // tie with the primary key internally).
    db.sql("CREATE TABLE events (id INT PRIMARY KEY, severity INT CHAINED, msg TEXT)")?;
    for (id, sev) in [(1, 3), (2, 1), (3, 3), (4, 2), (5, 3), (6, 1)] {
        db.sql(&format!(
            "INSERT INTO events VALUES ({id}, {sev}, 'event-{id}')"
        ))?;
    }
    let r = db.sql("SELECT id, msg FROM events WHERE severity = 3")?;
    println!(
        "all severity-3 events (verified-complete):\n{}",
        r.to_table()
    );

    // Deleting re-splices every chain the record participates in.
    db.sql("DELETE FROM events WHERE id = 3")?;
    let r = db.sql("SELECT id FROM events WHERE severity = 3")?;
    println!(
        "after deleting id=3, severity-3 events: {} rows",
        r.rows.len()
    );

    // The worst-case storage cost of extra chains is bounded: each chain
    // adds one (key, nKey) pair per record (§5.3's discussion).
    db.verify_now()?;
    println!("verification passed");
    Ok(())
}
