//! The paper's deployment scenario end to end: a client outsources its
//! database to an untrusted cloud provider and interacts with it only
//! through the attested enclave portal.
//!
//! Walks the full Figure 2 workflow:
//!   1. remote attestation (client challenges the enclave, checks the
//!      quote against the expected measurement),
//!   2. authenticated queries (MAC + unique query ids),
//!   3. endorsed results (MAC + rollback-defense sequence numbers),
//!   4. what happens when the provider misbehaves.
//!
//! Run with: `cargo run --release --example cloud_outsourcing`

use veridb::{Client, QuotingEnclave, VeriDb, VeriDbConfig};

fn main() -> veridb::Result<()> {
    // ---------- provider side -------------------------------------------------
    let db = VeriDb::open(VeriDbConfig::default())?;
    db.sql("CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT, balance FLOAT)")?;
    db.sql(
        "INSERT INTO accounts VALUES \
         (1,'alice',1200.0),(2,'bob',340.5),(3,'carol',9984.25)",
    )?;
    let portal = db.portal("client-42");

    // The platform's quoting infrastructure (Intel's role, simulated).
    let qe = QuotingEnclave::new([0xA7; 32]);

    // ---------- client side ----------------------------------------------------
    // The client knows the measurement of the genuine VeriDB build and
    // attests the enclave with a fresh nonce before trusting anything.
    let expected_measurement = db.enclave().measurement();
    let mut client = Client::attest(
        db.enclave(),
        &qe,
        &qe.verifier(),
        expected_measurement,
        portal.channel_key_for_attested_client(),
        b"nonce-7f3a",
    )?;
    println!("attestation OK — channel established");

    // Authenticated query → endorsed result → client-side verification.
    let q = client.sign_query("SELECT owner, balance FROM accounts WHERE id = 2");
    let endorsed = portal.submit(&q)?;
    let rows = client.verify_result(&q, &endorsed)?;
    println!("verified answer: {} has {}", rows[0][0], rows[0][1]);

    // Writes flow the same way.
    let q = client.sign_query("UPDATE accounts SET balance = balance - 40.5 WHERE id = 2");
    let endorsed = portal.submit(&q)?;
    client.verify_result(&q, &endorsed)?;

    let q = client.sign_query("SELECT SUM(balance) AS total FROM accounts");
    let endorsed = portal.submit(&q)?;
    let rows = client.verify_result(&q, &endorsed)?;
    println!("verified total balance: {}", rows[0][0]);

    // ---------- misbehavior ---------------------------------------------------
    // (a) The provider alters a query in flight: MAC fails.
    let mut forged = client.sign_query("SELECT * FROM accounts");
    forged.sql = "DELETE FROM accounts".into();
    match portal.submit(&forged) {
        Err(e) => println!("forged query rejected: {e}"),
        Ok(_) => unreachable!("forged query must not execute"),
    }

    // (b) The provider replays an old (authentic) query: qid is rejected.
    match portal.submit(&q) {
        Err(e) => println!("replayed query rejected: {e}"),
        Ok(_) => unreachable!("replay must not execute"),
    }

    // (c) The provider tampers with the database memory directly. The
    // deferred verifier detects it, and the portal refuses to endorse any
    // further results.
    let mem = db.memory();
    'outer: for page in mem.page_ids() {
        for slot in 0..8u16 {
            if veridb_wrcm_tamper(mem, page, slot) {
                break 'outer;
            }
        }
    }
    let _ = db.verify_now(); // the scan raises the alarm
    let q = client.sign_query("SELECT * FROM accounts");
    match portal.submit(&q) {
        Err(e) => println!("after tampering, endorsement refused: {e}"),
        Ok(_) => unreachable!("no result may be endorsed over tampered storage"),
    }
    println!(
        "client storage for the rollback defense: {} sequence interval(s)",
        client.sequence_intervals()
    );
    Ok(())
}

/// Tamper with one live cell (the adversarial host's power).
fn veridb_wrcm_tamper(mem: &std::sync::Arc<veridb::VerifiedMemory>, page: u64, slot: u16) -> bool {
    veridb_wrcm::tamper::overwrite_cell(
        mem,
        veridb_wrcm::CellAddr { page, slot },
        b"all balances are zero now",
    )
    .is_ok()
}
