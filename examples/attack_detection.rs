//! A tour of the attacks in the paper's threat model (§3.1), each mounted
//! against a live instance and each detected:
//!
//! 1. direct modification of record bytes in untrusted memory,
//! 2. replay of a stale-but-once-valid cell (why timestamps matter),
//! 3. resurrection of a deleted record,
//! 4. a lying untrusted index (omission / wrong record),
//! 5. rollback of the server to an earlier state (sequence numbers).
//!
//! Run with: `cargo run --release --example attack_detection`

use std::sync::Arc;
use veridb::{Client, Error, VeriDb, VeriDbConfig};
use veridb_storage::index::IndexLie;
use veridb_storage::{IndexOracle, MaliciousIndex, Table};
use veridb_wrcm::tamper;

fn main() -> veridb::Result<()> {
    attack_1_direct_overwrite()?;
    attack_2_stale_replay()?;
    attack_3_resurrection()?;
    attack_4_lying_index()?;
    attack_5_rollback()?;
    println!("\nall five attack classes detected ✓");
    Ok(())
}

fn fresh_db() -> veridb::Result<VeriDb> {
    let mut cfg = VeriDbConfig::default();
    cfg.verify_every_ops = None; // drive verification explicitly
    let db = VeriDb::open(cfg)?;
    db.sql("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")?;
    db.sql("INSERT INTO t VALUES (1,'one'),(2,'two'),(3,'three')")?;
    Ok(db)
}

fn first_live_cell(db: &VeriDb) -> veridb_wrcm::CellAddr {
    let mem = db.memory();
    for page in mem.page_ids() {
        for slot in 0..16u16 {
            let addr = veridb_wrcm::CellAddr { page, slot };
            if tamper::snapshot_cell(mem, addr).is_ok() {
                return addr;
            }
        }
    }
    panic!("no live cell");
}

fn attack_1_direct_overwrite() -> veridb::Result<()> {
    println!("\n[1] direct overwrite of untrusted memory");
    let db = fresh_db()?;
    let addr = first_live_cell(&db);
    tamper::overwrite_cell(db.memory(), addr, b"forged bytes!")?;
    match db.verify_now() {
        Err(Error::VerificationFailed { partition, epoch }) => {
            println!("    detected: h(RS) != h(WS) in partition {partition}, epoch {epoch}");
        }
        other => panic!("expected VerificationFailed, got {other:?}"),
    }
    Ok(())
}

fn attack_2_stale_replay() -> veridb::Result<()> {
    println!("\n[2] replay of a stale (data, timestamp) pair");
    let db = fresh_db()?;
    // The host snapshots every once-valid cell…
    let mem = db.memory();
    let mut snapshots = Vec::new();
    for page in mem.page_ids() {
        for slot in 0..16u16 {
            let addr = veridb_wrcm::CellAddr { page, slot };
            if let Ok(snap) = tamper::snapshot_cell(mem, addr) {
                snapshots.push((addr, snap));
            }
        }
    }
    // …a legitimate update supersedes the records…
    db.sql("UPDATE t SET v = 'updated' WHERE id = 1")?;
    db.sql("UPDATE t SET v = 'updated' WHERE id = 2")?;
    db.sql("UPDATE t SET v = 'updated' WHERE id = 3")?;
    // …and the host puts one genuinely superseded pair back. Without
    // per-cell timestamps in the PRF this would XOR-cancel and go
    // unnoticed.
    let (addr, (old_data, old_ts)) = snapshots
        .into_iter()
        .find(|(addr, snap)| {
            tamper::snapshot_cell(mem, *addr)
                .map(|cur| cur != *snap)
                .unwrap_or(false)
        })
        .expect("an updated cell exists");
    tamper::replay_cell(db.memory(), addr, &old_data, old_ts)?;
    match db.verify_now() {
        Err(e) => println!("    detected: {e}"),
        Ok(_) => panic!("stale replay must be detected"),
    }
    Ok(())
}

fn attack_3_resurrection() -> veridb::Result<()> {
    println!("\n[3] resurrection of a deleted record");
    let db = fresh_db()?;
    let addr = first_live_cell(&db);
    let (data, ts) = tamper::snapshot_cell(db.memory(), addr)?;
    db.sql("DELETE FROM t WHERE id = 1")?;
    db.sql("DELETE FROM t WHERE id = 2")?;
    db.sql("DELETE FROM t WHERE id = 3")?;
    tamper::resurrect_cell(db.memory(), addr.page, &data, ts)?;
    match db.verify_now() {
        Err(e) => println!("    detected: {e}"),
        Ok(_) => panic!("resurrection must be detected"),
    }
    Ok(())
}

fn attack_4_lying_index() -> veridb::Result<()> {
    println!("\n[4] lying untrusted index");
    // Build a table whose index the host controls.
    let mut cfg = VeriDbConfig::default();
    cfg.verify_every_ops = None;
    let db = VeriDb::open(cfg)?;
    let mal = Arc::new(MaliciousIndex::new());
    struct Shim(Arc<MaliciousIndex>);
    impl IndexOracle for Shim {
        fn find_floor(&self, k: &veridb_storage::ChainKey) -> Option<veridb_wrcm::CellAddr> {
            self.0.find_floor(k)
        }
        fn find_below(&self, k: &veridb_storage::ChainKey) -> Option<veridb_wrcm::CellAddr> {
            self.0.find_below(k)
        }
        fn find_exact(&self, k: &veridb_storage::ChainKey) -> Option<veridb_wrcm::CellAddr> {
            self.0.find_exact(k)
        }
        fn upsert(&self, k: veridb_storage::ChainKey, a: veridb_wrcm::CellAddr) {
            self.0.upsert(k, a)
        }
        fn remove(&self, k: &veridb_storage::ChainKey) {
            self.0.remove(k)
        }
        fn len(&self) -> usize {
            self.0.len()
        }
    }
    let schema = veridb::Schema::new(vec![
        veridb::ColumnDef::new("id", veridb::ColumnType::Int),
        veridb::ColumnDef::new("v", veridb::ColumnType::Str),
    ])?;
    let table = db.catalog().create_table_with_indexes(
        "victim",
        schema,
        vec![Box::new(Shim(Arc::clone(&mal)))],
    )?;
    for i in 1..=5 {
        table.insert(veridb::Row::new(vec![
            veridb::Value::Int(i),
            veridb::Value::Str(format!("v{i}")),
        ]))?;
    }
    // The index denies an existing key — the ⟨key, nKey⟩ evidence check
    // refuses to accept the omission.
    mal.arm(IndexLie::DenyAll);
    match table.get_by_pk(&veridb::Value::Int(3)) {
        Err(e) => println!("    omission detected: {e}"),
        Ok(_) => panic!("lying index must be detected"),
    }
    mal.disarm();
    let _ = Table::get_by_pk(&table, &veridb::Value::Int(3))?;
    println!("    honest index works again after disarm");
    Ok(())
}

fn attack_5_rollback() -> veridb::Result<()> {
    println!("\n[5] rollback attack (server reverts to an earlier state)");
    let db = fresh_db()?;
    let portal = db.portal("victim-client");
    let mut client = Client::with_key(portal.channel_key_for_attested_client());

    let q1 = client.sign_query("SELECT * FROM t WHERE id = 1");
    let e1 = portal.submit(&q1)?;
    client.verify_result(&q1, &e1)?;

    // The host "restarts" the server from an old snapshot: the reborn
    // enclave re-issues sequence numbers it has already used, so its
    // (genuinely MAC'd) answers repeat a sequence number — the one thing
    // a rollback can never avoid (§5.1). Simulate the reborn enclave by
    // endorsing a result with the stale sequence number.
    let q2 = client.sign_query("SELECT * FROM t WHERE id = 1");
    let digest = {
        let mut buf = Vec::new();
        for c in &e1.result.columns {
            buf.extend_from_slice(c.as_bytes());
            buf.push(0);
        }
        for r in &e1.result.rows {
            r.encode(&mut buf);
        }
        veridb_enclave::mac::sha256(&[b"result", &buf])
    };
    let stale = veridb::EndorsedResult {
        qid: q2.qid,
        sequence: e1.sequence,
        result: e1.result.clone(),
        mac: portal.channel_key_for_attested_client().sign(&[
            &q2.qid.to_le_bytes(),
            &e1.sequence.to_le_bytes(),
            &digest,
        ]),
    };
    match client.verify_result(&q2, &stale) {
        Err(e) => println!("    detected: {e}"),
        Ok(_) => panic!("rollback must be detected"),
    }
    Ok(())
}
