/root/repo/target/release/libveridb_integration_tests.rlib: /root/repo/tests/src/lib.rs
