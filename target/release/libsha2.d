/root/repo/target/release/libsha2.rlib: /root/repo/.stubs/sha2/src/lib.rs
