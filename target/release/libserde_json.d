/root/repo/target/release/libserde_json.rlib: /root/repo/.stubs/serde/src/lib.rs /root/repo/.stubs/serde_derive/src/lib.rs /root/repo/.stubs/serde_json/src/lib.rs
