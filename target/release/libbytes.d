/root/repo/target/release/libbytes.rlib: /root/repo/.stubs/bytes/src/lib.rs
