/root/repo/target/release/libhmac.rlib: /root/repo/.stubs/hmac/src/lib.rs /root/repo/.stubs/sha2/src/lib.rs
