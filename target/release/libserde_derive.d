/root/repo/target/release/libserde_derive.so: /root/repo/.stubs/serde_derive/src/lib.rs
