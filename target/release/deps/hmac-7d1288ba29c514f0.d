/root/repo/target/release/deps/hmac-7d1288ba29c514f0.d: .stubs/hmac/src/lib.rs

/root/repo/target/release/deps/libhmac-7d1288ba29c514f0.rlib: .stubs/hmac/src/lib.rs

/root/repo/target/release/deps/libhmac-7d1288ba29c514f0.rmeta: .stubs/hmac/src/lib.rs

.stubs/hmac/src/lib.rs:
