/root/repo/target/release/deps/veridb_common-b8737a2da2222ab6.d: crates/common/src/lib.rs crates/common/src/backoff.rs crates/common/src/codec.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/obs.rs crates/common/src/row.rs crates/common/src/schema.rs crates/common/src/value.rs

/root/repo/target/release/deps/libveridb_common-b8737a2da2222ab6.rlib: crates/common/src/lib.rs crates/common/src/backoff.rs crates/common/src/codec.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/obs.rs crates/common/src/row.rs crates/common/src/schema.rs crates/common/src/value.rs

/root/repo/target/release/deps/libveridb_common-b8737a2da2222ab6.rmeta: crates/common/src/lib.rs crates/common/src/backoff.rs crates/common/src/codec.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/obs.rs crates/common/src/row.rs crates/common/src/schema.rs crates/common/src/value.rs

crates/common/src/lib.rs:
crates/common/src/backoff.rs:
crates/common/src/codec.rs:
crates/common/src/config.rs:
crates/common/src/error.rs:
crates/common/src/obs.rs:
crates/common/src/row.rs:
crates/common/src/schema.rs:
crates/common/src/value.rs:
