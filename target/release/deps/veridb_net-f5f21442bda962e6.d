/root/repo/target/release/deps/veridb_net-f5f21442bda962e6.d: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/poll.rs crates/net/src/proto.rs crates/net/src/proxy.rs crates/net/src/server.rs

/root/repo/target/release/deps/libveridb_net-f5f21442bda962e6.rlib: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/poll.rs crates/net/src/proto.rs crates/net/src/proxy.rs crates/net/src/server.rs

/root/repo/target/release/deps/libveridb_net-f5f21442bda962e6.rmeta: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/poll.rs crates/net/src/proto.rs crates/net/src/proxy.rs crates/net/src/server.rs

crates/net/src/lib.rs:
crates/net/src/client.rs:
crates/net/src/frame.rs:
crates/net/src/poll.rs:
crates/net/src/proto.rs:
crates/net/src/proxy.rs:
crates/net/src/server.rs:
