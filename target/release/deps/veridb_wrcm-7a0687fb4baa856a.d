/root/repo/target/release/deps/veridb_wrcm-7a0687fb4baa856a.d: crates/wrcm/src/lib.rs crates/wrcm/src/cache.rs crates/wrcm/src/delta.rs crates/wrcm/src/digest.rs crates/wrcm/src/memory.rs crates/wrcm/src/page.rs crates/wrcm/src/prf.rs crates/wrcm/src/rsws.rs crates/wrcm/src/tamper.rs crates/wrcm/src/verifier.rs

/root/repo/target/release/deps/libveridb_wrcm-7a0687fb4baa856a.rlib: crates/wrcm/src/lib.rs crates/wrcm/src/cache.rs crates/wrcm/src/delta.rs crates/wrcm/src/digest.rs crates/wrcm/src/memory.rs crates/wrcm/src/page.rs crates/wrcm/src/prf.rs crates/wrcm/src/rsws.rs crates/wrcm/src/tamper.rs crates/wrcm/src/verifier.rs

/root/repo/target/release/deps/libveridb_wrcm-7a0687fb4baa856a.rmeta: crates/wrcm/src/lib.rs crates/wrcm/src/cache.rs crates/wrcm/src/delta.rs crates/wrcm/src/digest.rs crates/wrcm/src/memory.rs crates/wrcm/src/page.rs crates/wrcm/src/prf.rs crates/wrcm/src/rsws.rs crates/wrcm/src/tamper.rs crates/wrcm/src/verifier.rs

crates/wrcm/src/lib.rs:
crates/wrcm/src/cache.rs:
crates/wrcm/src/delta.rs:
crates/wrcm/src/digest.rs:
crates/wrcm/src/memory.rs:
crates/wrcm/src/page.rs:
crates/wrcm/src/prf.rs:
crates/wrcm/src/rsws.rs:
crates/wrcm/src/tamper.rs:
crates/wrcm/src/verifier.rs:
