/root/repo/target/release/deps/crossbeam-f518fe9b8a74c1ca.d: .stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-f518fe9b8a74c1ca.rlib: .stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-f518fe9b8a74c1ca.rmeta: .stubs/crossbeam/src/lib.rs

.stubs/crossbeam/src/lib.rs:
