/root/repo/target/release/deps/serde-808972c7003ada40.d: .stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-808972c7003ada40.rlib: .stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-808972c7003ada40.rmeta: .stubs/serde/src/lib.rs

.stubs/serde/src/lib.rs:
