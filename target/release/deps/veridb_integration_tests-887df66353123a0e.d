/root/repo/target/release/deps/veridb_integration_tests-887df66353123a0e.d: tests/src/lib.rs

/root/repo/target/release/deps/libveridb_integration_tests-887df66353123a0e.rlib: tests/src/lib.rs

/root/repo/target/release/deps/libveridb_integration_tests-887df66353123a0e.rmeta: tests/src/lib.rs

tests/src/lib.rs:
