/root/repo/target/release/deps/veridb_workloads-7b19c061bae5fffb.d: crates/workloads/src/lib.rs crates/workloads/src/micro.rs crates/workloads/src/tpcc.rs crates/workloads/src/tpch.rs

/root/repo/target/release/deps/libveridb_workloads-7b19c061bae5fffb.rlib: crates/workloads/src/lib.rs crates/workloads/src/micro.rs crates/workloads/src/tpcc.rs crates/workloads/src/tpch.rs

/root/repo/target/release/deps/libveridb_workloads-7b19c061bae5fffb.rmeta: crates/workloads/src/lib.rs crates/workloads/src/micro.rs crates/workloads/src/tpcc.rs crates/workloads/src/tpch.rs

crates/workloads/src/lib.rs:
crates/workloads/src/micro.rs:
crates/workloads/src/tpcc.rs:
crates/workloads/src/tpch.rs:
