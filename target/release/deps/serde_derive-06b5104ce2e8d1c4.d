/root/repo/target/release/deps/serde_derive-06b5104ce2e8d1c4.d: .stubs/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-06b5104ce2e8d1c4.so: .stubs/serde_derive/src/lib.rs

.stubs/serde_derive/src/lib.rs:
