/root/repo/target/release/deps/criterion-b966845e1ae1ef24.d: .stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-b966845e1ae1ef24.rlib: .stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-b966845e1ae1ef24.rmeta: .stubs/criterion/src/lib.rs

.stubs/criterion/src/lib.rs:
