/root/repo/target/release/deps/bytes-90ebaaf76c87c91b.d: .stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-90ebaaf76c87c91b.rlib: .stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-90ebaaf76c87c91b.rmeta: .stubs/bytes/src/lib.rs

.stubs/bytes/src/lib.rs:
