/root/repo/target/release/deps/serde_derive-206f072ec3f8698e.d: .stubs/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-206f072ec3f8698e.so: .stubs/serde_derive/src/lib.rs

.stubs/serde_derive/src/lib.rs:
