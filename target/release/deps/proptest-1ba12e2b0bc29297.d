/root/repo/target/release/deps/proptest-1ba12e2b0bc29297.d: .stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-1ba12e2b0bc29297.rlib: .stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-1ba12e2b0bc29297.rmeta: .stubs/proptest/src/lib.rs

.stubs/proptest/src/lib.rs:
