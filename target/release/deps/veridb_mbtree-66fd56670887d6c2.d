/root/repo/target/release/deps/veridb_mbtree-66fd56670887d6c2.d: crates/mbtree/src/lib.rs crates/mbtree/src/hash.rs crates/mbtree/src/tree.rs crates/mbtree/src/vo.rs

/root/repo/target/release/deps/libveridb_mbtree-66fd56670887d6c2.rlib: crates/mbtree/src/lib.rs crates/mbtree/src/hash.rs crates/mbtree/src/tree.rs crates/mbtree/src/vo.rs

/root/repo/target/release/deps/libveridb_mbtree-66fd56670887d6c2.rmeta: crates/mbtree/src/lib.rs crates/mbtree/src/hash.rs crates/mbtree/src/tree.rs crates/mbtree/src/vo.rs

crates/mbtree/src/lib.rs:
crates/mbtree/src/hash.rs:
crates/mbtree/src/tree.rs:
crates/mbtree/src/vo.rs:
