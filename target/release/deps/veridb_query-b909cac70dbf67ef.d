/root/repo/target/release/deps/veridb_query-b909cac70dbf67ef.d: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/client.rs crates/query/src/engine.rs crates/query/src/exec.rs crates/query/src/expr.rs crates/query/src/lexer.rs crates/query/src/parallel.rs crates/query/src/parser.rs crates/query/src/planner.rs crates/query/src/portal.rs crates/query/src/replay.rs crates/query/src/spill.rs

/root/repo/target/release/deps/libveridb_query-b909cac70dbf67ef.rlib: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/client.rs crates/query/src/engine.rs crates/query/src/exec.rs crates/query/src/expr.rs crates/query/src/lexer.rs crates/query/src/parallel.rs crates/query/src/parser.rs crates/query/src/planner.rs crates/query/src/portal.rs crates/query/src/replay.rs crates/query/src/spill.rs

/root/repo/target/release/deps/libveridb_query-b909cac70dbf67ef.rmeta: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/client.rs crates/query/src/engine.rs crates/query/src/exec.rs crates/query/src/expr.rs crates/query/src/lexer.rs crates/query/src/parallel.rs crates/query/src/parser.rs crates/query/src/planner.rs crates/query/src/portal.rs crates/query/src/replay.rs crates/query/src/spill.rs

crates/query/src/lib.rs:
crates/query/src/ast.rs:
crates/query/src/client.rs:
crates/query/src/engine.rs:
crates/query/src/exec.rs:
crates/query/src/expr.rs:
crates/query/src/lexer.rs:
crates/query/src/parallel.rs:
crates/query/src/parser.rs:
crates/query/src/planner.rs:
crates/query/src/portal.rs:
crates/query/src/replay.rs:
crates/query/src/spill.rs:
