/root/repo/target/release/deps/sha2-b7f973444f901eba.d: .stubs/sha2/src/lib.rs

/root/repo/target/release/deps/libsha2-b7f973444f901eba.rlib: .stubs/sha2/src/lib.rs

/root/repo/target/release/deps/libsha2-b7f973444f901eba.rmeta: .stubs/sha2/src/lib.rs

.stubs/sha2/src/lib.rs:
