/root/repo/target/release/deps/veridb-3a9b6ab5a799b42f.d: crates/core/src/lib.rs crates/core/src/recovery.rs

/root/repo/target/release/deps/libveridb-3a9b6ab5a799b42f.rlib: crates/core/src/lib.rs crates/core/src/recovery.rs

/root/repo/target/release/deps/libveridb-3a9b6ab5a799b42f.rmeta: crates/core/src/lib.rs crates/core/src/recovery.rs

crates/core/src/lib.rs:
crates/core/src/recovery.rs:
