/root/repo/target/release/deps/veridb_storage-69d2d008c91b9ae6.d: crates/storage/src/lib.rs crates/storage/src/backoff.rs crates/storage/src/bpindex.rs crates/storage/src/catalog.rs crates/storage/src/chain.rs crates/storage/src/cursor.rs crates/storage/src/evidence.rs crates/storage/src/index.rs crates/storage/src/record.rs crates/storage/src/table.rs

/root/repo/target/release/deps/libveridb_storage-69d2d008c91b9ae6.rlib: crates/storage/src/lib.rs crates/storage/src/backoff.rs crates/storage/src/bpindex.rs crates/storage/src/catalog.rs crates/storage/src/chain.rs crates/storage/src/cursor.rs crates/storage/src/evidence.rs crates/storage/src/index.rs crates/storage/src/record.rs crates/storage/src/table.rs

/root/repo/target/release/deps/libveridb_storage-69d2d008c91b9ae6.rmeta: crates/storage/src/lib.rs crates/storage/src/backoff.rs crates/storage/src/bpindex.rs crates/storage/src/catalog.rs crates/storage/src/chain.rs crates/storage/src/cursor.rs crates/storage/src/evidence.rs crates/storage/src/index.rs crates/storage/src/record.rs crates/storage/src/table.rs

crates/storage/src/lib.rs:
crates/storage/src/backoff.rs:
crates/storage/src/bpindex.rs:
crates/storage/src/catalog.rs:
crates/storage/src/chain.rs:
crates/storage/src/cursor.rs:
crates/storage/src/evidence.rs:
crates/storage/src/index.rs:
crates/storage/src/record.rs:
crates/storage/src/table.rs:
