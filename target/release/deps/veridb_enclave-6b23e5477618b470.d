/root/repo/target/release/deps/veridb_enclave-6b23e5477618b470.d: crates/enclave/src/lib.rs crates/enclave/src/attestation.rs crates/enclave/src/calls.rs crates/enclave/src/cost.rs crates/enclave/src/counter.rs crates/enclave/src/epc.rs crates/enclave/src/mac.rs crates/enclave/src/sealing.rs

/root/repo/target/release/deps/libveridb_enclave-6b23e5477618b470.rlib: crates/enclave/src/lib.rs crates/enclave/src/attestation.rs crates/enclave/src/calls.rs crates/enclave/src/cost.rs crates/enclave/src/counter.rs crates/enclave/src/epc.rs crates/enclave/src/mac.rs crates/enclave/src/sealing.rs

/root/repo/target/release/deps/libveridb_enclave-6b23e5477618b470.rmeta: crates/enclave/src/lib.rs crates/enclave/src/attestation.rs crates/enclave/src/calls.rs crates/enclave/src/cost.rs crates/enclave/src/counter.rs crates/enclave/src/epc.rs crates/enclave/src/mac.rs crates/enclave/src/sealing.rs

crates/enclave/src/lib.rs:
crates/enclave/src/attestation.rs:
crates/enclave/src/calls.rs:
crates/enclave/src/cost.rs:
crates/enclave/src/counter.rs:
crates/enclave/src/epc.rs:
crates/enclave/src/mac.rs:
crates/enclave/src/sealing.rs:
