/root/repo/target/release/deps/veridb-3177d159b2047ade.d: crates/cli/src/main.rs

/root/repo/target/release/deps/veridb-3177d159b2047ade: crates/cli/src/main.rs

crates/cli/src/main.rs:
