/root/repo/target/release/deps/fig_net-526c3f8a4ecfbf61.d: crates/bench/benches/fig_net.rs

/root/repo/target/release/deps/fig_net-526c3f8a4ecfbf61: crates/bench/benches/fig_net.rs

crates/bench/benches/fig_net.rs:
