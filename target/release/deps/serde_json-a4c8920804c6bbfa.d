/root/repo/target/release/deps/serde_json-a4c8920804c6bbfa.d: .stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-a4c8920804c6bbfa.rlib: .stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-a4c8920804c6bbfa.rmeta: .stubs/serde_json/src/lib.rs

.stubs/serde_json/src/lib.rs:
