/root/repo/target/release/deps/rand-6acf0ef41c4aac6b.d: .stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-6acf0ef41c4aac6b.rlib: .stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-6acf0ef41c4aac6b.rmeta: .stubs/rand/src/lib.rs

.stubs/rand/src/lib.rs:
