/root/repo/target/release/deps/parking_lot-b8e97d591908693a.d: .stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-b8e97d591908693a.rlib: .stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-b8e97d591908693a.rmeta: .stubs/parking_lot/src/lib.rs

.stubs/parking_lot/src/lib.rs:
