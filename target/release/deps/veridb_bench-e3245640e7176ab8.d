/root/repo/target/release/deps/veridb_bench-e3245640e7176ab8.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libveridb_bench-e3245640e7176ab8.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libveridb_bench-e3245640e7176ab8.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
