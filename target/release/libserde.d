/root/repo/target/release/libserde.rlib: /root/repo/.stubs/serde/src/lib.rs /root/repo/.stubs/serde_derive/src/lib.rs
