/root/repo/target/release/libparking_lot.rlib: /root/repo/.stubs/parking_lot/src/lib.rs
