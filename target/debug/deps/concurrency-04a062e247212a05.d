/root/repo/target/debug/deps/concurrency-04a062e247212a05.d: tests/tests/concurrency.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrency-04a062e247212a05.rmeta: tests/tests/concurrency.rs Cargo.toml

tests/tests/concurrency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
