/root/repo/target/debug/deps/veridb_mbtree-a348cf556426162b.d: crates/mbtree/src/lib.rs crates/mbtree/src/hash.rs crates/mbtree/src/tree.rs crates/mbtree/src/vo.rs

/root/repo/target/debug/deps/veridb_mbtree-a348cf556426162b: crates/mbtree/src/lib.rs crates/mbtree/src/hash.rs crates/mbtree/src/tree.rs crates/mbtree/src/vo.rs

crates/mbtree/src/lib.rs:
crates/mbtree/src/hash.rs:
crates/mbtree/src/tree.rs:
crates/mbtree/src/vo.rs:
