/root/repo/target/debug/deps/veridb_wrcm-805ed6be865d2d53.d: crates/wrcm/src/lib.rs crates/wrcm/src/cache.rs crates/wrcm/src/delta.rs crates/wrcm/src/digest.rs crates/wrcm/src/memory.rs crates/wrcm/src/page.rs crates/wrcm/src/prf.rs crates/wrcm/src/rsws.rs crates/wrcm/src/tamper.rs crates/wrcm/src/verifier.rs

/root/repo/target/debug/deps/veridb_wrcm-805ed6be865d2d53: crates/wrcm/src/lib.rs crates/wrcm/src/cache.rs crates/wrcm/src/delta.rs crates/wrcm/src/digest.rs crates/wrcm/src/memory.rs crates/wrcm/src/page.rs crates/wrcm/src/prf.rs crates/wrcm/src/rsws.rs crates/wrcm/src/tamper.rs crates/wrcm/src/verifier.rs

crates/wrcm/src/lib.rs:
crates/wrcm/src/cache.rs:
crates/wrcm/src/delta.rs:
crates/wrcm/src/digest.rs:
crates/wrcm/src/memory.rs:
crates/wrcm/src/page.rs:
crates/wrcm/src/prf.rs:
crates/wrcm/src/rsws.rs:
crates/wrcm/src/tamper.rs:
crates/wrcm/src/verifier.rs:
