/root/repo/target/debug/deps/veridb_bench-a2ead151f50998ef.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libveridb_bench-a2ead151f50998ef.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
