/root/repo/target/debug/deps/serde_derive-ebe4dadc91d9ca92.d: .stubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-ebe4dadc91d9ca92.rmeta: .stubs/serde_derive/src/lib.rs

.stubs/serde_derive/src/lib.rs:
