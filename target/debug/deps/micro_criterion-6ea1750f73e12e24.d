/root/repo/target/debug/deps/micro_criterion-6ea1750f73e12e24.d: crates/bench/benches/micro_criterion.rs

/root/repo/target/debug/deps/libmicro_criterion-6ea1750f73e12e24.rmeta: crates/bench/benches/micro_criterion.rs

crates/bench/benches/micro_criterion.rs:
