/root/repo/target/debug/deps/veridb-341f9d2f4f67db5e.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/libveridb-341f9d2f4f67db5e.rmeta: crates/cli/src/main.rs

crates/cli/src/main.rs:
