/root/repo/target/debug/deps/net_idle-6691f97e332d1530.d: tests/tests/net_idle.rs

/root/repo/target/debug/deps/net_idle-6691f97e332d1530: tests/tests/net_idle.rs

tests/tests/net_idle.rs:
