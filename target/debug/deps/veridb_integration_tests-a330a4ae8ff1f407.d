/root/repo/target/debug/deps/veridb_integration_tests-a330a4ae8ff1f407.d: tests/src/lib.rs

/root/repo/target/debug/deps/libveridb_integration_tests-a330a4ae8ff1f407.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libveridb_integration_tests-a330a4ae8ff1f407.rmeta: tests/src/lib.rs

tests/src/lib.rs:
