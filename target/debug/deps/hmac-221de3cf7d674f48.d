/root/repo/target/debug/deps/hmac-221de3cf7d674f48.d: .stubs/hmac/src/lib.rs

/root/repo/target/debug/deps/libhmac-221de3cf7d674f48.rmeta: .stubs/hmac/src/lib.rs

.stubs/hmac/src/lib.rs:
