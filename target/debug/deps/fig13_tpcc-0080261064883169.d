/root/repo/target/debug/deps/fig13_tpcc-0080261064883169.d: crates/bench/benches/fig13_tpcc.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_tpcc-0080261064883169.rmeta: crates/bench/benches/fig13_tpcc.rs Cargo.toml

crates/bench/benches/fig13_tpcc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
