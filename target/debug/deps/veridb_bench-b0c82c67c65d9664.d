/root/repo/target/debug/deps/veridb_bench-b0c82c67c65d9664.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libveridb_bench-b0c82c67c65d9664.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
