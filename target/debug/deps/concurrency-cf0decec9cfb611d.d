/root/repo/target/debug/deps/concurrency-cf0decec9cfb611d.d: tests/tests/concurrency.rs

/root/repo/target/debug/deps/libconcurrency-cf0decec9cfb611d.rmeta: tests/tests/concurrency.rs

tests/tests/concurrency.rs:
