/root/repo/target/debug/deps/veridb_integration_tests-5635c9e41ed45b9a.d: tests/src/lib.rs

/root/repo/target/debug/deps/veridb_integration_tests-5635c9e41ed45b9a: tests/src/lib.rs

tests/src/lib.rs:
