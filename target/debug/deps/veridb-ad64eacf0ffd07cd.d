/root/repo/target/debug/deps/veridb-ad64eacf0ffd07cd.d: crates/core/src/lib.rs crates/core/src/recovery.rs Cargo.toml

/root/repo/target/debug/deps/libveridb-ad64eacf0ffd07cd.rmeta: crates/core/src/lib.rs crates/core/src/recovery.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
