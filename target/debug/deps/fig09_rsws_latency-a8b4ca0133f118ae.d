/root/repo/target/debug/deps/fig09_rsws_latency-a8b4ca0133f118ae.d: crates/bench/benches/fig09_rsws_latency.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_rsws_latency-a8b4ca0133f118ae.rmeta: crates/bench/benches/fig09_rsws_latency.rs Cargo.toml

crates/bench/benches/fig09_rsws_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
