/root/repo/target/debug/deps/veridb_workloads-383fa5c664306de1.d: crates/workloads/src/lib.rs crates/workloads/src/micro.rs crates/workloads/src/tpcc.rs crates/workloads/src/tpch.rs

/root/repo/target/debug/deps/veridb_workloads-383fa5c664306de1: crates/workloads/src/lib.rs crates/workloads/src/micro.rs crates/workloads/src/tpcc.rs crates/workloads/src/tpch.rs

crates/workloads/src/lib.rs:
crates/workloads/src/micro.rs:
crates/workloads/src/tpcc.rs:
crates/workloads/src/tpch.rs:
