/root/repo/target/debug/deps/veridb_bench-d09a235e5268e42f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/veridb_bench-d09a235e5268e42f: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
