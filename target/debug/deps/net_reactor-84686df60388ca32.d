/root/repo/target/debug/deps/net_reactor-84686df60388ca32.d: tests/tests/net_reactor.rs

/root/repo/target/debug/deps/net_reactor-84686df60388ca32: tests/tests/net_reactor.rs

tests/tests/net_reactor.rs:
