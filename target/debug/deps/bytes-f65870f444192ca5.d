/root/repo/target/debug/deps/bytes-f65870f444192ca5.d: .stubs/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-f65870f444192ca5.rmeta: .stubs/bytes/src/lib.rs Cargo.toml

.stubs/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
