/root/repo/target/debug/deps/veridb_mbtree-f43aec50b88c114d.d: crates/mbtree/src/lib.rs crates/mbtree/src/hash.rs crates/mbtree/src/tree.rs crates/mbtree/src/vo.rs

/root/repo/target/debug/deps/libveridb_mbtree-f43aec50b88c114d.rlib: crates/mbtree/src/lib.rs crates/mbtree/src/hash.rs crates/mbtree/src/tree.rs crates/mbtree/src/vo.rs

/root/repo/target/debug/deps/libveridb_mbtree-f43aec50b88c114d.rmeta: crates/mbtree/src/lib.rs crates/mbtree/src/hash.rs crates/mbtree/src/tree.rs crates/mbtree/src/vo.rs

crates/mbtree/src/lib.rs:
crates/mbtree/src/hash.rs:
crates/mbtree/src/tree.rs:
crates/mbtree/src/vo.rs:
