/root/repo/target/debug/deps/net_remote-579af47bed7eb388.d: tests/tests/net_remote.rs

/root/repo/target/debug/deps/libnet_remote-579af47bed7eb388.rmeta: tests/tests/net_remote.rs

tests/tests/net_remote.rs:
