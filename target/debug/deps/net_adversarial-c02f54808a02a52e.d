/root/repo/target/debug/deps/net_adversarial-c02f54808a02a52e.d: tests/tests/net_adversarial.rs Cargo.toml

/root/repo/target/debug/deps/libnet_adversarial-c02f54808a02a52e.rmeta: tests/tests/net_adversarial.rs Cargo.toml

tests/tests/net_adversarial.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
