/root/repo/target/debug/deps/serde_json-ce7c86fbbbc3a21d.d: .stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-ce7c86fbbbc3a21d.rmeta: .stubs/serde_json/src/lib.rs

.stubs/serde_json/src/lib.rs:
