/root/repo/target/debug/deps/pr2_observability-ab3c6e75c1fa32a7.d: tests/tests/pr2_observability.rs Cargo.toml

/root/repo/target/debug/deps/libpr2_observability-ab3c6e75c1fa32a7.rmeta: tests/tests/pr2_observability.rs Cargo.toml

tests/tests/pr2_observability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
