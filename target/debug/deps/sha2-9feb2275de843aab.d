/root/repo/target/debug/deps/sha2-9feb2275de843aab.d: .stubs/sha2/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsha2-9feb2275de843aab.rmeta: .stubs/sha2/src/lib.rs Cargo.toml

.stubs/sha2/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
