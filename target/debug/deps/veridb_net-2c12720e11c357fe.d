/root/repo/target/debug/deps/veridb_net-2c12720e11c357fe.d: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/poll.rs crates/net/src/proto.rs crates/net/src/proxy.rs crates/net/src/server.rs

/root/repo/target/debug/deps/libveridb_net-2c12720e11c357fe.rmeta: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/poll.rs crates/net/src/proto.rs crates/net/src/proxy.rs crates/net/src/server.rs

crates/net/src/lib.rs:
crates/net/src/client.rs:
crates/net/src/frame.rs:
crates/net/src/poll.rs:
crates/net/src/proto.rs:
crates/net/src/proxy.rs:
crates/net/src/server.rs:
