/root/repo/target/debug/deps/serde-8d714c71b242a67e.d: .stubs/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-8d714c71b242a67e.rmeta: .stubs/serde/src/lib.rs Cargo.toml

.stubs/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
