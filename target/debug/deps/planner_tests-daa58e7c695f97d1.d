/root/repo/target/debug/deps/planner_tests-daa58e7c695f97d1.d: crates/query/tests/planner_tests.rs Cargo.toml

/root/repo/target/debug/deps/libplanner_tests-daa58e7c695f97d1.rmeta: crates/query/tests/planner_tests.rs Cargo.toml

crates/query/tests/planner_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
