/root/repo/target/debug/deps/proptest-159a7a8f21c1b4b2.d: .stubs/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-159a7a8f21c1b4b2.rmeta: .stubs/proptest/src/lib.rs Cargo.toml

.stubs/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
