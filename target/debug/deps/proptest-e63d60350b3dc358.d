/root/repo/target/debug/deps/proptest-e63d60350b3dc358.d: .stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-e63d60350b3dc358.rmeta: .stubs/proptest/src/lib.rs

.stubs/proptest/src/lib.rs:
