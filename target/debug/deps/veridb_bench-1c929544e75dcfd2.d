/root/repo/target/debug/deps/veridb_bench-1c929544e75dcfd2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libveridb_bench-1c929544e75dcfd2.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libveridb_bench-1c929544e75dcfd2.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
