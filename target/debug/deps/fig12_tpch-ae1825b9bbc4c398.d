/root/repo/target/debug/deps/fig12_tpch-ae1825b9bbc4c398.d: crates/bench/benches/fig12_tpch.rs

/root/repo/target/debug/deps/libfig12_tpch-ae1825b9bbc4c398.rmeta: crates/bench/benches/fig12_tpch.rs

crates/bench/benches/fig12_tpch.rs:
