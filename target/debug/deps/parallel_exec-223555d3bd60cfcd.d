/root/repo/target/debug/deps/parallel_exec-223555d3bd60cfcd.d: tests/tests/parallel_exec.rs

/root/repo/target/debug/deps/libparallel_exec-223555d3bd60cfcd.rmeta: tests/tests/parallel_exec.rs

tests/tests/parallel_exec.rs:
