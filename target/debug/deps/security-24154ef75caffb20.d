/root/repo/target/debug/deps/security-24154ef75caffb20.d: tests/tests/security.rs Cargo.toml

/root/repo/target/debug/deps/libsecurity-24154ef75caffb20.rmeta: tests/tests/security.rs Cargo.toml

tests/tests/security.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
