/root/repo/target/debug/deps/fig09_rsws_latency-ba5fd0e61b42a533.d: crates/bench/benches/fig09_rsws_latency.rs

/root/repo/target/debug/deps/libfig09_rsws_latency-ba5fd0e61b42a533.rmeta: crates/bench/benches/fig09_rsws_latency.rs

crates/bench/benches/fig09_rsws_latency.rs:
