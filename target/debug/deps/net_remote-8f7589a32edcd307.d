/root/repo/target/debug/deps/net_remote-8f7589a32edcd307.d: tests/tests/net_remote.rs

/root/repo/target/debug/deps/net_remote-8f7589a32edcd307: tests/tests/net_remote.rs

tests/tests/net_remote.rs:
