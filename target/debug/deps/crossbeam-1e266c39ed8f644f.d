/root/repo/target/debug/deps/crossbeam-1e266c39ed8f644f.d: .stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-1e266c39ed8f644f.rmeta: .stubs/crossbeam/src/lib.rs

.stubs/crossbeam/src/lib.rs:
