/root/repo/target/debug/deps/serde_derive-6eeeb54f76f5384d.d: .stubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/serde_derive-6eeeb54f76f5384d: .stubs/serde_derive/src/lib.rs

.stubs/serde_derive/src/lib.rs:
