/root/repo/target/debug/deps/veridb_common-63a27c663177dfc6.d: crates/common/src/lib.rs crates/common/src/backoff.rs crates/common/src/codec.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/obs.rs crates/common/src/row.rs crates/common/src/schema.rs crates/common/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libveridb_common-63a27c663177dfc6.rmeta: crates/common/src/lib.rs crates/common/src/backoff.rs crates/common/src/codec.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/obs.rs crates/common/src/row.rs crates/common/src/schema.rs crates/common/src/value.rs Cargo.toml

crates/common/src/lib.rs:
crates/common/src/backoff.rs:
crates/common/src/codec.rs:
crates/common/src/config.rs:
crates/common/src/error.rs:
crates/common/src/obs.rs:
crates/common/src/row.rs:
crates/common/src/schema.rs:
crates/common/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
