/root/repo/target/debug/deps/veridb_wrcm-8f0b4320d2e7b791.d: crates/wrcm/src/lib.rs crates/wrcm/src/cache.rs crates/wrcm/src/delta.rs crates/wrcm/src/digest.rs crates/wrcm/src/memory.rs crates/wrcm/src/page.rs crates/wrcm/src/prf.rs crates/wrcm/src/rsws.rs crates/wrcm/src/tamper.rs crates/wrcm/src/verifier.rs Cargo.toml

/root/repo/target/debug/deps/libveridb_wrcm-8f0b4320d2e7b791.rmeta: crates/wrcm/src/lib.rs crates/wrcm/src/cache.rs crates/wrcm/src/delta.rs crates/wrcm/src/digest.rs crates/wrcm/src/memory.rs crates/wrcm/src/page.rs crates/wrcm/src/prf.rs crates/wrcm/src/rsws.rs crates/wrcm/src/tamper.rs crates/wrcm/src/verifier.rs Cargo.toml

crates/wrcm/src/lib.rs:
crates/wrcm/src/cache.rs:
crates/wrcm/src/delta.rs:
crates/wrcm/src/digest.rs:
crates/wrcm/src/memory.rs:
crates/wrcm/src/page.rs:
crates/wrcm/src/prf.rs:
crates/wrcm/src/rsws.rs:
crates/wrcm/src/tamper.rs:
crates/wrcm/src/verifier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
