/root/repo/target/debug/deps/hmac-6a3c8a3aabb747a8.d: .stubs/hmac/src/lib.rs

/root/repo/target/debug/deps/libhmac-6a3c8a3aabb747a8.rmeta: .stubs/hmac/src/lib.rs

.stubs/hmac/src/lib.rs:
