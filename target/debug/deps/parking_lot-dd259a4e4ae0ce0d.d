/root/repo/target/debug/deps/parking_lot-dd259a4e4ae0ce0d.d: .stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-dd259a4e4ae0ce0d.rlib: .stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-dd259a4e4ae0ce0d.rmeta: .stubs/parking_lot/src/lib.rs

.stubs/parking_lot/src/lib.rs:
