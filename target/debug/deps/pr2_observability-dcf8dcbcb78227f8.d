/root/repo/target/debug/deps/pr2_observability-dcf8dcbcb78227f8.d: tests/tests/pr2_observability.rs

/root/repo/target/debug/deps/libpr2_observability-dcf8dcbcb78227f8.rmeta: tests/tests/pr2_observability.rs

tests/tests/pr2_observability.rs:
