/root/repo/target/debug/deps/hmac-cb7b1564a7e5e486.d: .stubs/hmac/src/lib.rs

/root/repo/target/debug/deps/libhmac-cb7b1564a7e5e486.rlib: .stubs/hmac/src/lib.rs

/root/repo/target/debug/deps/libhmac-cb7b1564a7e5e486.rmeta: .stubs/hmac/src/lib.rs

.stubs/hmac/src/lib.rs:
