/root/repo/target/debug/deps/bytes-c3fa06059bbf7c41.d: .stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-c3fa06059bbf7c41.rmeta: .stubs/bytes/src/lib.rs

.stubs/bytes/src/lib.rs:
