/root/repo/target/debug/deps/parking_lot-06440f6d49d2c500.d: .stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-06440f6d49d2c500: .stubs/parking_lot/src/lib.rs

.stubs/parking_lot/src/lib.rs:
