/root/repo/target/debug/deps/parser_fuzz-96d8c0b5cf633bcb.d: crates/query/tests/parser_fuzz.rs Cargo.toml

/root/repo/target/debug/deps/libparser_fuzz-96d8c0b5cf633bcb.rmeta: crates/query/tests/parser_fuzz.rs Cargo.toml

crates/query/tests/parser_fuzz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
