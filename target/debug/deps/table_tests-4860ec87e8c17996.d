/root/repo/target/debug/deps/table_tests-4860ec87e8c17996.d: crates/storage/tests/table_tests.rs Cargo.toml

/root/repo/target/debug/deps/libtable_tests-4860ec87e8c17996.rmeta: crates/storage/tests/table_tests.rs Cargo.toml

crates/storage/tests/table_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
