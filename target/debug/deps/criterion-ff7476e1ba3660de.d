/root/repo/target/debug/deps/criterion-ff7476e1ba3660de.d: .stubs/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-ff7476e1ba3660de.rmeta: .stubs/criterion/src/lib.rs Cargo.toml

.stubs/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
