/root/repo/target/debug/deps/parallel_exec-a684b605e7927918.d: tests/tests/parallel_exec.rs

/root/repo/target/debug/deps/parallel_exec-a684b605e7927918: tests/tests/parallel_exec.rs

tests/tests/parallel_exec.rs:
