/root/repo/target/debug/deps/veridb_integration_tests-cdac04d210f9c4d6.d: tests/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libveridb_integration_tests-cdac04d210f9c4d6.rmeta: tests/src/lib.rs Cargo.toml

tests/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
