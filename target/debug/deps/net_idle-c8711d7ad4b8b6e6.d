/root/repo/target/debug/deps/net_idle-c8711d7ad4b8b6e6.d: tests/tests/net_idle.rs Cargo.toml

/root/repo/target/debug/deps/libnet_idle-c8711d7ad4b8b6e6.rmeta: tests/tests/net_idle.rs Cargo.toml

tests/tests/net_idle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
