/root/repo/target/debug/deps/veridb_workloads-5d0d8ea023034e91.d: crates/workloads/src/lib.rs crates/workloads/src/micro.rs crates/workloads/src/tpcc.rs crates/workloads/src/tpch.rs

/root/repo/target/debug/deps/libveridb_workloads-5d0d8ea023034e91.rmeta: crates/workloads/src/lib.rs crates/workloads/src/micro.rs crates/workloads/src/tpcc.rs crates/workloads/src/tpch.rs

crates/workloads/src/lib.rs:
crates/workloads/src/micro.rs:
crates/workloads/src/tpcc.rs:
crates/workloads/src/tpch.rs:
