/root/repo/target/debug/deps/sha2-3a4669a3d0cebf7b.d: .stubs/sha2/src/lib.rs

/root/repo/target/debug/deps/sha2-3a4669a3d0cebf7b: .stubs/sha2/src/lib.rs

.stubs/sha2/src/lib.rs:
