/root/repo/target/debug/deps/veridb_mbtree-efa09211d614fdab.d: crates/mbtree/src/lib.rs crates/mbtree/src/hash.rs crates/mbtree/src/tree.rs crates/mbtree/src/vo.rs Cargo.toml

/root/repo/target/debug/deps/libveridb_mbtree-efa09211d614fdab.rmeta: crates/mbtree/src/lib.rs crates/mbtree/src/hash.rs crates/mbtree/src/tree.rs crates/mbtree/src/vo.rs Cargo.toml

crates/mbtree/src/lib.rs:
crates/mbtree/src/hash.rs:
crates/mbtree/src/tree.rs:
crates/mbtree/src/vo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
