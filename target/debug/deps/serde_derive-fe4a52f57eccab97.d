/root/repo/target/debug/deps/serde_derive-fe4a52f57eccab97.d: .stubs/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive-fe4a52f57eccab97.rmeta: .stubs/serde_derive/src/lib.rs Cargo.toml

.stubs/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
