/root/repo/target/debug/deps/veridb-7fc895510439a186.d: crates/core/src/lib.rs crates/core/src/recovery.rs

/root/repo/target/debug/deps/libveridb-7fc895510439a186.rmeta: crates/core/src/lib.rs crates/core/src/recovery.rs

crates/core/src/lib.rs:
crates/core/src/recovery.rs:
