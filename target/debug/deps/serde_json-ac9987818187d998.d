/root/repo/target/debug/deps/serde_json-ac9987818187d998.d: .stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-ac9987818187d998: .stubs/serde_json/src/lib.rs

.stubs/serde_json/src/lib.rs:
