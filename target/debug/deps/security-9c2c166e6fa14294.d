/root/repo/target/debug/deps/security-9c2c166e6fa14294.d: tests/tests/security.rs

/root/repo/target/debug/deps/libsecurity-9c2c166e6fa14294.rmeta: tests/tests/security.rs

tests/tests/security.rs:
