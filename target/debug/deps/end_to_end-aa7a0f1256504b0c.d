/root/repo/target/debug/deps/end_to_end-aa7a0f1256504b0c.d: tests/tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-aa7a0f1256504b0c.rmeta: tests/tests/end_to_end.rs

tests/tests/end_to_end.rs:
