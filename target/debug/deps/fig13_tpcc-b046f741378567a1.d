/root/repo/target/debug/deps/fig13_tpcc-b046f741378567a1.d: crates/bench/benches/fig13_tpcc.rs

/root/repo/target/debug/deps/libfig13_tpcc-b046f741378567a1.rmeta: crates/bench/benches/fig13_tpcc.rs

crates/bench/benches/fig13_tpcc.rs:
