/root/repo/target/debug/deps/table_proptests-c00fa61b9bb75e8c.d: crates/storage/tests/table_proptests.rs Cargo.toml

/root/repo/target/debug/deps/libtable_proptests-c00fa61b9bb75e8c.rmeta: crates/storage/tests/table_proptests.rs Cargo.toml

crates/storage/tests/table_proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
