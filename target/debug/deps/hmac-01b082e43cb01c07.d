/root/repo/target/debug/deps/hmac-01b082e43cb01c07.d: .stubs/hmac/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhmac-01b082e43cb01c07.rmeta: .stubs/hmac/src/lib.rs Cargo.toml

.stubs/hmac/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
