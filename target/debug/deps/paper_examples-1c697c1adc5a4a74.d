/root/repo/target/debug/deps/paper_examples-1c697c1adc5a4a74.d: tests/tests/paper_examples.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_examples-1c697c1adc5a4a74.rmeta: tests/tests/paper_examples.rs Cargo.toml

tests/tests/paper_examples.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
