/root/repo/target/debug/deps/crossbeam-55a48c0ea736d087.d: .stubs/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam-55a48c0ea736d087.rmeta: .stubs/crossbeam/src/lib.rs Cargo.toml

.stubs/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
