/root/repo/target/debug/deps/mbtree_proptests-421a1dab452bc0ab.d: crates/mbtree/tests/mbtree_proptests.rs

/root/repo/target/debug/deps/libmbtree_proptests-421a1dab452bc0ab.rmeta: crates/mbtree/tests/mbtree_proptests.rs

crates/mbtree/tests/mbtree_proptests.rs:
