/root/repo/target/debug/deps/ablation-2161a33bf9da5a37.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-2161a33bf9da5a37.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
