/root/repo/target/debug/deps/veridb-81551f4128475d3a.d: crates/core/src/lib.rs crates/core/src/recovery.rs Cargo.toml

/root/repo/target/debug/deps/libveridb-81551f4128475d3a.rmeta: crates/core/src/lib.rs crates/core/src/recovery.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
