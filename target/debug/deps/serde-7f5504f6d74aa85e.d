/root/repo/target/debug/deps/serde-7f5504f6d74aa85e.d: .stubs/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-7f5504f6d74aa85e.rmeta: .stubs/serde/src/lib.rs Cargo.toml

.stubs/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
