/root/repo/target/debug/deps/parser_fuzz-34536d1ee0b7ce98.d: crates/query/tests/parser_fuzz.rs

/root/repo/target/debug/deps/parser_fuzz-34536d1ee0b7ce98: crates/query/tests/parser_fuzz.rs

crates/query/tests/parser_fuzz.rs:
