/root/repo/target/debug/deps/parking_lot-1ba6bd65a3e001bd.d: .stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-1ba6bd65a3e001bd.rmeta: .stubs/parking_lot/src/lib.rs

.stubs/parking_lot/src/lib.rs:
