/root/repo/target/debug/deps/fig12_tpch-f0e904304c20825b.d: crates/bench/benches/fig12_tpch.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_tpch-f0e904304c20825b.rmeta: crates/bench/benches/fig12_tpch.rs Cargo.toml

crates/bench/benches/fig12_tpch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
