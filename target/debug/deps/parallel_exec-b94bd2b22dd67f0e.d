/root/repo/target/debug/deps/parallel_exec-b94bd2b22dd67f0e.d: tests/tests/parallel_exec.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_exec-b94bd2b22dd67f0e.rmeta: tests/tests/parallel_exec.rs Cargo.toml

tests/tests/parallel_exec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
