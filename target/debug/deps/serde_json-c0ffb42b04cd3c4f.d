/root/repo/target/debug/deps/serde_json-c0ffb42b04cd3c4f.d: .stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-c0ffb42b04cd3c4f.rmeta: .stubs/serde_json/src/lib.rs

.stubs/serde_json/src/lib.rs:
