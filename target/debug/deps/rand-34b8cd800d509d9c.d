/root/repo/target/debug/deps/rand-34b8cd800d509d9c.d: .stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-34b8cd800d509d9c.rmeta: .stubs/rand/src/lib.rs

.stubs/rand/src/lib.rs:
