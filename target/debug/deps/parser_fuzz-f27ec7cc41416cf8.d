/root/repo/target/debug/deps/parser_fuzz-f27ec7cc41416cf8.d: crates/query/tests/parser_fuzz.rs

/root/repo/target/debug/deps/libparser_fuzz-f27ec7cc41416cf8.rmeta: crates/query/tests/parser_fuzz.rs

crates/query/tests/parser_fuzz.rs:
