/root/repo/target/debug/deps/net_remote-a7590a190fece072.d: tests/tests/net_remote.rs Cargo.toml

/root/repo/target/debug/deps/libnet_remote-a7590a190fece072.rmeta: tests/tests/net_remote.rs Cargo.toml

tests/tests/net_remote.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
