/root/repo/target/debug/deps/veridb_common-e40b3a46e46ae7d0.d: crates/common/src/lib.rs crates/common/src/backoff.rs crates/common/src/codec.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/obs.rs crates/common/src/row.rs crates/common/src/schema.rs crates/common/src/value.rs

/root/repo/target/debug/deps/veridb_common-e40b3a46e46ae7d0: crates/common/src/lib.rs crates/common/src/backoff.rs crates/common/src/codec.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/obs.rs crates/common/src/row.rs crates/common/src/schema.rs crates/common/src/value.rs

crates/common/src/lib.rs:
crates/common/src/backoff.rs:
crates/common/src/codec.rs:
crates/common/src/config.rs:
crates/common/src/error.rs:
crates/common/src/obs.rs:
crates/common/src/row.rs:
crates/common/src/schema.rs:
crates/common/src/value.rs:
