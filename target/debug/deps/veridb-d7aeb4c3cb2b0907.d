/root/repo/target/debug/deps/veridb-d7aeb4c3cb2b0907.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libveridb-d7aeb4c3cb2b0907.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
