/root/repo/target/debug/deps/table_tests-c6580f24c9fe7246.d: crates/storage/tests/table_tests.rs

/root/repo/target/debug/deps/table_tests-c6580f24c9fe7246: crates/storage/tests/table_tests.rs

crates/storage/tests/table_tests.rs:
