/root/repo/target/debug/deps/bytes-b29d20e7cf246c0b.d: .stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-b29d20e7cf246c0b.rlib: .stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-b29d20e7cf246c0b.rmeta: .stubs/bytes/src/lib.rs

.stubs/bytes/src/lib.rs:
