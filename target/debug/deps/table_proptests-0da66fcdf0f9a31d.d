/root/repo/target/debug/deps/table_proptests-0da66fcdf0f9a31d.d: crates/storage/tests/table_proptests.rs

/root/repo/target/debug/deps/libtable_proptests-0da66fcdf0f9a31d.rmeta: crates/storage/tests/table_proptests.rs

crates/storage/tests/table_proptests.rs:
