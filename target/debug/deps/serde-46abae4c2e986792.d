/root/repo/target/debug/deps/serde-46abae4c2e986792.d: .stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-46abae4c2e986792.rmeta: .stubs/serde/src/lib.rs

.stubs/serde/src/lib.rs:
