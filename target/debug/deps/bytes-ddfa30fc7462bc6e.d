/root/repo/target/debug/deps/bytes-ddfa30fc7462bc6e.d: .stubs/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-ddfa30fc7462bc6e.rmeta: .stubs/bytes/src/lib.rs Cargo.toml

.stubs/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
