/root/repo/target/debug/deps/serde-a0e2715fe80d15e3.d: .stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-a0e2715fe80d15e3.rmeta: .stubs/serde/src/lib.rs

.stubs/serde/src/lib.rs:
