/root/repo/target/debug/deps/serde_json-42f37e633fbf9e1e.d: .stubs/serde_json/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_json-42f37e633fbf9e1e.rmeta: .stubs/serde_json/src/lib.rs Cargo.toml

.stubs/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
