/root/repo/target/debug/deps/veridb_workloads-64366400f401fd9a.d: crates/workloads/src/lib.rs crates/workloads/src/micro.rs crates/workloads/src/tpcc.rs crates/workloads/src/tpch.rs Cargo.toml

/root/repo/target/debug/deps/libveridb_workloads-64366400f401fd9a.rmeta: crates/workloads/src/lib.rs crates/workloads/src/micro.rs crates/workloads/src/tpcc.rs crates/workloads/src/tpch.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/micro.rs:
crates/workloads/src/tpcc.rs:
crates/workloads/src/tpch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
