/root/repo/target/debug/deps/veridb-9f139222f9fce81a.d: crates/core/src/lib.rs crates/core/src/recovery.rs

/root/repo/target/debug/deps/veridb-9f139222f9fce81a: crates/core/src/lib.rs crates/core/src/recovery.rs

crates/core/src/lib.rs:
crates/core/src/recovery.rs:
