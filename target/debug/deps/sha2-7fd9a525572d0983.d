/root/repo/target/debug/deps/sha2-7fd9a525572d0983.d: .stubs/sha2/src/lib.rs

/root/repo/target/debug/deps/libsha2-7fd9a525572d0983.rmeta: .stubs/sha2/src/lib.rs

.stubs/sha2/src/lib.rs:
