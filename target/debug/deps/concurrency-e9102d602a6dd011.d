/root/repo/target/debug/deps/concurrency-e9102d602a6dd011.d: tests/tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-e9102d602a6dd011: tests/tests/concurrency.rs

tests/tests/concurrency.rs:
