/root/repo/target/debug/deps/veridb_common-af11abd097dee124.d: crates/common/src/lib.rs crates/common/src/backoff.rs crates/common/src/codec.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/obs.rs crates/common/src/row.rs crates/common/src/schema.rs crates/common/src/value.rs

/root/repo/target/debug/deps/libveridb_common-af11abd097dee124.rlib: crates/common/src/lib.rs crates/common/src/backoff.rs crates/common/src/codec.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/obs.rs crates/common/src/row.rs crates/common/src/schema.rs crates/common/src/value.rs

/root/repo/target/debug/deps/libveridb_common-af11abd097dee124.rmeta: crates/common/src/lib.rs crates/common/src/backoff.rs crates/common/src/codec.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/obs.rs crates/common/src/row.rs crates/common/src/schema.rs crates/common/src/value.rs

crates/common/src/lib.rs:
crates/common/src/backoff.rs:
crates/common/src/codec.rs:
crates/common/src/config.rs:
crates/common/src/error.rs:
crates/common/src/obs.rs:
crates/common/src/row.rs:
crates/common/src/schema.rs:
crates/common/src/value.rs:
