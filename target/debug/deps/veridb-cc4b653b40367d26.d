/root/repo/target/debug/deps/veridb-cc4b653b40367d26.d: crates/core/src/lib.rs crates/core/src/recovery.rs

/root/repo/target/debug/deps/libveridb-cc4b653b40367d26.rlib: crates/core/src/lib.rs crates/core/src/recovery.rs

/root/repo/target/debug/deps/libveridb-cc4b653b40367d26.rmeta: crates/core/src/lib.rs crates/core/src/recovery.rs

crates/core/src/lib.rs:
crates/core/src/recovery.rs:
