/root/repo/target/debug/deps/veridb_bench-46c1be81fd4e1270.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libveridb_bench-46c1be81fd4e1270.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
