/root/repo/target/debug/deps/veridb_enclave-cece66aae76b5aee.d: crates/enclave/src/lib.rs crates/enclave/src/attestation.rs crates/enclave/src/calls.rs crates/enclave/src/cost.rs crates/enclave/src/counter.rs crates/enclave/src/epc.rs crates/enclave/src/mac.rs crates/enclave/src/sealing.rs Cargo.toml

/root/repo/target/debug/deps/libveridb_enclave-cece66aae76b5aee.rmeta: crates/enclave/src/lib.rs crates/enclave/src/attestation.rs crates/enclave/src/calls.rs crates/enclave/src/cost.rs crates/enclave/src/counter.rs crates/enclave/src/epc.rs crates/enclave/src/mac.rs crates/enclave/src/sealing.rs Cargo.toml

crates/enclave/src/lib.rs:
crates/enclave/src/attestation.rs:
crates/enclave/src/calls.rs:
crates/enclave/src/cost.rs:
crates/enclave/src/counter.rs:
crates/enclave/src/epc.rs:
crates/enclave/src/mac.rs:
crates/enclave/src/sealing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
