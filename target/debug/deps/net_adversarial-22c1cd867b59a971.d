/root/repo/target/debug/deps/net_adversarial-22c1cd867b59a971.d: tests/tests/net_adversarial.rs

/root/repo/target/debug/deps/libnet_adversarial-22c1cd867b59a971.rmeta: tests/tests/net_adversarial.rs

tests/tests/net_adversarial.rs:
