/root/repo/target/debug/deps/serde-65fdcc2c388a275a.d: .stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-65fdcc2c388a275a.rlib: .stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-65fdcc2c388a275a.rmeta: .stubs/serde/src/lib.rs

.stubs/serde/src/lib.rs:
