/root/repo/target/debug/deps/sql_tests-4f2e58594cf24189.d: crates/query/tests/sql_tests.rs

/root/repo/target/debug/deps/libsql_tests-4f2e58594cf24189.rmeta: crates/query/tests/sql_tests.rs

crates/query/tests/sql_tests.rs:
