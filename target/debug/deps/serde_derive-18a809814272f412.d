/root/repo/target/debug/deps/serde_derive-18a809814272f412.d: .stubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-18a809814272f412.rmeta: .stubs/serde_derive/src/lib.rs

.stubs/serde_derive/src/lib.rs:
