/root/repo/target/debug/deps/bytes-0a05fa1afa389f5c.d: .stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-0a05fa1afa389f5c: .stubs/bytes/src/lib.rs

.stubs/bytes/src/lib.rs:
