/root/repo/target/debug/deps/serde_derive-5237882cbc1c3a17.d: .stubs/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive-5237882cbc1c3a17.so: .stubs/serde_derive/src/lib.rs Cargo.toml

.stubs/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
