/root/repo/target/debug/deps/criterion-22901f80619037f0.d: .stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-22901f80619037f0.rmeta: .stubs/criterion/src/lib.rs

.stubs/criterion/src/lib.rs:
