/root/repo/target/debug/deps/bytes-9e595df7cc327306.d: .stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-9e595df7cc327306.rmeta: .stubs/bytes/src/lib.rs

.stubs/bytes/src/lib.rs:
