/root/repo/target/debug/deps/veridb_net-6d24ad8e989326b8.d: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/poll.rs crates/net/src/proto.rs crates/net/src/proxy.rs crates/net/src/server.rs

/root/repo/target/debug/deps/veridb_net-6d24ad8e989326b8: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/poll.rs crates/net/src/proto.rs crates/net/src/proxy.rs crates/net/src/server.rs

crates/net/src/lib.rs:
crates/net/src/client.rs:
crates/net/src/frame.rs:
crates/net/src/poll.rs:
crates/net/src/proto.rs:
crates/net/src/proxy.rs:
crates/net/src/server.rs:
