/root/repo/target/debug/deps/hmac-9692b2af79096dd4.d: .stubs/hmac/src/lib.rs

/root/repo/target/debug/deps/hmac-9692b2af79096dd4: .stubs/hmac/src/lib.rs

.stubs/hmac/src/lib.rs:
