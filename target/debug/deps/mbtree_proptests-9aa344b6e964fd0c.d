/root/repo/target/debug/deps/mbtree_proptests-9aa344b6e964fd0c.d: crates/mbtree/tests/mbtree_proptests.rs Cargo.toml

/root/repo/target/debug/deps/libmbtree_proptests-9aa344b6e964fd0c.rmeta: crates/mbtree/tests/mbtree_proptests.rs Cargo.toml

crates/mbtree/tests/mbtree_proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
