/root/repo/target/debug/deps/end_to_end-1f6d937c54be9268.d: tests/tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-1f6d937c54be9268: tests/tests/end_to_end.rs

tests/tests/end_to_end.rs:
