/root/repo/target/debug/deps/veridb-312809bcc6ce7465.d: crates/core/src/lib.rs crates/core/src/recovery.rs

/root/repo/target/debug/deps/libveridb-312809bcc6ce7465.rmeta: crates/core/src/lib.rs crates/core/src/recovery.rs

crates/core/src/lib.rs:
crates/core/src/recovery.rs:
