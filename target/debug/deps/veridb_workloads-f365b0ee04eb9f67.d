/root/repo/target/debug/deps/veridb_workloads-f365b0ee04eb9f67.d: crates/workloads/src/lib.rs crates/workloads/src/micro.rs crates/workloads/src/tpcc.rs crates/workloads/src/tpch.rs

/root/repo/target/debug/deps/libveridb_workloads-f365b0ee04eb9f67.rmeta: crates/workloads/src/lib.rs crates/workloads/src/micro.rs crates/workloads/src/tpcc.rs crates/workloads/src/tpch.rs

crates/workloads/src/lib.rs:
crates/workloads/src/micro.rs:
crates/workloads/src/tpcc.rs:
crates/workloads/src/tpch.rs:
