/root/repo/target/debug/deps/security-779d54eeee79d0dd.d: tests/tests/security.rs

/root/repo/target/debug/deps/security-779d54eeee79d0dd: tests/tests/security.rs

tests/tests/security.rs:
