/root/repo/target/debug/deps/table_tests-8bb0611f7e51bfb5.d: crates/storage/tests/table_tests.rs

/root/repo/target/debug/deps/libtable_tests-8bb0611f7e51bfb5.rmeta: crates/storage/tests/table_tests.rs

crates/storage/tests/table_tests.rs:
