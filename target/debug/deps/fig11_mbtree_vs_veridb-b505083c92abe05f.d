/root/repo/target/debug/deps/fig11_mbtree_vs_veridb-b505083c92abe05f.d: crates/bench/benches/fig11_mbtree_vs_veridb.rs

/root/repo/target/debug/deps/libfig11_mbtree_vs_veridb-b505083c92abe05f.rmeta: crates/bench/benches/fig11_mbtree_vs_veridb.rs

crates/bench/benches/fig11_mbtree_vs_veridb.rs:
