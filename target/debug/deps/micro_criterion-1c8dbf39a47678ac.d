/root/repo/target/debug/deps/micro_criterion-1c8dbf39a47678ac.d: crates/bench/benches/micro_criterion.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_criterion-1c8dbf39a47678ac.rmeta: crates/bench/benches/micro_criterion.rs Cargo.toml

crates/bench/benches/micro_criterion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
