/root/repo/target/debug/deps/hmac-87e94dfde1a099a0.d: .stubs/hmac/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhmac-87e94dfde1a099a0.rmeta: .stubs/hmac/src/lib.rs Cargo.toml

.stubs/hmac/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
