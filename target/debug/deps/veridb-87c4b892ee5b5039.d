/root/repo/target/debug/deps/veridb-87c4b892ee5b5039.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libveridb-87c4b892ee5b5039.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
