/root/repo/target/debug/deps/pr2_observability-cbd1f05ed2276d2b.d: tests/tests/pr2_observability.rs

/root/repo/target/debug/deps/pr2_observability-cbd1f05ed2276d2b: tests/tests/pr2_observability.rs

tests/tests/pr2_observability.rs:
