/root/repo/target/debug/deps/mbtree_proptests-845cdf949d04d0bb.d: crates/mbtree/tests/mbtree_proptests.rs

/root/repo/target/debug/deps/mbtree_proptests-845cdf949d04d0bb: crates/mbtree/tests/mbtree_proptests.rs

crates/mbtree/tests/mbtree_proptests.rs:
