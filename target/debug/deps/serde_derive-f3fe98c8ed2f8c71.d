/root/repo/target/debug/deps/serde_derive-f3fe98c8ed2f8c71.d: .stubs/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive-f3fe98c8ed2f8c71.rmeta: .stubs/serde_derive/src/lib.rs Cargo.toml

.stubs/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
