/root/repo/target/debug/deps/veridb_wrcm-0d2cd1a543852210.d: crates/wrcm/src/lib.rs crates/wrcm/src/cache.rs crates/wrcm/src/delta.rs crates/wrcm/src/digest.rs crates/wrcm/src/memory.rs crates/wrcm/src/page.rs crates/wrcm/src/prf.rs crates/wrcm/src/rsws.rs crates/wrcm/src/tamper.rs crates/wrcm/src/verifier.rs

/root/repo/target/debug/deps/libveridb_wrcm-0d2cd1a543852210.rmeta: crates/wrcm/src/lib.rs crates/wrcm/src/cache.rs crates/wrcm/src/delta.rs crates/wrcm/src/digest.rs crates/wrcm/src/memory.rs crates/wrcm/src/page.rs crates/wrcm/src/prf.rs crates/wrcm/src/rsws.rs crates/wrcm/src/tamper.rs crates/wrcm/src/verifier.rs

crates/wrcm/src/lib.rs:
crates/wrcm/src/cache.rs:
crates/wrcm/src/delta.rs:
crates/wrcm/src/digest.rs:
crates/wrcm/src/memory.rs:
crates/wrcm/src/page.rs:
crates/wrcm/src/prf.rs:
crates/wrcm/src/rsws.rs:
crates/wrcm/src/tamper.rs:
crates/wrcm/src/verifier.rs:
