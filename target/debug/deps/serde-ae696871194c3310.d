/root/repo/target/debug/deps/serde-ae696871194c3310.d: .stubs/serde/src/lib.rs

/root/repo/target/debug/deps/serde-ae696871194c3310: .stubs/serde/src/lib.rs

.stubs/serde/src/lib.rs:
