/root/repo/target/debug/deps/fig_net-bdf647a7a69ffb00.d: crates/bench/benches/fig_net.rs Cargo.toml

/root/repo/target/debug/deps/libfig_net-bdf647a7a69ffb00.rmeta: crates/bench/benches/fig_net.rs Cargo.toml

crates/bench/benches/fig_net.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
