/root/repo/target/debug/deps/table_proptests-e0b72aaa31d4b161.d: crates/storage/tests/table_proptests.rs

/root/repo/target/debug/deps/table_proptests-e0b72aaa31d4b161: crates/storage/tests/table_proptests.rs

crates/storage/tests/table_proptests.rs:
