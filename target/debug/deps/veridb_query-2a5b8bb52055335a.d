/root/repo/target/debug/deps/veridb_query-2a5b8bb52055335a.d: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/client.rs crates/query/src/engine.rs crates/query/src/exec.rs crates/query/src/expr.rs crates/query/src/lexer.rs crates/query/src/parallel.rs crates/query/src/parser.rs crates/query/src/planner.rs crates/query/src/portal.rs crates/query/src/replay.rs crates/query/src/spill.rs Cargo.toml

/root/repo/target/debug/deps/libveridb_query-2a5b8bb52055335a.rmeta: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/client.rs crates/query/src/engine.rs crates/query/src/exec.rs crates/query/src/expr.rs crates/query/src/lexer.rs crates/query/src/parallel.rs crates/query/src/parser.rs crates/query/src/planner.rs crates/query/src/portal.rs crates/query/src/replay.rs crates/query/src/spill.rs Cargo.toml

crates/query/src/lib.rs:
crates/query/src/ast.rs:
crates/query/src/client.rs:
crates/query/src/engine.rs:
crates/query/src/exec.rs:
crates/query/src/expr.rs:
crates/query/src/lexer.rs:
crates/query/src/parallel.rs:
crates/query/src/parser.rs:
crates/query/src/planner.rs:
crates/query/src/portal.rs:
crates/query/src/replay.rs:
crates/query/src/spill.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
