/root/repo/target/debug/deps/planner_tests-f8a212bad486fdeb.d: crates/query/tests/planner_tests.rs

/root/repo/target/debug/deps/libplanner_tests-f8a212bad486fdeb.rmeta: crates/query/tests/planner_tests.rs

crates/query/tests/planner_tests.rs:
