/root/repo/target/debug/deps/veridb-3e88327ae83cdd26.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/libveridb-3e88327ae83cdd26.rmeta: crates/cli/src/main.rs

crates/cli/src/main.rs:
