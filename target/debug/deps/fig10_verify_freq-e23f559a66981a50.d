/root/repo/target/debug/deps/fig10_verify_freq-e23f559a66981a50.d: crates/bench/benches/fig10_verify_freq.rs

/root/repo/target/debug/deps/libfig10_verify_freq-e23f559a66981a50.rmeta: crates/bench/benches/fig10_verify_freq.rs

crates/bench/benches/fig10_verify_freq.rs:
