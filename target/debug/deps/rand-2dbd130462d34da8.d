/root/repo/target/debug/deps/rand-2dbd130462d34da8.d: .stubs/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-2dbd130462d34da8.rmeta: .stubs/rand/src/lib.rs Cargo.toml

.stubs/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
