/root/repo/target/debug/deps/serde_json-bebbc5adc6f29dd2.d: .stubs/serde_json/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_json-bebbc5adc6f29dd2.rmeta: .stubs/serde_json/src/lib.rs Cargo.toml

.stubs/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
