/root/repo/target/debug/deps/sha2-4628c53e0fb23ce6.d: .stubs/sha2/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsha2-4628c53e0fb23ce6.rmeta: .stubs/sha2/src/lib.rs Cargo.toml

.stubs/sha2/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
