/root/repo/target/debug/deps/serde_json-0ef68fb0a6c61382.d: .stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-0ef68fb0a6c61382.rlib: .stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-0ef68fb0a6c61382.rmeta: .stubs/serde_json/src/lib.rs

.stubs/serde_json/src/lib.rs:
