/root/repo/target/debug/deps/parking_lot-e9fc4d4574368103.d: .stubs/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparking_lot-e9fc4d4574368103.rmeta: .stubs/parking_lot/src/lib.rs Cargo.toml

.stubs/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
