/root/repo/target/debug/deps/sha2-eb355995f61bebde.d: .stubs/sha2/src/lib.rs

/root/repo/target/debug/deps/libsha2-eb355995f61bebde.rlib: .stubs/sha2/src/lib.rs

/root/repo/target/debug/deps/libsha2-eb355995f61bebde.rmeta: .stubs/sha2/src/lib.rs

.stubs/sha2/src/lib.rs:
