/root/repo/target/debug/deps/ablation-2d4bd2bbb31751ae.d: crates/bench/benches/ablation.rs

/root/repo/target/debug/deps/libablation-2d4bd2bbb31751ae.rmeta: crates/bench/benches/ablation.rs

crates/bench/benches/ablation.rs:
