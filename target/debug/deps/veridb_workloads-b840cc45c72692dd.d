/root/repo/target/debug/deps/veridb_workloads-b840cc45c72692dd.d: crates/workloads/src/lib.rs crates/workloads/src/micro.rs crates/workloads/src/tpcc.rs crates/workloads/src/tpch.rs

/root/repo/target/debug/deps/libveridb_workloads-b840cc45c72692dd.rlib: crates/workloads/src/lib.rs crates/workloads/src/micro.rs crates/workloads/src/tpcc.rs crates/workloads/src/tpch.rs

/root/repo/target/debug/deps/libveridb_workloads-b840cc45c72692dd.rmeta: crates/workloads/src/lib.rs crates/workloads/src/micro.rs crates/workloads/src/tpcc.rs crates/workloads/src/tpch.rs

crates/workloads/src/lib.rs:
crates/workloads/src/micro.rs:
crates/workloads/src/tpcc.rs:
crates/workloads/src/tpch.rs:
