/root/repo/target/debug/deps/veridb_mbtree-ac8fddd51a05b827.d: crates/mbtree/src/lib.rs crates/mbtree/src/hash.rs crates/mbtree/src/tree.rs crates/mbtree/src/vo.rs

/root/repo/target/debug/deps/libveridb_mbtree-ac8fddd51a05b827.rmeta: crates/mbtree/src/lib.rs crates/mbtree/src/hash.rs crates/mbtree/src/tree.rs crates/mbtree/src/vo.rs

crates/mbtree/src/lib.rs:
crates/mbtree/src/hash.rs:
crates/mbtree/src/tree.rs:
crates/mbtree/src/vo.rs:
