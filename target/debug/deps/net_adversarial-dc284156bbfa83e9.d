/root/repo/target/debug/deps/net_adversarial-dc284156bbfa83e9.d: tests/tests/net_adversarial.rs

/root/repo/target/debug/deps/net_adversarial-dc284156bbfa83e9: tests/tests/net_adversarial.rs

tests/tests/net_adversarial.rs:
