/root/repo/target/debug/deps/net_reactor-20e70fd23c1ee241.d: tests/tests/net_reactor.rs Cargo.toml

/root/repo/target/debug/deps/libnet_reactor-20e70fd23c1ee241.rmeta: tests/tests/net_reactor.rs Cargo.toml

tests/tests/net_reactor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
