/root/repo/target/debug/deps/veridb_integration_tests-8620d6ade4115179.d: tests/src/lib.rs

/root/repo/target/debug/deps/libveridb_integration_tests-8620d6ade4115179.rmeta: tests/src/lib.rs

tests/src/lib.rs:
