/root/repo/target/debug/deps/fig11_mbtree_vs_veridb-b1da04a07cec21e1.d: crates/bench/benches/fig11_mbtree_vs_veridb.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_mbtree_vs_veridb-b1da04a07cec21e1.rmeta: crates/bench/benches/fig11_mbtree_vs_veridb.rs Cargo.toml

crates/bench/benches/fig11_mbtree_vs_veridb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
