/root/repo/target/debug/deps/parking_lot-5dd0fb6f053e5f26.d: .stubs/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparking_lot-5dd0fb6f053e5f26.rmeta: .stubs/parking_lot/src/lib.rs Cargo.toml

.stubs/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
