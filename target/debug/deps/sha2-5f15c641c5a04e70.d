/root/repo/target/debug/deps/sha2-5f15c641c5a04e70.d: .stubs/sha2/src/lib.rs

/root/repo/target/debug/deps/libsha2-5f15c641c5a04e70.rmeta: .stubs/sha2/src/lib.rs

.stubs/sha2/src/lib.rs:
