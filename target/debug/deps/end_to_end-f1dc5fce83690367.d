/root/repo/target/debug/deps/end_to_end-f1dc5fce83690367.d: tests/tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-f1dc5fce83690367.rmeta: tests/tests/end_to_end.rs Cargo.toml

tests/tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
