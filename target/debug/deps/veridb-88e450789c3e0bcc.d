/root/repo/target/debug/deps/veridb-88e450789c3e0bcc.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/veridb-88e450789c3e0bcc: crates/cli/src/main.rs

crates/cli/src/main.rs:
