/root/repo/target/debug/deps/veridb_bench-846b1bcd275597e5.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libveridb_bench-846b1bcd275597e5.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
