/root/repo/target/debug/deps/paper_examples-c8897567558cffa4.d: tests/tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-c8897567558cffa4: tests/tests/paper_examples.rs

tests/tests/paper_examples.rs:
