/root/repo/target/debug/deps/veridb_query-df51516f5a0a16c2.d: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/client.rs crates/query/src/engine.rs crates/query/src/exec.rs crates/query/src/expr.rs crates/query/src/lexer.rs crates/query/src/parallel.rs crates/query/src/parser.rs crates/query/src/planner.rs crates/query/src/portal.rs crates/query/src/replay.rs crates/query/src/spill.rs

/root/repo/target/debug/deps/libveridb_query-df51516f5a0a16c2.rlib: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/client.rs crates/query/src/engine.rs crates/query/src/exec.rs crates/query/src/expr.rs crates/query/src/lexer.rs crates/query/src/parallel.rs crates/query/src/parser.rs crates/query/src/planner.rs crates/query/src/portal.rs crates/query/src/replay.rs crates/query/src/spill.rs

/root/repo/target/debug/deps/libveridb_query-df51516f5a0a16c2.rmeta: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/client.rs crates/query/src/engine.rs crates/query/src/exec.rs crates/query/src/expr.rs crates/query/src/lexer.rs crates/query/src/parallel.rs crates/query/src/parser.rs crates/query/src/planner.rs crates/query/src/portal.rs crates/query/src/replay.rs crates/query/src/spill.rs

crates/query/src/lib.rs:
crates/query/src/ast.rs:
crates/query/src/client.rs:
crates/query/src/engine.rs:
crates/query/src/exec.rs:
crates/query/src/expr.rs:
crates/query/src/lexer.rs:
crates/query/src/parallel.rs:
crates/query/src/parser.rs:
crates/query/src/planner.rs:
crates/query/src/portal.rs:
crates/query/src/replay.rs:
crates/query/src/spill.rs:
