/root/repo/target/debug/deps/fig12_scaling-51329e3b83ce5a2d.d: crates/bench/benches/fig12_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_scaling-51329e3b83ce5a2d.rmeta: crates/bench/benches/fig12_scaling.rs Cargo.toml

crates/bench/benches/fig12_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
