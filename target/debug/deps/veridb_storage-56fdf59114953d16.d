/root/repo/target/debug/deps/veridb_storage-56fdf59114953d16.d: crates/storage/src/lib.rs crates/storage/src/backoff.rs crates/storage/src/bpindex.rs crates/storage/src/catalog.rs crates/storage/src/chain.rs crates/storage/src/cursor.rs crates/storage/src/evidence.rs crates/storage/src/index.rs crates/storage/src/record.rs crates/storage/src/table.rs

/root/repo/target/debug/deps/veridb_storage-56fdf59114953d16: crates/storage/src/lib.rs crates/storage/src/backoff.rs crates/storage/src/bpindex.rs crates/storage/src/catalog.rs crates/storage/src/chain.rs crates/storage/src/cursor.rs crates/storage/src/evidence.rs crates/storage/src/index.rs crates/storage/src/record.rs crates/storage/src/table.rs

crates/storage/src/lib.rs:
crates/storage/src/backoff.rs:
crates/storage/src/bpindex.rs:
crates/storage/src/catalog.rs:
crates/storage/src/chain.rs:
crates/storage/src/cursor.rs:
crates/storage/src/evidence.rs:
crates/storage/src/index.rs:
crates/storage/src/record.rs:
crates/storage/src/table.rs:
