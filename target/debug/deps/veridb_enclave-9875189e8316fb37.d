/root/repo/target/debug/deps/veridb_enclave-9875189e8316fb37.d: crates/enclave/src/lib.rs crates/enclave/src/attestation.rs crates/enclave/src/calls.rs crates/enclave/src/cost.rs crates/enclave/src/counter.rs crates/enclave/src/epc.rs crates/enclave/src/mac.rs crates/enclave/src/sealing.rs

/root/repo/target/debug/deps/libveridb_enclave-9875189e8316fb37.rlib: crates/enclave/src/lib.rs crates/enclave/src/attestation.rs crates/enclave/src/calls.rs crates/enclave/src/cost.rs crates/enclave/src/counter.rs crates/enclave/src/epc.rs crates/enclave/src/mac.rs crates/enclave/src/sealing.rs

/root/repo/target/debug/deps/libveridb_enclave-9875189e8316fb37.rmeta: crates/enclave/src/lib.rs crates/enclave/src/attestation.rs crates/enclave/src/calls.rs crates/enclave/src/cost.rs crates/enclave/src/counter.rs crates/enclave/src/epc.rs crates/enclave/src/mac.rs crates/enclave/src/sealing.rs

crates/enclave/src/lib.rs:
crates/enclave/src/attestation.rs:
crates/enclave/src/calls.rs:
crates/enclave/src/cost.rs:
crates/enclave/src/counter.rs:
crates/enclave/src/epc.rs:
crates/enclave/src/mac.rs:
crates/enclave/src/sealing.rs:
