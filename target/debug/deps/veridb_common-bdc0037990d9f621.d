/root/repo/target/debug/deps/veridb_common-bdc0037990d9f621.d: crates/common/src/lib.rs crates/common/src/backoff.rs crates/common/src/codec.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/obs.rs crates/common/src/row.rs crates/common/src/schema.rs crates/common/src/value.rs

/root/repo/target/debug/deps/libveridb_common-bdc0037990d9f621.rmeta: crates/common/src/lib.rs crates/common/src/backoff.rs crates/common/src/codec.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/obs.rs crates/common/src/row.rs crates/common/src/schema.rs crates/common/src/value.rs

crates/common/src/lib.rs:
crates/common/src/backoff.rs:
crates/common/src/codec.rs:
crates/common/src/config.rs:
crates/common/src/error.rs:
crates/common/src/obs.rs:
crates/common/src/row.rs:
crates/common/src/schema.rs:
crates/common/src/value.rs:
