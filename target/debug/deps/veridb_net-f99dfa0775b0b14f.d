/root/repo/target/debug/deps/veridb_net-f99dfa0775b0b14f.d: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/poll.rs crates/net/src/proto.rs crates/net/src/proxy.rs crates/net/src/server.rs Cargo.toml

/root/repo/target/debug/deps/libveridb_net-f99dfa0775b0b14f.rmeta: crates/net/src/lib.rs crates/net/src/client.rs crates/net/src/frame.rs crates/net/src/poll.rs crates/net/src/proto.rs crates/net/src/proxy.rs crates/net/src/server.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/client.rs:
crates/net/src/frame.rs:
crates/net/src/poll.rs:
crates/net/src/proto.rs:
crates/net/src/proxy.rs:
crates/net/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
