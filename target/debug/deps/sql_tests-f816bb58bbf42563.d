/root/repo/target/debug/deps/sql_tests-f816bb58bbf42563.d: crates/query/tests/sql_tests.rs

/root/repo/target/debug/deps/sql_tests-f816bb58bbf42563: crates/query/tests/sql_tests.rs

crates/query/tests/sql_tests.rs:
