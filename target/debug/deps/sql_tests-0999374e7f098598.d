/root/repo/target/debug/deps/sql_tests-0999374e7f098598.d: crates/query/tests/sql_tests.rs Cargo.toml

/root/repo/target/debug/deps/libsql_tests-0999374e7f098598.rmeta: crates/query/tests/sql_tests.rs Cargo.toml

crates/query/tests/sql_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
