/root/repo/target/debug/deps/fig10_verify_freq-dfc1b73a577cc57f.d: crates/bench/benches/fig10_verify_freq.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_verify_freq-dfc1b73a577cc57f.rmeta: crates/bench/benches/fig10_verify_freq.rs Cargo.toml

crates/bench/benches/fig10_verify_freq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
