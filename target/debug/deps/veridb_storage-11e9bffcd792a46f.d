/root/repo/target/debug/deps/veridb_storage-11e9bffcd792a46f.d: crates/storage/src/lib.rs crates/storage/src/backoff.rs crates/storage/src/bpindex.rs crates/storage/src/catalog.rs crates/storage/src/chain.rs crates/storage/src/cursor.rs crates/storage/src/evidence.rs crates/storage/src/index.rs crates/storage/src/record.rs crates/storage/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libveridb_storage-11e9bffcd792a46f.rmeta: crates/storage/src/lib.rs crates/storage/src/backoff.rs crates/storage/src/bpindex.rs crates/storage/src/catalog.rs crates/storage/src/chain.rs crates/storage/src/cursor.rs crates/storage/src/evidence.rs crates/storage/src/index.rs crates/storage/src/record.rs crates/storage/src/table.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/backoff.rs:
crates/storage/src/bpindex.rs:
crates/storage/src/catalog.rs:
crates/storage/src/chain.rs:
crates/storage/src/cursor.rs:
crates/storage/src/evidence.rs:
crates/storage/src/index.rs:
crates/storage/src/record.rs:
crates/storage/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
