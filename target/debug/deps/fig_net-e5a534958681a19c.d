/root/repo/target/debug/deps/fig_net-e5a534958681a19c.d: crates/bench/benches/fig_net.rs

/root/repo/target/debug/deps/libfig_net-e5a534958681a19c.rmeta: crates/bench/benches/fig_net.rs

crates/bench/benches/fig_net.rs:
