/root/repo/target/debug/deps/paper_examples-23359374ccb9995c.d: tests/tests/paper_examples.rs

/root/repo/target/debug/deps/libpaper_examples-23359374ccb9995c.rmeta: tests/tests/paper_examples.rs

tests/tests/paper_examples.rs:
