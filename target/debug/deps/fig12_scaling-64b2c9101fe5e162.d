/root/repo/target/debug/deps/fig12_scaling-64b2c9101fe5e162.d: crates/bench/benches/fig12_scaling.rs

/root/repo/target/debug/deps/libfig12_scaling-64b2c9101fe5e162.rmeta: crates/bench/benches/fig12_scaling.rs

crates/bench/benches/fig12_scaling.rs:
