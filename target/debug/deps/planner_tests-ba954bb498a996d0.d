/root/repo/target/debug/deps/planner_tests-ba954bb498a996d0.d: crates/query/tests/planner_tests.rs

/root/repo/target/debug/deps/planner_tests-ba954bb498a996d0: crates/query/tests/planner_tests.rs

crates/query/tests/planner_tests.rs:
