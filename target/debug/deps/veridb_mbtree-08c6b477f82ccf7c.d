/root/repo/target/debug/deps/veridb_mbtree-08c6b477f82ccf7c.d: crates/mbtree/src/lib.rs crates/mbtree/src/hash.rs crates/mbtree/src/tree.rs crates/mbtree/src/vo.rs Cargo.toml

/root/repo/target/debug/deps/libveridb_mbtree-08c6b477f82ccf7c.rmeta: crates/mbtree/src/lib.rs crates/mbtree/src/hash.rs crates/mbtree/src/tree.rs crates/mbtree/src/vo.rs Cargo.toml

crates/mbtree/src/lib.rs:
crates/mbtree/src/hash.rs:
crates/mbtree/src/tree.rs:
crates/mbtree/src/vo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
