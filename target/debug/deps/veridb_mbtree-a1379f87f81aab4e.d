/root/repo/target/debug/deps/veridb_mbtree-a1379f87f81aab4e.d: crates/mbtree/src/lib.rs crates/mbtree/src/hash.rs crates/mbtree/src/tree.rs crates/mbtree/src/vo.rs

/root/repo/target/debug/deps/libveridb_mbtree-a1379f87f81aab4e.rmeta: crates/mbtree/src/lib.rs crates/mbtree/src/hash.rs crates/mbtree/src/tree.rs crates/mbtree/src/vo.rs

crates/mbtree/src/lib.rs:
crates/mbtree/src/hash.rs:
crates/mbtree/src/tree.rs:
crates/mbtree/src/vo.rs:
