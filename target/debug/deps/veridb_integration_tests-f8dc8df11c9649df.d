/root/repo/target/debug/deps/veridb_integration_tests-f8dc8df11c9649df.d: tests/src/lib.rs

/root/repo/target/debug/deps/libveridb_integration_tests-f8dc8df11c9649df.rmeta: tests/src/lib.rs

tests/src/lib.rs:
