/root/repo/target/debug/deps/parking_lot-07b3144cc6c7911d.d: .stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-07b3144cc6c7911d.rmeta: .stubs/parking_lot/src/lib.rs

.stubs/parking_lot/src/lib.rs:
