/root/repo/target/debug/examples/attack_detection-68dd91b7ed811418.d: crates/core/../../examples/attack_detection.rs

/root/repo/target/debug/examples/attack_detection-68dd91b7ed811418: crates/core/../../examples/attack_detection.rs

crates/core/../../examples/attack_detection.rs:
