/root/repo/target/debug/examples/cloud_outsourcing-984a3d38d1d16627.d: crates/core/../../examples/cloud_outsourcing.rs

/root/repo/target/debug/examples/cloud_outsourcing-984a3d38d1d16627: crates/core/../../examples/cloud_outsourcing.rs

crates/core/../../examples/cloud_outsourcing.rs:
