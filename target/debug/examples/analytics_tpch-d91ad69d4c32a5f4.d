/root/repo/target/debug/examples/analytics_tpch-d91ad69d4c32a5f4.d: crates/workloads/../../examples/analytics_tpch.rs Cargo.toml

/root/repo/target/debug/examples/libanalytics_tpch-d91ad69d4c32a5f4.rmeta: crates/workloads/../../examples/analytics_tpch.rs Cargo.toml

crates/workloads/../../examples/analytics_tpch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
