/root/repo/target/debug/examples/cloud_outsourcing-ed8d5e02d8cda30a.d: crates/core/../../examples/cloud_outsourcing.rs

/root/repo/target/debug/examples/libcloud_outsourcing-ed8d5e02d8cda30a.rmeta: crates/core/../../examples/cloud_outsourcing.rs

crates/core/../../examples/cloud_outsourcing.rs:
