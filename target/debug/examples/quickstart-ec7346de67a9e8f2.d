/root/repo/target/debug/examples/quickstart-ec7346de67a9e8f2.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ec7346de67a9e8f2: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
