/root/repo/target/debug/examples/quickstart-0e688db8c14d2310.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-0e688db8c14d2310.rmeta: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
