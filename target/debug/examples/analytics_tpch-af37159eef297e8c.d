/root/repo/target/debug/examples/analytics_tpch-af37159eef297e8c.d: crates/workloads/../../examples/analytics_tpch.rs

/root/repo/target/debug/examples/analytics_tpch-af37159eef297e8c: crates/workloads/../../examples/analytics_tpch.rs

crates/workloads/../../examples/analytics_tpch.rs:
