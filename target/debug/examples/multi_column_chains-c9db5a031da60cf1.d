/root/repo/target/debug/examples/multi_column_chains-c9db5a031da60cf1.d: crates/core/../../examples/multi_column_chains.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_column_chains-c9db5a031da60cf1.rmeta: crates/core/../../examples/multi_column_chains.rs Cargo.toml

crates/core/../../examples/multi_column_chains.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
