/root/repo/target/debug/examples/cloud_outsourcing-849843f43b94b27f.d: crates/core/../../examples/cloud_outsourcing.rs Cargo.toml

/root/repo/target/debug/examples/libcloud_outsourcing-849843f43b94b27f.rmeta: crates/core/../../examples/cloud_outsourcing.rs Cargo.toml

crates/core/../../examples/cloud_outsourcing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
