/root/repo/target/debug/examples/analytics_tpch-d40b6d5edf579191.d: crates/workloads/../../examples/analytics_tpch.rs

/root/repo/target/debug/examples/libanalytics_tpch-d40b6d5edf579191.rmeta: crates/workloads/../../examples/analytics_tpch.rs

crates/workloads/../../examples/analytics_tpch.rs:
