/root/repo/target/debug/examples/quickstart-baa404ac22bd7d63.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-baa404ac22bd7d63.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
