/root/repo/target/debug/examples/multi_column_chains-f7a58b1e1ec36f8b.d: crates/core/../../examples/multi_column_chains.rs

/root/repo/target/debug/examples/multi_column_chains-f7a58b1e1ec36f8b: crates/core/../../examples/multi_column_chains.rs

crates/core/../../examples/multi_column_chains.rs:
