/root/repo/target/debug/examples/attack_detection-f51893997eb1d1c7.d: crates/core/../../examples/attack_detection.rs Cargo.toml

/root/repo/target/debug/examples/libattack_detection-f51893997eb1d1c7.rmeta: crates/core/../../examples/attack_detection.rs Cargo.toml

crates/core/../../examples/attack_detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
