/root/repo/target/debug/examples/multi_column_chains-25277b1043407986.d: crates/core/../../examples/multi_column_chains.rs

/root/repo/target/debug/examples/libmulti_column_chains-25277b1043407986.rmeta: crates/core/../../examples/multi_column_chains.rs

crates/core/../../examples/multi_column_chains.rs:
