/root/repo/target/debug/examples/attack_detection-af5ef0ac9ef0cb1a.d: crates/core/../../examples/attack_detection.rs

/root/repo/target/debug/examples/libattack_detection-af5ef0ac9ef0cb1a.rmeta: crates/core/../../examples/attack_detection.rs

crates/core/../../examples/attack_detection.rs:
