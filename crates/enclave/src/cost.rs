//! Simulated SGX cost accounting.
//!
//! The paper's design decisions are driven by three cost facts (§2.1):
//! ECalls cost ≈8 000 cycles, EPC page swaps ≈40 000 cycles, and EPC is
//! limited to ~96 MB. The [`CostModel`] charges those costs as pure
//! accounting so benchmarks and examples can report *how many* boundary
//! crossings and EPC faults a design incurs — the quantity VeriDB's
//! architecture minimizes — without pretending to emulate wall-clock SGX
//! latency.

use crate::calls::{ECALL_CYCLES, OCALL_CYCLES};
use crate::epc::EPC_SWAP_CYCLES;
use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe simulated-cost counters for one enclave.
#[derive(Debug, Default)]
pub struct CostModel {
    ecalls: AtomicU64,
    ocalls: AtomicU64,
    epc_swaps: AtomicU64,
    prf_evals: AtomicU64,
    verified_reads: AtomicU64,
    verified_writes: AtomicU64,
    pages_scanned: AtomicU64,
    simulated_cycles: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostSnapshot {
    /// ECall boundary crossings charged.
    pub ecalls: u64,
    /// OCall boundary crossings charged.
    pub ocalls: u64,
    /// EPC page swaps charged (allocations beyond the budget).
    pub epc_swaps: u64,
    /// PRF evaluations performed for RS/WS digest updates.
    pub prf_evals: u64,
    /// Verified read primitives executed.
    pub verified_reads: u64,
    /// Verified write primitives executed.
    pub verified_writes: u64,
    /// Pages scanned by the deferred verifier.
    pub pages_scanned: u64,
    /// Total simulated cycles across all charged events.
    pub simulated_cycles: u64,
}

impl CostSnapshot {
    /// Difference of two snapshots (self - earlier), saturating.
    pub fn since(&self, earlier: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            ecalls: self.ecalls.saturating_sub(earlier.ecalls),
            ocalls: self.ocalls.saturating_sub(earlier.ocalls),
            epc_swaps: self.epc_swaps.saturating_sub(earlier.epc_swaps),
            prf_evals: self.prf_evals.saturating_sub(earlier.prf_evals),
            verified_reads: self.verified_reads.saturating_sub(earlier.verified_reads),
            verified_writes: self.verified_writes.saturating_sub(earlier.verified_writes),
            pages_scanned: self.pages_scanned.saturating_sub(earlier.pages_scanned),
            simulated_cycles: self
                .simulated_cycles
                .saturating_sub(earlier.simulated_cycles),
        }
    }
}

impl CostModel {
    /// Fresh, zeroed model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge one ECall.
    pub fn charge_ecall(&self) {
        self.ecalls.fetch_add(1, Ordering::Relaxed);
        self.simulated_cycles
            .fetch_add(ECALL_CYCLES, Ordering::Relaxed);
    }

    /// Charge one OCall.
    pub fn charge_ocall(&self) {
        self.ocalls.fetch_add(1, Ordering::Relaxed);
        self.simulated_cycles
            .fetch_add(OCALL_CYCLES, Ordering::Relaxed);
    }

    /// Charge one EPC page swap.
    pub fn charge_epc_swap(&self) {
        self.epc_swaps.fetch_add(1, Ordering::Relaxed);
        self.simulated_cycles
            .fetch_add(EPC_SWAP_CYCLES, Ordering::Relaxed);
    }

    /// Record `n` PRF evaluations (dominant RS/WS maintenance cost, §6.1).
    pub fn charge_prf(&self, n: u64) {
        self.prf_evals.fetch_add(n, Ordering::Relaxed);
    }

    /// Record a verified read primitive.
    pub fn charge_verified_read(&self) {
        self.verified_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` verified read primitives at once (batched read path).
    pub fn charge_verified_reads(&self, n: u64) {
        self.verified_reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Record a verified write primitive.
    pub fn charge_verified_write(&self) {
        self.verified_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` verified write primitives at once (batched write path).
    pub fn charge_verified_writes(&self, n: u64) {
        self.verified_writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Record a page scanned by the deferred verifier.
    pub fn charge_page_scan(&self) {
        self.pages_scanned.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy all counters.
    pub fn snapshot(&self) -> CostSnapshot {
        CostSnapshot {
            ecalls: self.ecalls.load(Ordering::Relaxed),
            ocalls: self.ocalls.load(Ordering::Relaxed),
            epc_swaps: self.epc_swaps.load(Ordering::Relaxed),
            prf_evals: self.prf_evals.load(Ordering::Relaxed),
            verified_reads: self.verified_reads.load(Ordering::Relaxed),
            verified_writes: self.verified_writes.load(Ordering::Relaxed),
            pages_scanned: self.pages_scanned.load(Ordering::Relaxed),
            simulated_cycles: self.simulated_cycles.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter (benchmark harness hook).
    pub fn reset(&self) {
        self.ecalls.store(0, Ordering::Relaxed);
        self.ocalls.store(0, Ordering::Relaxed);
        self.epc_swaps.store(0, Ordering::Relaxed);
        self.prf_evals.store(0, Ordering::Relaxed);
        self.verified_reads.store(0, Ordering::Relaxed);
        self.verified_writes.store(0, Ordering::Relaxed);
        self.pages_scanned.store(0, Ordering::Relaxed);
        self.simulated_cycles.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_into_cycles() {
        let m = CostModel::new();
        m.charge_ecall();
        m.charge_ecall();
        m.charge_ocall();
        m.charge_epc_swap();
        m.charge_prf(5);
        m.charge_verified_read();
        m.charge_verified_write();
        m.charge_page_scan();
        let s = m.snapshot();
        assert_eq!(s.ecalls, 2);
        assert_eq!(s.ocalls, 1);
        assert_eq!(s.epc_swaps, 1);
        assert_eq!(s.prf_evals, 5);
        assert_eq!(s.verified_reads, 1);
        assert_eq!(s.verified_writes, 1);
        assert_eq!(s.pages_scanned, 1);
        assert_eq!(
            s.simulated_cycles,
            2 * ECALL_CYCLES + OCALL_CYCLES + EPC_SWAP_CYCLES
        );
    }

    #[test]
    fn since_computes_deltas() {
        let m = CostModel::new();
        m.charge_ecall();
        let a = m.snapshot();
        m.charge_ecall();
        m.charge_prf(3);
        let b = m.snapshot();
        let d = b.since(&a);
        assert_eq!(d.ecalls, 1);
        assert_eq!(d.prf_evals, 3);
    }

    #[test]
    fn reset_zeroes() {
        let m = CostModel::new();
        m.charge_ecall();
        m.reset();
        assert_eq!(m.snapshot(), CostSnapshot::default());
    }
}
