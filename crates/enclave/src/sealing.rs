//! Sealed storage (simulated `sgx_seal_data`).
//!
//! Sealing lets an enclave hand a secret to the untrusted host for
//! persistence such that only the *same enclave identity* can recover it.
//! VeriDB can seal checkpoint synopses (RS/WS digests + timestamp
//! high-water mark) so recovery does not always have to replay from a
//! replica — with the caveat, stressed by the paper (§5.1), that sealed
//! state alone cannot prevent rollback: the host can re-offer an *older*
//! sealed blob. That is exactly what the sequence-number defense catches,
//! and `veridb-query::portal` wires the two together.
//!
//! Construction: authenticated stream encryption built from HMAC-SHA-256 —
//! a keystream of `HMAC(key, "stream" ‖ nonce ‖ counter)` blocks, with an
//! encrypt-then-MAC tag over `nonce ‖ ciphertext`. Not a production AEAD,
//! but a real one (confidentiality against the host, integrity against
//! tampering), sufficient for a simulation whose adversary model we also
//! control.

use crate::mac::{derive_key, Mac, MacKey, MAC_LEN};
use veridb_common::codec::{put_bytes, Reader};
use veridb_common::{Error, Result};

/// A sealed blob: safe to hand to the untrusted host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBlob {
    nonce: [u8; 16],
    ciphertext: Vec<u8>,
    tag: Mac,
}

impl SealedBlob {
    /// Size of the sealed payload in bytes.
    pub fn len(&self) -> usize {
        self.ciphertext.len()
    }

    /// Whether the sealed payload is empty.
    pub fn is_empty(&self) -> bool {
        self.ciphertext.is_empty()
    }

    /// Host-side tampering hook for attack tests: flip one ciphertext bit.
    #[doc(hidden)]
    pub fn corrupt_for_test(&mut self) {
        if let Some(b) = self.ciphertext.first_mut() {
            *b ^= 1;
        }
    }

    /// Canonical byte encoding, for handing the blob to the untrusted host
    /// for persistence (manifest files) or transport (the replica seed
    /// hand-off). The bytes are exactly what [`Sealer::unseal`]
    /// authenticates, so a host that mangles them gets `AuthFailed`, never
    /// a silent misparse.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16 + 4 + self.ciphertext.len() + MAC_LEN);
        buf.extend_from_slice(&self.nonce);
        put_bytes(&mut buf, &self.ciphertext);
        buf.extend_from_slice(&self.tag.0);
        buf
    }

    /// Decode bytes produced by [`SealedBlob::to_bytes`]. The input comes
    /// from untrusted storage: truncation or trailing garbage is
    /// [`Error::Codec`], never a panic. Decoding performs no integrity
    /// check — that is [`Sealer::unseal`]'s job.
    pub fn from_bytes(bytes: &[u8]) -> Result<SealedBlob> {
        let mut r = Reader::new(bytes);
        let mut nonce = [0u8; 16];
        if r.remaining() < 16 {
            return Err(Error::Codec("sealed blob truncated before nonce".into()));
        }
        for b in nonce.iter_mut() {
            *b = r.get_u8()?;
        }
        let ciphertext = r.get_bytes()?.to_vec();
        let mut tag = [0u8; MAC_LEN];
        if r.remaining() != MAC_LEN {
            return Err(Error::Codec(format!(
                "sealed blob tag is {} bytes, expected {MAC_LEN}",
                r.remaining()
            )));
        }
        for b in tag.iter_mut() {
            *b = r.get_u8()?;
        }
        Ok(SealedBlob {
            nonce,
            ciphertext,
            tag: Mac(tag),
        })
    }
}

/// Seals and unseals data under an enclave-derived key.
pub struct Sealer {
    enc_key: [u8; 32],
    mac: MacKey,
}

impl Sealer {
    /// Build a sealer from a 32-byte enclave key (derive one per purpose
    /// via [`crate::Enclave::derive_key`]).
    pub fn new(key: [u8; 32]) -> Self {
        Sealer {
            enc_key: derive_key(&key, b"seal-enc"),
            mac: MacKey::new(derive_key(&key, b"seal-mac")),
        }
    }

    fn keystream_block(&self, nonce: &[u8; 16], counter: u64) -> [u8; 32] {
        let mut label = Vec::with_capacity(30);
        label.extend_from_slice(b"stream");
        label.extend_from_slice(nonce);
        label.extend_from_slice(&counter.to_le_bytes());
        derive_key(&self.enc_key, &label)
    }

    fn xor_stream(&self, nonce: &[u8; 16], data: &mut [u8]) {
        for (i, chunk) in data.chunks_mut(32).enumerate() {
            let block = self.keystream_block(nonce, i as u64);
            for (b, k) in chunk.iter_mut().zip(block.iter()) {
                *b ^= k;
            }
        }
    }

    /// Seal `plaintext` with a fresh nonce.
    pub fn seal(&self, plaintext: &[u8], nonce: [u8; 16]) -> SealedBlob {
        let mut ciphertext = plaintext.to_vec();
        self.xor_stream(&nonce, &mut ciphertext);
        let tag = self.mac.sign(&[&nonce, &ciphertext]);
        SealedBlob {
            nonce,
            ciphertext,
            tag,
        }
    }

    /// Unseal a blob, verifying integrity first.
    pub fn unseal(&self, blob: &SealedBlob) -> Result<Vec<u8>> {
        if !self.mac.verify(&[&blob.nonce, &blob.ciphertext], &blob.tag) {
            return Err(Error::AuthFailed(
                "sealed blob failed integrity check".into(),
            ));
        }
        let mut plaintext = blob.ciphertext.clone();
        self.xor_stream(&blob.nonce, &mut plaintext);
        Ok(plaintext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sealer(seed: u8) -> Sealer {
        Sealer::new([seed; 32])
    }

    #[test]
    fn seal_unseal_round_trip() {
        let s = sealer(1);
        let blob = s.seal(b"rsws digest state", [9u8; 16]);
        assert_eq!(s.unseal(&blob).unwrap(), b"rsws digest state");
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let s = sealer(1);
        let blob = s.seal(b"secret secret secret", [9u8; 16]);
        assert_ne!(blob.ciphertext.as_slice(), b"secret secret secret");
    }

    #[test]
    fn tampering_detected() {
        let s = sealer(1);
        let mut blob = s.seal(b"payload", [9u8; 16]);
        blob.corrupt_for_test();
        let err = s.unseal(&blob).unwrap_err();
        assert!(err.is_security_violation());
    }

    #[test]
    fn wrong_enclave_identity_cannot_unseal() {
        let blob = sealer(1).seal(b"payload", [9u8; 16]);
        assert!(sealer(2).unseal(&blob).is_err());
    }

    #[test]
    fn empty_and_large_payloads() {
        let s = sealer(3);
        let blob = s.seal(b"", [0u8; 16]);
        assert_eq!(s.unseal(&blob).unwrap(), b"");
        let big = vec![0xA5u8; 100_000];
        let blob = s.seal(&big, [1u8; 16]);
        assert_eq!(s.unseal(&blob).unwrap(), big);
    }

    #[test]
    fn distinct_nonces_give_distinct_ciphertexts() {
        let s = sealer(4);
        let a = s.seal(b"same plaintext", [1u8; 16]);
        let b = s.seal(b"same plaintext", [2u8; 16]);
        assert_ne!(a.ciphertext, b.ciphertext);
    }

    #[test]
    fn byte_encoding_round_trips_and_still_unseals() {
        let s = sealer(5);
        let blob = s.seal(b"manifest payload", [3u8; 16]);
        let bytes = blob.to_bytes();
        let back = SealedBlob::from_bytes(&bytes).unwrap();
        assert_eq!(back, blob);
        assert_eq!(s.unseal(&back).unwrap(), b"manifest payload");
    }

    #[test]
    fn truncated_encoding_errors_cleanly_at_every_offset() {
        let bytes = sealer(6).seal(b"some payload", [4u8; 16]).to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                SealedBlob::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must error"
            );
        }
        // Trailing garbage is rejected too (tag length check).
        let mut long = bytes.clone();
        long.push(0);
        assert!(SealedBlob::from_bytes(&long).is_err());
    }

    #[test]
    fn tampered_encoding_fails_unseal_not_decode() {
        let s = sealer(7);
        let mut bytes = s.seal(b"payload", [5u8; 16]).to_bytes();
        bytes[20] ^= 0x40; // inside the ciphertext
        let blob = SealedBlob::from_bytes(&bytes).unwrap();
        assert!(s.unseal(&blob).unwrap_err().is_security_violation());
    }
}
