//! Simulated Enclave Page Cache (EPC) accounting.
//!
//! EPC is the scarce protected memory inside SGX — ~128 MB reserved, with
//! usable capacity for enclaves closer to 96 MB (§2.1, §3.3). VeriDB's
//! central design decision is to keep the database *out* of EPC and store
//! only a small synopsis (digests, bitmaps, counters) inside.
//!
//! The [`EpcAllocator`] enforces the budget for in-enclave state: every
//! enclave-resident structure registers its footprint via
//! [`EpcAllocator::allocate`]. Allocation beyond the budget either fails
//! (strict mode) or succeeds while charging simulated page-swap costs —
//! modelling SGX's demand paging and making "your working set spilled out
//! of EPC" visible in benchmark output instead of silently free.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use veridb_common::{Error, Result};

/// Size of one EPC page (standard 4 KiB).
pub const EPC_PAGE_BYTES: usize = 4096;

/// Simulated cycle cost of swapping one EPC page (§2.1: "a page swapping
/// can easily consume 40000 CPU cycles").
pub const EPC_SWAP_CYCLES: u64 = 40_000;

/// Tracks enclave-resident memory against the EPC budget.
#[derive(Debug)]
pub struct EpcAllocator {
    budget: usize,
    allocated: Arc<AtomicU64>,
    /// Highest `allocated` value ever observed (bytes).
    high_water: AtomicU64,
    /// Total simulated page swaps incurred by over-budget allocations.
    swaps: AtomicU64,
    /// When true, over-budget allocations fail instead of paging.
    strict: AtomicBool,
}

/// RAII guard for an EPC allocation; releases its bytes on drop.
#[derive(Debug)]
pub struct EpcAllocation {
    bytes: usize,
    allocated: Arc<AtomicU64>,
}

impl Drop for EpcAllocation {
    fn drop(&mut self) {
        self.allocated
            .fetch_sub(self.bytes as u64, Ordering::Relaxed);
    }
}

impl EpcAllocation {
    /// Size of this allocation in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl EpcAllocator {
    /// Allocator with the given budget in bytes.
    pub fn new(budget: usize) -> Self {
        EpcAllocator {
            budget,
            allocated: Arc::new(AtomicU64::new(0)),
            high_water: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            strict: AtomicBool::new(false),
        }
    }

    /// The configured budget in bytes.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Bytes currently accounted as enclave-resident.
    pub fn allocated(&self) -> usize {
        self.allocated.load(Ordering::Relaxed) as usize
    }

    /// Highest enclave-resident footprint ever reached, in bytes. Unlike
    /// `allocated`, this never decreases — it is the "how close did we get
    /// to the budget" figure benchmarks report.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed) as usize
    }

    /// Simulated page swaps incurred so far.
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// In strict mode, allocations beyond the budget return
    /// [`Error::EpcExhausted`] instead of charging swap costs.
    pub fn set_strict(&self, strict: bool) {
        self.strict.store(strict, Ordering::Relaxed);
    }

    /// Register `bytes` of enclave-resident state.
    ///
    /// Returns a guard that releases the bytes on drop. If the allocation
    /// pushes usage past the budget, each over-budget page charges one
    /// simulated swap (or the call fails in strict mode).
    pub fn allocate(&self, bytes: usize) -> Result<EpcAllocation> {
        let before = self.allocated.fetch_add(bytes as u64, Ordering::Relaxed) as usize;
        let after = before + bytes;
        if after > self.budget {
            if self.strict.load(Ordering::Relaxed) {
                self.allocated.fetch_sub(bytes as u64, Ordering::Relaxed);
                return Err(Error::EpcExhausted {
                    requested: bytes,
                    budget: self.budget,
                });
            }
            let over_pages = (after - self.budget.max(before)).div_ceil(EPC_PAGE_BYTES) as u64;
            self.swaps.fetch_add(over_pages.max(1), Ordering::Relaxed);
        }
        self.high_water.fetch_max(after as u64, Ordering::Relaxed);
        Ok(EpcAllocation {
            bytes,
            allocated: Arc::clone(&self.allocated),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_tracks_and_releases() {
        let epc = EpcAllocator::new(10 * EPC_PAGE_BYTES);
        let a = epc.allocate(4096).unwrap();
        assert_eq!(epc.allocated(), 4096);
        let b = epc.allocate(8192).unwrap();
        assert_eq!(epc.allocated(), 12288);
        drop(a);
        assert_eq!(epc.allocated(), 8192);
        drop(b);
        assert_eq!(epc.allocated(), 0);
        assert_eq!(epc.swaps(), 0);
    }

    #[test]
    fn over_budget_charges_swaps() {
        let epc = EpcAllocator::new(2 * EPC_PAGE_BYTES);
        let _a = epc.allocate(2 * EPC_PAGE_BYTES).unwrap();
        assert_eq!(epc.swaps(), 0);
        let _b = epc.allocate(3 * EPC_PAGE_BYTES).unwrap();
        assert_eq!(epc.swaps(), 3);
    }

    #[test]
    fn high_water_mark_survives_frees() {
        let epc = EpcAllocator::new(10 * EPC_PAGE_BYTES);
        let a = epc.allocate(4096).unwrap();
        let b = epc.allocate(8192).unwrap();
        assert_eq!(epc.high_water(), 12288);
        drop(a);
        drop(b);
        assert_eq!(epc.allocated(), 0);
        assert_eq!(epc.high_water(), 12288);
        let _c = epc.allocate(1024).unwrap();
        assert_eq!(epc.high_water(), 12288);
    }

    #[test]
    fn strict_mode_fails_instead_of_paging() {
        let epc = EpcAllocator::new(EPC_PAGE_BYTES);
        epc.set_strict(true);
        let _a = epc.allocate(EPC_PAGE_BYTES).unwrap();
        let err = epc.allocate(1).unwrap_err();
        assert!(matches!(err, Error::EpcExhausted { .. }));
        // Failed allocation must not leak accounting.
        assert_eq!(epc.allocated(), EPC_PAGE_BYTES);
    }
}
