//! Simulated remote attestation.
//!
//! Real SGX attestation: an enclave produces a *report* (its measurement +
//! 64 bytes of user data) which the platform's *quoting enclave* signs into
//! a *quote*; the client checks the signature against Intel's attestation
//! service and compares the measurement against the known-good VeriDB
//! build.
//!
//! Here the quoting enclave is a [`QuotingEnclave`] object holding a
//! signing key (HMAC standing in for EPID/ECDSA), and the "attestation
//! service root of trust" is a [`QuotingEnclave::verifier`] handle sharing
//! that key. The protocol shape — bind a client nonce into the quote, check
//! measurement *and* signature *and* nonce — is exactly what a real client
//! performs, so the handshake code in `veridb-query::client` exercises the
//! genuine logic.

use crate::mac::{sha256, Mac, MacKey};

/// An enclave code measurement (MRENCLAVE analogue): SHA-256 of the code
/// identity.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Measurement([u8; 32]);

impl Measurement {
    /// Measure a code image.
    pub fn of_code(code: &[u8]) -> Self {
        Measurement(sha256(&[b"veridb-enclave-code", code]))
    }

    /// Raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Reconstruct a measurement from raw digest bytes, e.g. after decoding
    /// a quote off the wire. Carries no authenticity by itself — the quote
    /// signature is what binds it to a real enclave.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Measurement(bytes)
    }
}

impl std::fmt::Debug for Measurement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Measurement({:02x}{:02x}{:02x}{:02x}…)",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

/// An attestation report: measurement + user data (e.g. a key-exchange
/// nonce or a public key fingerprint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// The reporting enclave's measurement.
    pub measurement: Measurement,
    /// Hash of the user data bound into the report.
    pub user_data: [u8; 32],
}

impl Report {
    /// Build a report binding `user_data`.
    pub fn new(measurement: Measurement, user_data: &[u8]) -> Self {
        Report {
            measurement,
            user_data: sha256(&[b"report-user-data", user_data]),
        }
    }
}

/// A signed quote: report + signature from the quoting enclave.
#[derive(Debug, Clone)]
pub struct Quote {
    /// The signed report.
    pub report: Report,
    /// Signature over the report.
    pub signature: Mac,
}

/// The platform's quoting enclave (simulated). Owns the attestation
/// signing key.
pub struct QuotingEnclave {
    key: MacKey,
}

/// Client-side verifier for quotes produced by one [`QuotingEnclave`].
/// Stands in for "verify against the Intel attestation service".
#[derive(Clone)]
pub struct QuoteVerifier {
    key: MacKey,
}

impl QuotingEnclave {
    /// Create a quoting enclave with the given signing key.
    pub fn new(signing_key: [u8; 32]) -> Self {
        QuotingEnclave {
            key: MacKey::new(signing_key),
        }
    }

    /// Sign a report into a quote.
    pub fn sign(&self, report: Report) -> Quote {
        let signature = self
            .key
            .sign(&[report.measurement.as_bytes(), &report.user_data]);
        Quote { report, signature }
    }

    /// A verifier handle clients use to validate quotes.
    pub fn verifier(&self) -> QuoteVerifier {
        QuoteVerifier {
            key: self.key.clone(),
        }
    }
}

impl QuoteVerifier {
    /// Full client-side attestation check: the quote's signature is valid,
    /// the measurement matches the expected VeriDB build, and the quote
    /// binds the challenge nonce this client sent.
    pub fn verify(
        &self,
        quote: &Quote,
        expected: Measurement,
        user_data: &[u8],
    ) -> Result<(), AttestationError> {
        let sig_ok = self.key.verify(
            &[quote.report.measurement.as_bytes(), &quote.report.user_data],
            &quote.signature,
        );
        if !sig_ok {
            return Err(AttestationError::BadSignature);
        }
        if quote.report.measurement != expected {
            return Err(AttestationError::WrongMeasurement);
        }
        if quote.report.user_data != sha256(&[b"report-user-data", user_data]) {
            return Err(AttestationError::NonceMismatch);
        }
        Ok(())
    }
}

/// Why a quote failed verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttestationError {
    /// Signature did not verify (forged or corrupted quote).
    BadSignature,
    /// The enclave is not the expected VeriDB build.
    WrongMeasurement,
    /// The quote does not bind this client's challenge.
    NonceMismatch,
}

impl std::fmt::Display for AttestationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttestationError::BadSignature => write!(f, "quote signature invalid"),
            AttestationError::WrongMeasurement => {
                write!(f, "enclave measurement does not match expected build")
            }
            AttestationError::NonceMismatch => {
                write!(f, "quote does not bind the client challenge")
            }
        }
    }
}

impl std::error::Error for AttestationError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Enclave;

    #[test]
    fn honest_attestation_verifies() {
        let enclave = Enclave::create("veridb", 1024, [1u8; 32]);
        let qe = QuotingEnclave::new([42u8; 32]);
        let quote = enclave.quote(&qe, b"client-nonce");
        qe.verifier()
            .verify(&quote, enclave.measurement(), b"client-nonce")
            .unwrap();
    }

    #[test]
    fn wrong_measurement_rejected() {
        let enclave = Enclave::create("veridb", 1024, [1u8; 32]);
        let evil = Enclave::create("evil-db", 1024, [1u8; 32]);
        let qe = QuotingEnclave::new([42u8; 32]);
        let quote = evil.quote(&qe, b"nonce");
        assert_eq!(
            qe.verifier()
                .verify(&quote, enclave.measurement(), b"nonce"),
            Err(AttestationError::WrongMeasurement)
        );
    }

    #[test]
    fn forged_signature_rejected() {
        let enclave = Enclave::create("veridb", 1024, [1u8; 32]);
        let qe = QuotingEnclave::new([42u8; 32]);
        let rogue_qe = QuotingEnclave::new([43u8; 32]);
        let quote = enclave.quote(&rogue_qe, b"nonce");
        assert_eq!(
            qe.verifier()
                .verify(&quote, enclave.measurement(), b"nonce"),
            Err(AttestationError::BadSignature)
        );
    }

    #[test]
    fn replayed_nonce_rejected() {
        let enclave = Enclave::create("veridb", 1024, [1u8; 32]);
        let qe = QuotingEnclave::new([42u8; 32]);
        let quote = enclave.quote(&qe, b"old-nonce");
        assert_eq!(
            qe.verifier()
                .verify(&quote, enclave.measurement(), b"fresh-nonce"),
            Err(AttestationError::NonceMismatch)
        );
    }
}
