//! Message authentication codes and key derivation.
//!
//! VeriDB authenticates the client↔portal channel with MACs over a
//! pre-exchanged key (§5.1): each query carries `MAC_k(qid ‖ sql)` and each
//! result is endorsed with `MAC_k(qid ‖ seq ‖ result-digest)`. We use
//! HMAC-SHA-256, with constant-time verification.

use hmac::{Hmac, Mac as HmacTrait};
use sha2::{Digest, Sha256};

type HmacSha256 = Hmac<Sha256>;

/// Length in bytes of a MAC tag.
pub const MAC_LEN: usize = 32;

/// A MAC tag.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mac(pub [u8; MAC_LEN]);

impl std::fmt::Debug for Mac {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Mac({:02x}{:02x}{:02x}{:02x}…)",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

/// A symmetric MAC key. The raw bytes are module-private; the key can only
/// sign and verify.
#[derive(Clone)]
pub struct MacKey {
    key: [u8; 32],
}

impl MacKey {
    /// Wrap raw key bytes.
    pub fn new(key: [u8; 32]) -> Self {
        MacKey { key }
    }

    /// Compute `HMAC-SHA256(key, parts[0] ‖ len ‖ parts[1] ‖ len ‖ …)`.
    /// Each part is length-framed so concatenation ambiguity cannot forge
    /// across field boundaries.
    pub fn sign(&self, parts: &[&[u8]]) -> Mac {
        let mut mac = HmacSha256::new_from_slice(&self.key).expect("HMAC accepts any key length");
        for p in parts {
            mac.update(&(p.len() as u64).to_le_bytes());
            mac.update(p);
        }
        let out = mac.finalize().into_bytes();
        let mut tag = [0u8; MAC_LEN];
        tag.copy_from_slice(&out);
        Mac(tag)
    }

    /// Export the raw key bytes as the simulated attested key-exchange
    /// payload. In real SGX the channel key would be established inside the
    /// attested TLS handshake; in this simulation the server hands the key
    /// to a client that has verified the enclave quote. The only caller is
    /// the attestation handshake — the key never appears in logs or Debug.
    pub fn key_exchange_bytes(&self) -> [u8; 32] {
        self.key
    }

    /// Verify `tag` over `parts` in constant time.
    pub fn verify(&self, parts: &[&[u8]], tag: &Mac) -> bool {
        let mut mac = HmacSha256::new_from_slice(&self.key).expect("HMAC accepts any key length");
        for p in parts {
            mac.update(&(p.len() as u64).to_le_bytes());
            mac.update(p);
        }
        mac.verify_slice(&tag.0).is_ok()
    }
}

impl std::fmt::Debug for MacKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MacKey(…)") // never print key bytes
    }
}

/// Derive a 32-byte sub-key: `SHA256(parent ‖ label)` through HMAC
/// (HKDF-style extract-and-expand collapsed to one step, which is fine for
/// fixed-length uniform parents).
pub fn derive_key(parent: &[u8; 32], label: &[u8]) -> [u8; 32] {
    let mut mac = HmacSha256::new_from_slice(parent).expect("any key length");
    mac.update(label);
    let out = mac.finalize().into_bytes();
    let mut key = [0u8; 32];
    key.copy_from_slice(&out);
    key
}

/// SHA-256 convenience used by attestation and result digests.
pub fn sha256(parts: &[&[u8]]) -> [u8; 32] {
    let mut h = Sha256::new();
    for p in parts {
        h.update((p.len() as u64).to_le_bytes());
        h.update(p);
    }
    let out = h.finalize();
    let mut d = [0u8; 32];
    d.copy_from_slice(&out);
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_round_trip() {
        let k = MacKey::new([3u8; 32]);
        let tag = k.sign(&[b"hello", b"world"]);
        assert!(k.verify(&[b"hello", b"world"], &tag));
    }

    #[test]
    fn tampered_message_fails() {
        let k = MacKey::new([3u8; 32]);
        let tag = k.sign(&[b"hello"]);
        assert!(!k.verify(&[b"hellO"], &tag));
    }

    #[test]
    fn wrong_key_fails() {
        let k1 = MacKey::new([3u8; 32]);
        let k2 = MacKey::new([4u8; 32]);
        let tag = k1.sign(&[b"hello"]);
        assert!(!k2.verify(&[b"hello"], &tag));
    }

    #[test]
    fn length_framing_prevents_boundary_shifts() {
        let k = MacKey::new([5u8; 32]);
        let tag = k.sign(&[b"ab", b"c"]);
        // Same concatenated bytes, different field split: must not verify.
        assert!(!k.verify(&[b"a", b"bc"], &tag));
        assert!(!k.verify(&[b"abc"], &tag));
    }

    #[test]
    fn key_derivation_is_deterministic_and_separated() {
        let parent = [9u8; 32];
        assert_eq!(derive_key(&parent, b"a"), derive_key(&parent, b"a"));
        assert_ne!(derive_key(&parent, b"a"), derive_key(&parent, b"b"));
        assert_ne!(derive_key(&parent, b"a"), derive_key(&[8u8; 32], b"a"));
    }

    #[test]
    fn debug_never_prints_key_material() {
        let k = MacKey::new([0xAB; 32]);
        let s = format!("{k:?}");
        assert!(!s.to_lowercase().contains("ab"));
    }
}
