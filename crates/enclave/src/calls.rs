//! ECall/OCall cost constants.
//!
//! The numbers come straight from the paper's background section (§2.1):
//! "an ECall is expensive, which is about 8000 cycles" (citing HotCalls and
//! Eleos), and "a page swapping can easily consume 40000 CPU cycles".
//! OCalls are comparable to ECalls in published measurements; we use the
//! same figure.

/// Simulated cycle cost of entering the enclave (one ECall).
pub const ECALL_CYCLES: u64 = 8_000;

/// Simulated cycle cost of leaving the enclave (one OCall).
pub const OCALL_CYCLES: u64 = 8_000;
