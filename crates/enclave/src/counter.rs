//! Strictly increasing counters.
//!
//! Two protocol roles, one mechanism:
//!
//! - Per-cell **timestamps** of the write-read-consistent memory: the Blum
//!   checker needs each write to carry a timestamp strictly greater than
//!   any the cell has seen, or replaying a stale value would cancel out of
//!   the RS/WS digests.
//! - Query **sequence numbers** for the rollback defense (§5.1): the portal
//!   assigns each query the next counter value; a rollback necessarily
//!   repeats a value the client has already seen.

use std::sync::atomic::{AtomicU64, Ordering};

/// A thread-safe, strictly increasing `u64` counter.
#[derive(Debug)]
pub struct MonotonicCounter {
    next: AtomicU64,
}

impl MonotonicCounter {
    /// Counter whose first `next()` returns `start`.
    pub fn new(start: u64) -> Self {
        MonotonicCounter {
            next: AtomicU64::new(start),
        }
    }

    /// Take the next value. Each call returns a strictly larger value than
    /// every previous call, across threads.
    pub fn next(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Reserve a contiguous block of `n` values with one counter update,
    /// returning the first. The caller exclusively owns
    /// `[start, start + n)`; batched memory operations use this to stamp
    /// many cells per reservation.
    pub fn next_block(&self, n: u64) -> u64 {
        self.next.fetch_add(n, Ordering::Relaxed)
    }

    /// The value the next `next()` call would return.
    pub fn current(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Move the counter forward so that future values exceed `at_least`.
    /// Never moves backwards (monotonicity is the security property).
    pub fn advance_to(&self, at_least: u64) {
        self.next
            .fetch_max(at_least.saturating_add(1), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_values_increase() {
        let c = MonotonicCounter::new(10);
        assert_eq!(c.next(), 10);
        assert_eq!(c.next(), 11);
        assert_eq!(c.current(), 12);
    }

    #[test]
    fn advance_only_forward() {
        let c = MonotonicCounter::new(0);
        c.advance_to(100);
        assert_eq!(c.next(), 101);
        c.advance_to(50);
        assert_eq!(c.next(), 102);
    }

    #[test]
    fn concurrent_uniqueness() {
        let c = Arc::new(MonotonicCounter::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| c.next()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8000, "counter values must be unique");
    }
}
