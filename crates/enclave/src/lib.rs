//! Simulated Intel SGX enclave substrate.
//!
//! VeriDB's design needs four things from SGX (§2.1, §3.3 of the paper):
//!
//! 1. **An isolated trust domain** holding a small amount of secret state
//!    (PRF keys, RS/WS digests, monotonic counters) that the untrusted host
//!    cannot read or modify.
//! 2. **Call gates** (ECalls/OCalls) whose crossing cost is significant
//!    (≈8 000 cycles per ECall) — the reason VeriDB colocates the query
//!    engine with the storage primitives inside the enclave.
//! 3. **A scarce protected memory** (EPC, ~96 MB usable) — the reason the
//!    database itself lives *outside* the enclave, with page-swap costs
//!    (~40 000 cycles) charged when the budget is exceeded.
//! 4. **Remote attestation and sealing** so a client can establish that it
//!    is talking to the genuine VeriDB enclave and exchange a channel key.
//!
//! Since this reproduction runs without SGX hardware, we *simulate the
//! isolation and the costs, but run the real protocol logic*: every piece
//! of in-enclave state lives behind the [`Enclave`] type, reachable only
//! through its methods (the simulated ECall surface), and a [`CostModel`]
//! charges simulated cycles for boundary crossings and EPC pressure so the
//! benchmark harness can report the same cost structure the paper discusses.
//!
//! Nothing here sleeps or burns CPU to "simulate" latency — costs are pure
//! accounting, queryable via [`CostModel::snapshot`].

pub mod attestation;
pub mod calls;
pub mod cost;
pub mod counter;
pub mod epc;
pub mod mac;
pub mod sealing;

pub use attestation::{Measurement, Quote, QuotingEnclave, Report};
pub use calls::{ECALL_CYCLES, OCALL_CYCLES};
pub use cost::{CostModel, CostSnapshot};
pub use counter::MonotonicCounter;
pub use epc::{EpcAllocation, EpcAllocator, EPC_PAGE_BYTES, EPC_SWAP_CYCLES};
pub use mac::{Mac, MacKey, MAC_LEN};

use std::sync::Arc;
use veridb_common::obs::{Metrics, MetricsSnapshot};

/// A simulated SGX enclave: the single trust anchor of a VeriDB instance.
///
/// All secrets are private fields; the untrusted world interacts with the
/// enclave only through methods, which stand in for the ECall interface.
/// Cloning an `Enclave` handle shares the same trust domain (Arc inside).
#[derive(Clone)]
pub struct Enclave {
    inner: Arc<EnclaveInner>,
}

struct EnclaveInner {
    /// Code identity (MRENCLAVE analogue) fixed at creation.
    measurement: Measurement,
    /// Root secret from which all other keys are derived. In real SGX this
    /// is the sealing key derived from CPU fuses + MRENCLAVE.
    root_key: [u8; 32],
    /// Simulated-cost accounting.
    cost: CostModel,
    /// EPC budget tracking.
    epc: EpcAllocator,
    /// Strictly-increasing timestamp source for the memory-checking
    /// protocol and the rollback-defense sequence numbers.
    timestamps: MonotonicCounter,
    /// `veridb-obs` metric registry. One metrics domain per trust domain:
    /// every layer holding an enclave handle shares this registry.
    metrics: Arc<Metrics>,
}

impl Enclave {
    /// Create an enclave with the given identity string (hashed into the
    /// measurement) and EPC budget in bytes.
    ///
    /// `root_entropy` seeds the root key; production callers pass OS
    /// entropy, tests pass fixed bytes for determinism.
    pub fn create(identity: &str, epc_budget: usize, root_entropy: [u8; 32]) -> Self {
        let measurement = Measurement::of_code(identity.as_bytes());
        // Derive the root key from entropy + measurement, mirroring how the
        // SGX sealing key binds to the enclave identity.
        let root_key = mac::derive_key(&root_entropy, measurement.as_bytes());
        Enclave {
            inner: Arc::new(EnclaveInner {
                measurement,
                root_key,
                cost: CostModel::new(),
                epc: EpcAllocator::new(epc_budget),
                timestamps: MonotonicCounter::new(1),
                metrics: Arc::new(Metrics::new()),
            }),
        }
    }

    /// The sealing key bound to "CPU fuses" + the measurement of
    /// `identity` — derivable *before* any enclave instance exists,
    /// which is what lets a restarted enclave recover its sealed root
    /// entropy from disk and come back up with the same derived keys.
    ///
    /// In real SGX this is `EGETKEY(SEAL_KEY)`: hardware fuse secrets
    /// mixed with MRENCLAVE, identical across launches of the same
    /// enclave on the same CPU. The simulation has one "CPU", so the
    /// fuse secret is a process-wide constant; the measurement binding
    /// still ensures different enclave identities get different keys.
    pub fn fuse_seal_key(identity: &str) -> [u8; 32] {
        const SIMULATED_FUSE_SECRET: [u8; 32] = *b"veridb-simulated-cpu-fuse-secret";
        let m = Measurement::of_code(identity.as_bytes());
        mac::derive_key(&SIMULATED_FUSE_SECRET, m.as_bytes())
    }

    /// Create an enclave with OS randomness for the root key.
    pub fn create_random(identity: &str, epc_budget: usize) -> Self {
        let mut entropy = [0u8; 32];
        rand::RngCore::fill_bytes(&mut rand::thread_rng(), &mut entropy);
        Self::create(identity, epc_budget, entropy)
    }

    /// The enclave's code measurement (MRENCLAVE analogue).
    pub fn measurement(&self) -> Measurement {
        self.inner.measurement
    }

    /// Derive a named sub-key inside the enclave. The label partitions the
    /// key space: `"rsws-prf"`, `"channel-mac"`, `"sealing"` etc. never
    /// collide. The derived key itself never leaves in plaintext — callers
    /// get it wrapped in key objects whose raw bytes are module-private.
    pub fn derive_key(&self, label: &str) -> [u8; 32] {
        mac::derive_key(&self.inner.root_key, label.as_bytes())
    }

    /// A MAC keyed for the given label (e.g. per-client channel keys).
    pub fn mac_key(&self, label: &str) -> MacKey {
        MacKey::new(self.derive_key(label))
    }

    /// The shared cost model for this enclave.
    pub fn cost(&self) -> &CostModel {
        &self.inner.cost
    }

    /// The EPC allocator for this enclave.
    pub fn epc(&self) -> &EpcAllocator {
        &self.inner.epc
    }

    /// The `veridb-obs` metric registry shared by every layer of this
    /// instance. Layers clone the `Arc` and update counters directly.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.inner.metrics
    }

    /// Sample every metric, merging in the figures the always-on cost
    /// substrate maintains (PRF evaluations, ECalls, EPC swaps and
    /// high-water mark) so callers get one coherent snapshot.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.inner.metrics.snapshot();
        let cost = self.inner.cost.snapshot();
        snap.prf_evals = cost.prf_evals;
        snap.ecalls = cost.ecalls;
        snap.epc_swaps = self.inner.epc.swaps();
        snap.epc_high_water_bytes = self.inner.epc.high_water() as u64;
        snap
    }

    /// Next strictly-increasing timestamp. Used as the per-cell timestamp
    /// of the write-read-consistent memory and as the query sequence number
    /// for the rollback defense (§5.1).
    pub fn next_timestamp(&self) -> u64 {
        self.inner.timestamps.next()
    }

    /// Reserve `n` consecutive timestamps with one counter update,
    /// returning the first. Batched memory operations stamp many cells per
    /// protected call; a block reservation keeps that a single atomic.
    pub fn next_timestamp_block(&self, n: u64) -> u64 {
        self.inner.timestamps.next_block(n)
    }

    /// Current timestamp high-water mark (not consumed).
    pub fn current_timestamp(&self) -> u64 {
        self.inner.timestamps.current()
    }

    /// Restore the timestamp counter after recovery. Only moves forward —
    /// a rollback of the counter would itself be a rollback attack.
    pub fn advance_timestamp_to(&self, at_least: u64) {
        self.inner.timestamps.advance_to(at_least);
    }

    /// Produce an attestation quote binding `user_data` (e.g. a client's
    /// key-exchange nonce) to this enclave's measurement, signed by the
    /// simulated quoting infrastructure.
    pub fn quote(&self, qe: &QuotingEnclave, user_data: &[u8]) -> Quote {
        let report = Report::new(self.inner.measurement, user_data);
        qe.sign(report)
    }

    /// Charge one simulated ECall (enter enclave) to the cost model and run
    /// `f` "inside". This is how untrusted-side drivers call protected
    /// procedures; in-enclave code calling in-enclave code does not pay it.
    pub fn ecall<T>(&self, f: impl FnOnce() -> T) -> T {
        self.inner.cost.charge_ecall();
        f()
    }

    /// Charge one simulated OCall (leave enclave) and run `f` "outside".
    pub fn ocall<T>(&self, f: impl FnOnce() -> T) -> T {
        self.inner.cost.charge_ocall();
        f()
    }
}

impl std::fmt::Debug for Enclave {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Enclave")
            .field("measurement", &self.inner.measurement)
            .field("epc", &self.inner.epc)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_enclave() -> Enclave {
        Enclave::create("veridb-test", 1 << 20, [7u8; 32])
    }

    #[test]
    fn same_identity_same_measurement() {
        let a = Enclave::create("veridb", 1024, [1u8; 32]);
        let b = Enclave::create("veridb", 1024, [2u8; 32]);
        assert_eq!(a.measurement(), b.measurement());
        let c = Enclave::create("evil", 1024, [1u8; 32]);
        assert_ne!(a.measurement(), c.measurement());
    }

    #[test]
    fn derived_keys_are_label_separated_and_deterministic() {
        let e = test_enclave();
        let k1 = e.derive_key("rsws-prf");
        let k2 = e.derive_key("channel-mac");
        assert_ne!(k1, k2);
        assert_eq!(k1, test_enclave().derive_key("rsws-prf"));
    }

    #[test]
    fn different_entropy_different_keys() {
        let a = Enclave::create("veridb", 1024, [1u8; 32]);
        let b = Enclave::create("veridb", 1024, [2u8; 32]);
        assert_ne!(a.derive_key("rsws-prf"), b.derive_key("rsws-prf"));
    }

    #[test]
    fn timestamps_strictly_increase_and_recover_forward_only() {
        let e = test_enclave();
        let a = e.next_timestamp();
        let b = e.next_timestamp();
        assert!(b > a);
        e.advance_timestamp_to(1000);
        assert!(e.next_timestamp() > 1000);
        e.advance_timestamp_to(5); // must not go backwards
        assert!(e.next_timestamp() > 1000);
    }

    #[test]
    fn ecall_ocall_are_charged() {
        let e = test_enclave();
        let before = e.cost().snapshot();
        let x = e.ecall(|| 40 + 2);
        assert_eq!(x, 42);
        e.ocall(|| ());
        let after = e.cost().snapshot();
        assert_eq!(after.ecalls, before.ecalls + 1);
        assert_eq!(after.ocalls, before.ocalls + 1);
        assert!(after.simulated_cycles > before.simulated_cycles);
    }

    #[test]
    fn metrics_snapshot_merges_cost_substrate() {
        let e = test_enclave();
        e.ecall(|| ());
        e.cost().charge_prf(5);
        let _alloc = e.epc().allocate(4096).unwrap();
        e.metrics().protected_reads.add(3);
        let snap = e.metrics_snapshot();
        assert_eq!(snap.protected_reads, 3);
        assert!(snap.ecalls >= 1);
        assert!(snap.prf_evals >= 5);
        assert!(snap.epc_high_water_bytes >= 4096);
    }

    #[test]
    fn debug_does_not_leak_keys() {
        let e = test_enclave();
        let s = format!("{e:?}");
        assert!(!s.contains("root_key"));
    }
}
