//! The multi-threaded VeriDB network server.
//!
//! One shared [`VeriDb`] engine serves many concurrent connections. Each
//! connection runs the §5.1 protocol over the untrusted wire:
//!
//! 1. `HELLO(channel, nonce)` → the server opens (or reuses) the channel's
//!    [`QueryPortal`] and replies `QUOTE` — the enclave quote binding the
//!    client nonce plus the simulated attested key exchange.
//! 2. `QUERY` frames are submitted to the portal; the reply is a `RESULT`
//!    (endorsed) or an `ERROR` carrying the portal's exact error.
//! 3. `BYE` (or idle expiry, or shutdown) closes the session.
//!
//! Portals are *per channel, not per connection*: a client that reconnects
//! to the same channel faces the same replay window and the same strictly
//! increasing sequence counter, so neither a dropped TCP connection nor a
//! malicious reconnect resets the §5.1 defenses.
//!
//! Operational behavior: a connection cap with accept backpressure (at the
//! cap the server simply stops accepting; the kernel backlog queues), per
//! connection read/write timeouts, idle reaping, and graceful shutdown
//! that drains in-flight queries (shutdown is only observed between
//! frames, never mid-query).

use crate::frame::{read_frame, write_frame, HEADER_BYTES};
use crate::proto::{
    decode_hello, decode_query, encode_error, encode_quote, encode_result, QuoteMsg, MSG_BYE,
    MSG_ERROR, MSG_HELLO, MSG_QUERY, MSG_QUOTE, MSG_RESULT, MSG_STATS, MSG_STATS_OK,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use veridb::{QueryPortal, QuotingEnclave, VeriDb};
use veridb_common::{Error, Metrics, Result};

/// The simulated attestation-service signing key. Stands in for the Intel
/// attestation root of trust, which real clients ship baked in; both the
/// server's quoting enclave and remote verifiers derive from this value.
/// It authenticates the *quoting infrastructure*, not any particular
/// enclave — the enclave measurement check is separate and per-build.
pub const SIM_ATTESTATION_ROOT: [u8; 32] = *b"veridb-simulated-attestation-svc";

/// How long a connection may sit idle (no complete frame) before the
/// server reaps it, expressed as a multiple of the per-frame timeout.
const IDLE_TIMEOUT_FACTOR: u32 = 12;

/// Tick used to poll the shutdown flag while waiting for socket activity.
const POLL_TICK: Duration = Duration::from_millis(25);

/// Server tunables, derived from [`veridb_common::VeriDbConfig`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Maximum concurrent connections; beyond it the server stops
    /// accepting (backpressure), it does not reset queued connections.
    pub max_conns: usize,
    /// Per-frame read/write timeout.
    pub timeout: Duration,
    /// Idle-session reaping deadline.
    pub idle_timeout: Duration,
}

impl NetConfig {
    /// Build from the engine configuration's `max_conns`/`net_timeout_ms`.
    pub fn from_config(config: &veridb_common::VeriDbConfig) -> Self {
        let timeout = Duration::from_millis(config.net_timeout_ms);
        NetConfig {
            max_conns: config.max_conns,
            timeout,
            idle_timeout: timeout * IDLE_TIMEOUT_FACTOR,
        }
    }
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Graceful shutdown: stop accepting, let in-flight queries finish,
    /// close every session, join all threads.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

struct ServerShared {
    db: Arc<VeriDb>,
    qe: QuotingEnclave,
    cfg: NetConfig,
    /// Channel name → portal. Persistent across reconnects so the replay
    /// window and sequence counter outlive any one TCP connection.
    portals: Mutex<HashMap<String, Arc<QueryPortal>>>,
    active: AtomicUsize,
    shutdown: Arc<AtomicBool>,
    metrics: Option<Arc<Metrics>>,
}

impl ServerShared {
    fn portal(&self, channel: &str) -> Arc<QueryPortal> {
        let mut portals = self.portals.lock();
        Arc::clone(
            portals
                .entry(channel.to_owned())
                .or_insert_with(|| Arc::new(self.db.portal(channel))),
        )
    }
}

/// Start serving `db` on `addr` ("host:port"; port 0 picks a free port).
/// Returns once the listener is bound; serving happens on background
/// threads until [`ServerHandle::shutdown`].
pub fn serve(db: Arc<VeriDb>, addr: &str) -> Result<ServerHandle> {
    let cfg = NetConfig::from_config(db.config());
    serve_with(db, addr, cfg)
}

/// [`serve`] with explicit tunables.
pub fn serve_with(db: Arc<VeriDb>, addr: &str, cfg: NetConfig) -> Result<ServerHandle> {
    let listener = TcpListener::bind(addr).map_err(|e| Error::Net {
        peer: addr.to_owned(),
        op: "bind".into(),
        detail: e.to_string(),
    })?;
    let local_addr = listener.local_addr().map_err(|e| Error::Net {
        peer: addr.to_owned(),
        op: "local_addr".into(),
        detail: e.to_string(),
    })?;
    listener.set_nonblocking(true).map_err(|e| Error::Net {
        peer: addr.to_owned(),
        op: "set_nonblocking".into(),
        detail: e.to_string(),
    })?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let metrics = db.memory().metrics().cloned();
    let shared = Arc::new(ServerShared {
        qe: QuotingEnclave::new(SIM_ATTESTATION_ROOT),
        db,
        cfg,
        portals: Mutex::new(HashMap::new()),
        active: AtomicUsize::new(0),
        shutdown: Arc::clone(&shutdown),
        metrics,
    });

    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name("veridb-net-accept".into())
        .spawn(move || accept_loop(listener, accept_shared))
        .map_err(|e| Error::Net {
            peer: addr.to_owned(),
            op: "spawn accept thread".into(),
            detail: e.to_string(),
        })?;

    Ok(ServerHandle {
        local_addr,
        shutdown,
        accept_thread: Some(accept_thread),
    })
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        sessions.retain(|t| !t.is_finished());
        // Backpressure: at the connection cap, stop accepting. Pending
        // connections wait in the kernel backlog instead of being reset.
        if shared.active.load(Ordering::SeqCst) >= shared.cfg.max_conns {
            std::thread::sleep(POLL_TICK);
            continue;
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                shared.active.fetch_add(1, Ordering::SeqCst);
                if let Some(m) = &shared.metrics {
                    m.net_accepted.inc();
                    m.net_active_conns.inc();
                }
                let conn_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name(format!("veridb-net-conn-{peer}"))
                    .spawn(move || {
                        session(stream, peer, &conn_shared);
                        conn_shared.active.fetch_sub(1, Ordering::SeqCst);
                        if let Some(m) = &conn_shared.metrics {
                            m.net_active_conns.dec();
                        }
                    });
                if let Err(e) = spawned {
                    eprintln!("veridb-net: failed to spawn session thread: {e}");
                    shared.active.fetch_sub(1, Ordering::SeqCst);
                    if let Some(m) = &shared.metrics {
                        m.net_rejected.inc();
                        m.net_active_conns.dec();
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_TICK);
            }
            Err(e) => {
                eprintln!("veridb-net: accept failed: {e}");
                std::thread::sleep(POLL_TICK);
            }
        }
    }
    // Graceful drain: sessions observe the shutdown flag between frames
    // and finish whatever query is in flight before exiting.
    for t in sessions {
        let _ = t.join();
    }
}

/// Why a wait for the next frame ended.
enum Wait {
    /// Data is available to read.
    Ready,
    /// The idle deadline passed with no complete frame.
    Idle,
    /// The server is shutting down.
    Shutdown,
    /// The peer closed the connection.
    Closed,
}

/// Poll until the stream is readable, the session idles out, or the server
/// shuts down. Uses short read-timeout slices so the shutdown flag is
/// observed promptly without busy-waiting.
fn wait_readable(stream: &TcpStream, shared: &ServerShared, idle_deadline: Instant) -> Wait {
    let mut probe = [0u8; 1];
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Wait::Shutdown;
        }
        if Instant::now() >= idle_deadline {
            return Wait::Idle;
        }
        match stream.peek(&mut probe) {
            Ok(0) => return Wait::Closed,
            Ok(_) => return Wait::Ready,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return Wait::Closed,
        }
    }
}

fn session(mut stream: TcpStream, peer: SocketAddr, shared: &ServerShared) {
    let peer_str = peer.to_string();
    if let Err(e) = run_session(&mut stream, &peer_str, shared) {
        // A session error is either transport noise (logged, common under
        // adversarial proxies) or a protocol violation already counted in
        // the metrics; the connection just ends.
        if !matches!(e, Error::Net { .. }) {
            eprintln!("veridb-net: session {peer_str} ended: {e}");
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn run_session(stream: &mut TcpStream, peer: &str, shared: &ServerShared) -> Result<()> {
    let m = shared.metrics.as_deref();
    // Per-frame read/write timeouts; the read timeout doubles as the
    // shutdown-poll tick for `wait_readable`.
    let io_err = |op: &str, e: std::io::Error| Error::Net {
        peer: peer.to_owned(),
        op: op.to_owned(),
        detail: e.to_string(),
    };
    stream
        .set_read_timeout(Some(POLL_TICK))
        .map_err(|e| io_err("set_read_timeout", e))?;
    stream
        .set_write_timeout(Some(shared.cfg.timeout))
        .map_err(|e| io_err("set_write_timeout", e))?;

    // ---- handshake ------------------------------------------------------
    let (kind, payload) = read_frame_sliced(stream, peer, shared, m)?;
    if kind != MSG_HELLO {
        count_frame_reject(m);
        return Err(Error::Net {
            peer: peer.to_owned(),
            op: "handshake".into(),
            detail: format!("expected HELLO, got frame kind {kind}"),
        });
    }
    let (channel, nonce) = decode_hello(&payload).inspect_err(|_| count_frame_reject(m))?;
    let portal = shared.portal(&channel);
    let quote = shared.db.enclave().quote(&shared.qe, &nonce);
    let msg = QuoteMsg {
        measurement: *quote.report.measurement.as_bytes(),
        user_data: quote.report.user_data,
        signature: quote.signature,
        key: portal
            .channel_key_for_attested_client()
            .key_exchange_bytes(),
    };
    send_frame(stream, peer, m, MSG_QUOTE, &encode_quote(&msg))?;

    // ---- query loop -----------------------------------------------------
    loop {
        let idle_deadline = Instant::now() + shared.cfg.idle_timeout;
        match wait_readable(stream, shared, idle_deadline) {
            Wait::Ready => {}
            Wait::Idle => {
                if let Some(m) = m {
                    m.net_timeouts.inc();
                }
                let _ = write_frame(stream, peer, MSG_BYE, &[]);
                return Ok(());
            }
            Wait::Shutdown => {
                let _ = write_frame(stream, peer, MSG_BYE, &[]);
                return Ok(());
            }
            Wait::Closed => return Ok(()),
        }
        let (kind, payload) = read_frame_sliced(stream, peer, shared, m)?;
        match kind {
            MSG_QUERY => {
                let started = Instant::now();
                let q = match decode_query(&payload) {
                    Ok(q) => q,
                    Err(e) => {
                        // Mangled payload behind a valid CRC: the framing
                        // layer is untrusted, so report and drop the
                        // connection; never guess at a query.
                        count_frame_reject(m);
                        send_frame(stream, peer, m, MSG_ERROR, &encode_error(0, &e))?;
                        return Err(e);
                    }
                };
                let reply = portal.submit(&q);
                if let Err(Error::AuthFailed(_) | Error::ReplayDetected { .. }) = &reply {
                    if let Some(m) = m {
                        m.net_auth_rejects.inc();
                    }
                }
                match reply {
                    Ok(endorsed) => {
                        send_frame(stream, peer, m, MSG_RESULT, &encode_result(&endorsed))?
                    }
                    Err(e) => send_frame(stream, peer, m, MSG_ERROR, &encode_error(q.qid, &e))?,
                }
                if let Some(m) = m {
                    m.net_wire_ns.record(started.elapsed().as_nanos() as u64);
                }
            }
            MSG_STATS => {
                let snap = shared.db.metrics();
                let mut text = String::new();
                for (name, value) in snap.counters() {
                    text.push_str(&format!("{name} {value}\n"));
                }
                send_frame(stream, peer, m, MSG_STATS_OK, text.as_bytes())?;
            }
            MSG_BYE => return Ok(()),
            other => {
                count_frame_reject(m);
                return Err(Error::Net {
                    peer: peer.to_owned(),
                    op: "read frame".into(),
                    detail: format!("unexpected frame kind {other}"),
                });
            }
        }
    }
}

/// Read one frame after `wait_readable` said data is ready. The stream's
/// short read-timeout slices mean `read_exact` may see `WouldBlock` mid
/// frame; retry within the per-frame timeout budget.
fn read_frame_sliced(
    stream: &mut TcpStream,
    peer: &str,
    shared: &ServerShared,
    m: Option<&Metrics>,
) -> Result<(u8, Vec<u8>)> {
    let deadline = Instant::now() + shared.cfg.timeout;
    let mut sliced = SlicedReader {
        stream,
        deadline,
        peer,
    };
    match read_frame(&mut sliced, peer) {
        Ok((kind, payload)) => {
            if let Some(m) = m {
                m.net_frames_in.inc();
                m.net_bytes_in.add((HEADER_BYTES + payload.len()) as u64);
            }
            Ok((kind, payload))
        }
        Err(e) => {
            // Distinguish CRC/framing rejects (counted) from plain socket
            // errors; both are transport-level.
            if e.to_string().contains("CRC")
                || e.to_string().contains("magic")
                || e.to_string().contains("version")
                || e.to_string().contains("cap")
            {
                count_frame_reject(m);
            }
            Err(e)
        }
    }
}

fn count_frame_reject(m: Option<&Metrics>) {
    if let Some(m) = m {
        m.net_frame_rejects.inc();
    }
}

fn send_frame(
    stream: &mut TcpStream,
    peer: &str,
    m: Option<&Metrics>,
    kind: u8,
    payload: &[u8],
) -> Result<()> {
    write_frame(stream, peer, kind, payload)?;
    if let Some(m) = m {
        m.net_frames_out.inc();
        m.net_bytes_out.add((HEADER_BYTES + payload.len()) as u64);
    }
    Ok(())
}

/// A reader that retries `WouldBlock`/`TimedOut` slices until a deadline,
/// so short shutdown-poll read timeouts do not truncate frames mid-read.
struct SlicedReader<'a> {
    stream: &'a mut TcpStream,
    deadline: Instant,
    peer: &'a str,
}

impl std::io::Read for SlicedReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            match self.stream.read(buf) {
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if Instant::now() >= self.deadline {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            format!("frame read from {} timed out", self.peer),
                        ));
                    }
                }
                other => return other,
            }
        }
    }
}
