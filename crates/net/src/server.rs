//! The reactor-based VeriDB network server.
//!
//! One shared [`VeriDb`] engine serves many concurrent connections. Each
//! connection runs the §5.1 protocol over the untrusted wire:
//!
//! 1. `HELLO(channel, nonce)` → the server opens (or reuses) the channel's
//!    [`QueryPortal`] and replies `QUOTE` — the enclave quote binding the
//!    client nonce plus the simulated attested key exchange.
//! 2. `QUERY` frames are submitted to the portal; the reply is a `RESULT`
//!    (endorsed) or an `ERROR` carrying the portal's exact error.
//! 3. `BYE` (or idle expiry, or shutdown) closes the session.
//!
//! Portals are *per channel, not per connection*: a client that reconnects
//! to the same channel faces the same replay window and the same strictly
//! increasing sequence counter, so neither a dropped TCP connection nor a
//! malicious reconnect resets the §5.1 defenses.
//!
//! # Architecture
//!
//! A single **reactor** thread owns the listener and every socket. It
//! runs a level-triggered epoll loop ([`crate::poll`]), decodes bytes
//! incrementally ([`crate::frame::FrameDecoder`]), and dispatches
//! complete frames as **connection turns onto the process-wide scheduler
//! pool** ([`veridb_common::sched`]) — the same fixed worker set that
//! executes the engine's parallel regions, so the server no longer
//! layers its own executor pool on top of per-query pools (the old
//! `executor × workers` oversubscription). Each connection's frames are
//! processed serially by at most one turn at a time, so pipelined
//! queries on one connection yield `RESULT` frames in submission order;
//! different connections execute concurrently, and a turn that runs a
//! parallel query *helps execute its own job* on the pool, so queries
//! parallelize across whatever workers are idle. Turns never touch
//! sockets — they queue response frames on the connection's outbound
//! buffer and nudge the reactor through a wake pipe.
//!
//! The registry the reactor keys by token *is* the session table: each
//! entry pins the connection's portal (replay window + sequence counter +
//! channel key) for its lifetime.
//!
//! # Admission control
//!
//! Three bounds keep a busy or adversarial peer from exhausting memory:
//!
//! - **Connection cap** (`max_conns`): admission is one compare-and-swap
//!   loop on the active-connection count, so the cap holds exactly even
//!   under accept storms. At the cap the listener's readiness interest is
//!   dropped — pending connections wait in the kernel backlog instead of
//!   being reset — and is re-armed when a slot frees.
//! - **Global query queue** (`net_queue_depth`): decoded `QUERY` frames
//!   waiting for a worker are counted globally; past the limit a query is
//!   refused with a *retryable* [`Error::Overloaded`] frame. The refused
//!   query never reached a portal, so its qid is unspent and the client
//!   may resend the identical signed query — overload is a load
//!   condition, never a security violation.
//! - **Per-connection frame window**: a connection whose inbound or
//!   outbound queue fills has its read interest paused (bytes back up
//!   into TCP flow control) and resumed once the executor drains below
//!   half — so one fast pipeliner cannot starve the rest.
//!
//! Shutdown is graceful: accepting stops, outstanding connection turns
//! drain off the shared pool, responses flush, and every session gets a
//! `BYE`. A panicking turn is caught and surfaced through the
//! `net.worker_panics` counter; the shared pool's workers are process
//! lifetime and are never torn down by the server.

use crate::frame::{encode_frame, FrameDecoder};
use crate::poll::{Interest, Poller};
use crate::proto::{
    decode_hello, decode_query, decode_ship_ack, decode_ship_sub, encode_error, encode_quote,
    encode_result, encode_ship, encode_ship_meta, peek_query_qid, QuoteMsg, ShipMeta,
    MAX_SHIP_RECORDS, MSG_BYE, MSG_ERROR, MSG_HELLO, MSG_QUERY, MSG_QUOTE, MSG_RESULT, MSG_SHIP,
    MSG_SHIP_ACK, MSG_SHIP_META, MSG_SHIP_SUB, MSG_STATS, MSG_STATS_OK,
};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use veridb::{QueryPortal, QuotingEnclave, VeriDb};
use veridb_common::{sched, Error, Metrics, Result};

/// The simulated attestation-service signing key. Stands in for the Intel
/// attestation root of trust, which real clients ship baked in; both the
/// server's quoting enclave and remote verifiers derive from this value.
/// It authenticates the *quoting infrastructure*, not any particular
/// enclave — the enclave measurement check is separate and per-build.
pub const SIM_ATTESTATION_ROOT: [u8; 32] = *b"veridb-simulated-attestation-svc";

/// How long a connection may sit idle (no complete frame) before the
/// server reaps it, expressed as a multiple of the per-frame timeout.
const IDLE_TIMEOUT_FACTOR: u32 = 12;

/// epoll housekeeping tick: the longest the reactor sleeps when nothing
/// is ready. Idle CPU cost is one `epoll_wait` return per tick.
const TICK_MS: i32 = 100;

/// Idle/write-stall sweep cadence.
const SWEEP_EVERY: Duration = Duration::from_millis(500);

/// Frames a worker processes per turn before requeueing the connection —
/// round-robin fairness across busy connections.
const FAIR_BATCH: usize = 4;

/// Decoded frames buffered per connection before its read interest is
/// paused (TCP flow control takes over).
const INBOUND_CAP: usize = 64;

/// Encoded response frames buffered per connection before its read
/// interest is paused.
const OUTBOUND_CAP: usize = 128;

/// Bytes per `read(2)` call on a ready socket.
const READ_CHUNK: usize = 16 * 1024;

/// Records per SHIP frame pushed to a subscribed replica.
const SHIP_BATCH_RECORDS: usize = 512;

/// How long a shipper waits for the log tip to move before sending an
/// empty SHIP frame (a heartbeat) so the replica knows the subscription
/// is alive.
const SHIP_HEARTBEAT: Duration = Duration::from_millis(500);

/// Shipper backoff while the connection's outbound window is saturated
/// (a slow replica backpressures through TCP, not through memory).
const SHIP_STALL_PAUSE: Duration = Duration::from_millis(5);

/// Token for the reactor wake pipe.
const WAKE_TOKEN: u64 = u64::MAX;
/// Token for the listener.
const LISTENER_TOKEN: u64 = u64::MAX - 1;

/// Server tunables, derived from [`veridb_common::VeriDbConfig`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Maximum concurrent connections; beyond it the server stops
    /// accepting (backpressure), it does not reset queued connections.
    pub max_conns: usize,
    /// Per-frame write-stall timeout (a connection whose peer stops
    /// reading its responses for this long is reaped).
    pub timeout: Duration,
    /// Idle-session reaping deadline.
    pub idle_timeout: Duration,
    /// Global bound on decoded queries awaiting execution; past it new
    /// queries are refused with a retryable `Overloaded` error.
    pub queue_depth: usize,
}

impl NetConfig {
    /// Build from the engine configuration. Execution concurrency is no
    /// longer a net-layer knob: connection turns run on the process-wide
    /// scheduler pool (`pool_threads` / `VERIDB_POOL`, defaulting to
    /// machine parallelism), which bounds total threads regardless of
    /// how many connections are executing.
    pub fn from_config(config: &veridb_common::VeriDbConfig) -> Self {
        let timeout = Duration::from_millis(config.net_timeout_ms);
        NetConfig {
            max_conns: config.max_conns,
            timeout,
            idle_timeout: timeout * IDLE_TIMEOUT_FACTOR,
            queue_depth: config.net_queue_depth,
        }
    }
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    wake_tx: UnixStream,
    reactor_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Graceful shutdown: stop accepting, drain queued queries through
    /// the executor pool, flush responses, close every session, join all
    /// threads.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = (&self.wake_tx).write(&[1]);
        if let Some(t) = self.reactor_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Reserve one slot of a capped counter with a compare-and-swap loop.
/// Unlike a load-then-increment pair this can never over-admit: the
/// increment happens only if the observed value was still below the cap.
pub(crate) fn try_reserve_slot(counter: &AtomicUsize, cap: usize) -> bool {
    let mut cur = counter.load(Ordering::Relaxed);
    loop {
        if cur >= cap {
            return false;
        }
        match counter.compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
}

// ---------------------------------------------------------------------------
// Shared state
// ---------------------------------------------------------------------------

struct ServerShared {
    db: Arc<VeriDb>,
    qe: QuotingEnclave,
    cfg: NetConfig,
    /// Channel name → portal. Persistent across reconnects so the replay
    /// window and sequence counter outlive any one TCP connection.
    portals: Mutex<HashMap<String, Arc<QueryPortal>>>,
    /// Active connections (admission-controlled by `try_reserve_slot`).
    active: AtomicUsize,
    /// Decoded QUERY frames awaiting execution, across all connections.
    queued: AtomicUsize,
    shutdown: Arc<AtomicBool>,
    metrics: Option<Arc<Metrics>>,
    /// Tokens whose outbound queue gained frames (worker → reactor).
    notify: Mutex<Vec<u64>>,
    /// Write end of the reactor wake pipe (nonblocking; a full pipe is
    /// fine — any pending byte wakes the reactor).
    wake_tx: UnixStream,
}

impl ServerShared {
    fn portal(&self, channel: &str) -> Arc<QueryPortal> {
        let mut portals = self.portals.lock();
        Arc::clone(
            portals
                .entry(channel.to_owned())
                .or_insert_with(|| Arc::new(self.db.portal(channel))),
        )
    }

    /// Tell the reactor `token` has fresh outbound frames (or state to
    /// re-examine) and wake it.
    fn notify_token(&self, token: u64) {
        self.notify.lock().push(token);
        let _ = (&self.wake_tx).write(&[1]);
    }
}

/// Per-connection state shared between the reactor and the executor.
struct Conn {
    token: u64,
    peer: String,
    /// Decoded frames awaiting a worker, in arrival order.
    inbound: Mutex<VecDeque<(u8, Vec<u8>)>>,
    /// Encoded response frames awaiting the socket, in production order.
    outbound: Mutex<Outbound>,
    /// Claim flag: true while the connection is queued on (or being
    /// processed by) the executor. Guarantees per-connection serial
    /// execution and hence in-order RESULT delivery.
    scheduled: AtomicBool,
    /// Close once the outbound queue drains.
    closing: AtomicBool,
    /// Read interest dropped due to a full inbound/outbound window.
    read_paused: AtomicBool,
    /// The session's portal, pinned at handshake.
    portal: Mutex<Option<Arc<QueryPortal>>>,
    /// Set once a SHIP_SUB claimed this connection for log shipping (at
    /// most one shipper thread per connection).
    shipping: AtomicBool,
}

#[derive(Default)]
struct Outbound {
    frames: VecDeque<Vec<u8>>,
    /// Bytes of the front frame already written.
    head_off: usize,
}

/// Frames coalesced into one `writev` per socket wakeup. 64 covers the
/// depth-16 pipelining window with headroom; beyond that the iovec setup
/// cost stops paying for itself.
const WRITEV_MAX_FRAMES: usize = 64;

impl Outbound {
    /// Collect up to [`WRITEV_MAX_FRAMES`] queued frames as IO slices,
    /// the first one starting at `head_off`.
    fn gather<'a>(&'a self, bufs: &mut Vec<std::io::IoSlice<'a>>) {
        for (i, f) in self.frames.iter().take(WRITEV_MAX_FRAMES).enumerate() {
            let s = if i == 0 { &f[self.head_off..] } else { &f[..] };
            bufs.push(std::io::IoSlice::new(s));
        }
    }

    /// Consume `n` freshly written bytes from the front of the queue.
    /// Returns `(completed_frames, completed_frame_bytes)` for the
    /// outbound metrics (bytes are credited when a frame completes,
    /// matching the serial write path's accounting).
    fn advance(&mut self, mut n: usize) -> (u64, u64) {
        let mut frames = 0u64;
        let mut bytes = 0u64;
        while n > 0 {
            let front_len = self.frames.front().expect("advance past queue end").len();
            let remaining = front_len - self.head_off;
            if n >= remaining {
                n -= remaining;
                self.frames.pop_front();
                self.head_off = 0;
                frames += 1;
                bytes += front_len as u64;
            } else {
                self.head_off += n;
                n = 0;
            }
        }
        (frames, bytes)
    }
}

fn push_out(conn: &Conn, kind: u8, payload: &[u8]) {
    conn.outbound
        .lock()
        .frames
        .push_back(encode_frame(kind, payload));
}

// ---------------------------------------------------------------------------
// Executor: connection turns on the shared scheduler pool
// ---------------------------------------------------------------------------

/// The turn dispatcher. Connections (not frames) are the scheduling
/// unit: a connection is claimed at most once (`Conn::scheduled`); each
/// claim spawns one **turn** as a task on the process-wide scheduler
/// pool ([`sched::spawn`]). A turn drains up to [`FAIR_BATCH`] of the
/// connection's frames, then either respawns itself (more work pending —
/// going to the back of the pool's task queue gives round-robin fairness
/// across busy connections) or releases the claim. The executor owns no
/// threads: total execution threads are bounded by the pool size no
/// matter how many connections are active, and a turn running a parallel
/// query help-executes that query's job on the same pool.
struct Executor {
    /// Turns spawned but not yet finished; graceful shutdown waits for
    /// zero instead of joining workers (the pool is process-lifetime).
    outstanding: AtomicUsize,
}

impl Executor {
    fn new() -> Arc<Executor> {
        Arc::new(Executor {
            outstanding: AtomicUsize::new(0),
        })
    }

    /// Queue a turn for `conn` unless one is already claimed.
    fn schedule(self: &Arc<Self>, conn: &Arc<Conn>, shared: &Arc<ServerShared>) {
        if !conn.scheduled.swap(true, Ordering::AcqRel) {
            self.submit(Arc::clone(conn), Arc::clone(shared));
        }
    }

    /// Spawn one turn task on the shared pool (claim already held).
    fn submit(self: &Arc<Self>, conn: Arc<Conn>, shared: Arc<ServerShared>) {
        self.outstanding.fetch_add(1, Ordering::AcqRel);
        let exec = Arc::clone(self);
        sched::spawn(move || exec.run_turn(conn, shared));
    }

    /// One turn: process a fair batch → respawn or release. A panic
    /// inside the turn is caught, counted (`net.worker_panics`), and the
    /// offending connection is torn down; the pool worker survives.
    fn run_turn(self: &Arc<Self>, conn: Arc<Conn>, shared: Arc<ServerShared>) {
        let turn = catch_unwind(AssertUnwindSafe(|| process_turn(&conn, &shared)));
        match turn {
            Ok(()) => {
                let more = !conn.inbound.lock().is_empty() && !conn.closing.load(Ordering::Acquire);
                if more {
                    // Fairness: back of the task queue, claim kept.
                    self.submit(conn, shared);
                } else {
                    conn.scheduled.store(false, Ordering::Release);
                    // Recheck: the reactor may have enqueued between our
                    // drain and the release; reclaim if it did not race a
                    // schedule of its own.
                    if !conn.inbound.lock().is_empty()
                        && !conn.scheduled.swap(true, Ordering::AcqRel)
                    {
                        self.submit(conn, shared);
                    }
                }
            }
            Err(_) => {
                if let Some(m) = &shared.metrics {
                    m.net_worker_panics.inc();
                }
                // The session is unrecoverable mid-frame; drop it. The
                // reactor reconciles the queue accounting at close.
                conn.closing.store(true, Ordering::Release);
                conn.scheduled.store(false, Ordering::Release);
                shared.notify_token(conn.token);
            }
        }
        self.outstanding.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Test hook: turns for this token panic inside `process_turn`, so the
/// executor's catch-and-teardown path can be exercised (no production
/// frame can be made to panic deterministically).
#[cfg(test)]
static TEST_PANIC_TOKEN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(u64::MAX);

/// Process up to [`FAIR_BATCH`] frames of one connection.
fn process_turn(conn: &Arc<Conn>, shared: &Arc<ServerShared>) {
    #[cfg(test)]
    if conn.token == TEST_PANIC_TOKEN.load(Ordering::Relaxed) {
        panic!("injected turn panic");
    }
    let m = shared.metrics.as_deref();
    let mut handled = 0usize;
    while handled < FAIR_BATCH && !conn.closing.load(Ordering::Acquire) {
        let Some((kind, payload)) = conn.inbound.lock().pop_front() else {
            break;
        };
        handled += 1;
        let was_query = kind == MSG_QUERY;
        handle_frame(conn, shared, kind, &payload, m);
        if was_query {
            shared.queued.fetch_sub(1, Ordering::AcqRel);
            if let Some(m) = m {
                m.net_queued.dec();
            }
        }
    }
    if handled > 0 {
        shared.notify_token(conn.token);
    }
}

fn handle_frame(
    conn: &Arc<Conn>,
    shared: &Arc<ServerShared>,
    kind: u8,
    payload: &[u8],
    m: Option<&Metrics>,
) {
    match kind {
        MSG_QUERY => {
            let started = Instant::now();
            let q = match decode_query(payload) {
                Ok(q) => q,
                Err(e) => {
                    // Mangled payload behind a valid CRC: the framing
                    // layer is untrusted, so report and drop the
                    // connection; never guess at a query.
                    if let Some(m) = m {
                        m.net_frame_rejects.inc();
                    }
                    push_out(conn, MSG_ERROR, &encode_error(0, &e));
                    conn.closing.store(true, Ordering::Release);
                    return;
                }
            };
            let portal = conn.portal.lock().clone();
            let Some(portal) = portal else {
                // Unreachable: the reactor admits QUERY frames only after
                // the handshake pinned a portal. Defensive close.
                conn.closing.store(true, Ordering::Release);
                return;
            };
            let reply = portal.submit(&q);
            if let Err(Error::AuthFailed(_) | Error::ReplayDetected { .. }) = &reply {
                if let Some(m) = m {
                    m.net_auth_rejects.inc();
                }
            }
            match reply {
                Ok(endorsed) => push_out(conn, MSG_RESULT, &encode_result(&endorsed)),
                Err(e) => push_out(conn, MSG_ERROR, &encode_error(q.qid, &e)),
            }
            if let Some(m) = m {
                m.net_wire_ns.record(started.elapsed().as_nanos() as u64);
            }
        }
        MSG_STATS => {
            let snap = shared.db.metrics();
            let mut text = String::new();
            for (name, value) in snap.counters() {
                text.push_str(&format!("{name} {value}\n"));
            }
            push_out(conn, MSG_STATS_OK, text.as_bytes());
        }
        MSG_SHIP_SUB => {
            let refuse = |conn: &Conn, e: &Error| {
                push_out(conn, MSG_ERROR, &encode_error(0, e));
                conn.closing.store(true, Ordering::Release);
            };
            let Ok(from_lsn) = decode_ship_sub(payload) else {
                if let Some(m) = m {
                    m.net_frame_rejects.inc();
                }
                refuse(conn, &Error::Codec("mangled SHIP_SUB".into()));
                return;
            };
            let Some(durable) = shared.db.durable() else {
                refuse(
                    conn,
                    &Error::InvalidArgument(
                        "log shipping needs a durable server (start with --data-dir)".into(),
                    ),
                );
                return;
            };
            if conn.shipping.swap(true, Ordering::AcqRel) {
                refuse(
                    conn,
                    &Error::InvalidArgument("connection already has a ship subscription".into()),
                );
                return;
            }
            let meta = ShipMeta {
                epoch: durable.epoch(),
                durable_lsn: durable.wal().durable_lsn(),
                sealed_seed: durable.seed_bytes().to_vec(),
            };
            push_out(conn, MSG_SHIP_META, &encode_ship_meta(&meta));
            spawn_shipper(Arc::clone(shared), Arc::clone(conn), from_lsn.max(1));
        }
        MSG_SHIP_ACK => {
            let Ok(acked) = decode_ship_ack(payload) else {
                if let Some(m) = m {
                    m.net_frame_rejects.inc();
                }
                conn.closing.store(true, Ordering::Release);
                return;
            };
            if let Some(durable) = shared.db.durable() {
                durable.note_ship_lag(acked);
            }
        }
        MSG_BYE => conn.closing.store(true, Ordering::Release),
        other => {
            if let Some(m) = m {
                m.net_frame_rejects.inc();
            }
            let e = Error::Net {
                peer: conn.peer.clone(),
                op: "read frame".into(),
                detail: format!("unexpected frame kind {other}"),
            };
            push_out(conn, MSG_ERROR, &encode_error(0, &e));
            conn.closing.store(true, Ordering::Release);
        }
    }
}

/// Stream the endorsed log to a subscribed replica on a dedicated thread.
///
/// The thread tails the WAL with [`Wal::wait_for_durable_past`] (it never
/// elects itself group-commit flusher — commit latency stays with the
/// committers) and pushes SHIP frames through the connection's normal
/// outbound queue, waking the reactor per batch. When the tip is idle it
/// emits an empty SHIP as a heartbeat. A saturated outbound window pauses
/// shipping rather than buffering without bound, and the thread exits as
/// soon as the connection closes or the server shuts down.
fn spawn_shipper(shared: Arc<ServerShared>, conn: Arc<Conn>, from_lsn: u64) {
    let conn_for_err = Arc::clone(&conn);
    let spawned = std::thread::Builder::new()
        .name("veridb-net-shipper".into())
        .spawn(move || {
            let Some(durable) = shared.db.durable().cloned() else {
                return;
            };
            let wal = Arc::clone(durable.wal());
            let mut next = from_lsn;
            while !shared.shutdown.load(Ordering::SeqCst) && !conn.closing.load(Ordering::Acquire)
            {
                if conn.outbound.lock().frames.len() >= OUTBOUND_CAP / 2 {
                    std::thread::sleep(SHIP_STALL_PAUSE);
                    continue;
                }
                let batch = match wal.records_from(next, SHIP_BATCH_RECORDS.min(MAX_SHIP_RECORDS))
                {
                    Ok(batch) => batch,
                    Err(_) => break, // WAL poisoned/closed: drop the subscription
                };
                if batch.is_empty() {
                    // Wait for the durable tip to reach `next`; heartbeat
                    // if it does not within the window.
                    if wal.wait_for_durable_past(next - 1, SHIP_HEARTBEAT) < next {
                        push_out(&conn, MSG_SHIP, &encode_ship(&[]));
                        shared.notify_token(conn.token);
                    }
                    continue;
                }
                next = batch.last().expect("non-empty batch").lsn + 1;
                if let Some(m) = shared.metrics.as_deref() {
                    m.log_shipped_records.add(batch.len() as u64);
                }
                push_out(&conn, MSG_SHIP, &encode_ship(&batch));
                shared.notify_token(conn.token);
            }
        });
    if spawned.is_err() {
        conn_for_err.closing.store(true, Ordering::Release);
    }
}

// ---------------------------------------------------------------------------
// Reactor
// ---------------------------------------------------------------------------

/// Registry entry: everything only the reactor touches for one socket.
struct ConnEntry {
    stream: TcpStream,
    conn: Arc<Conn>,
    decoder: FrameDecoder,
    interest: Interest,
    last_activity: Instant,
    /// Set while a write is blocked on a full socket buffer.
    write_stalled_since: Option<Instant>,
    handshaken: bool,
}

struct Reactor {
    poller: Poller,
    listener: TcpListener,
    listener_paused: bool,
    conns: HashMap<u64, ConnEntry>,
    next_token: u64,
    shared: Arc<ServerShared>,
    exec: Arc<Executor>,
    wake_rx: UnixStream,
}

/// Start serving `db` on `addr` ("host:port"; port 0 picks a free port).
/// Returns once the listener is bound; serving happens on background
/// threads until [`ServerHandle::shutdown`].
pub fn serve(db: Arc<VeriDb>, addr: &str) -> Result<ServerHandle> {
    let cfg = NetConfig::from_config(db.config());
    serve_with(db, addr, cfg)
}

/// [`serve`] with explicit tunables.
pub fn serve_with(db: Arc<VeriDb>, addr: &str, cfg: NetConfig) -> Result<ServerHandle> {
    let net_err = |op: &str, e: &dyn std::fmt::Display| Error::Net {
        peer: addr.to_owned(),
        op: op.into(),
        detail: e.to_string(),
    };
    let listener = TcpListener::bind(addr).map_err(|e| net_err("bind", &e))?;
    let local_addr = listener
        .local_addr()
        .map_err(|e| net_err("local_addr", &e))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| net_err("set_nonblocking", &e))?;

    let (wake_tx, wake_rx) = UnixStream::pair().map_err(|e| net_err("wake pipe", &e))?;
    wake_tx
        .set_nonblocking(true)
        .map_err(|e| net_err("wake pipe", &e))?;
    wake_rx
        .set_nonblocking(true)
        .map_err(|e| net_err("wake pipe", &e))?;
    let handle_wake = wake_tx.try_clone().map_err(|e| net_err("wake pipe", &e))?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let metrics = db.memory().metrics().cloned();
    let shared = Arc::new(ServerShared {
        qe: QuotingEnclave::new(SIM_ATTESTATION_ROOT),
        db,
        cfg,
        portals: Mutex::new(HashMap::new()),
        active: AtomicUsize::new(0),
        queued: AtomicUsize::new(0),
        shutdown: Arc::clone(&shutdown),
        metrics,
        notify: Mutex::new(Vec::new()),
        wake_tx,
    });

    let poller = Poller::new().map_err(|e| net_err("epoll_create", &e))?;
    poller
        .add(wake_rx.as_raw_fd(), WAKE_TOKEN, Interest::READ)
        .map_err(|e| net_err("epoll register wake", &e))?;
    poller
        .add(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)
        .map_err(|e| net_err("epoll register listener", &e))?;

    // No executor threads to spawn: connection turns run on the
    // process-wide scheduler pool, started lazily on first use.
    let exec = Executor::new();

    let reactor = Reactor {
        poller,
        listener,
        listener_paused: false,
        conns: HashMap::new(),
        next_token: 0,
        shared,
        exec,
        wake_rx,
    };
    let reactor_thread = std::thread::Builder::new()
        .name("veridb-net-reactor".into())
        .spawn(move || reactor.run())
        .map_err(|e| net_err("spawn reactor thread", &e))?;

    Ok(ServerHandle {
        local_addr,
        shutdown,
        wake_tx: handle_wake,
        reactor_thread: Some(reactor_thread),
    })
}

impl Reactor {
    fn metrics(&self) -> Option<&Metrics> {
        self.shared.metrics.as_deref()
    }

    fn run(mut self) {
        let mut events = Vec::new();
        let mut last_sweep = Instant::now();
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            match self.poller.wait(&mut events, TICK_MS) {
                Ok(_) => {}
                Err(e) => {
                    eprintln!("veridb-net: epoll_wait failed: {e}");
                    break;
                }
            }
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            for ev in events.iter().copied() {
                match ev.token {
                    WAKE_TOKEN => self.drain_wake(),
                    LISTENER_TOKEN => self.accept_ready(),
                    token => self.conn_event(token, ev.readable || ev.hangup, ev.writable),
                }
            }
            self.flush_notified();
            if last_sweep.elapsed() >= SWEEP_EVERY {
                self.sweep(Instant::now());
                last_sweep = Instant::now();
            }
        }
        self.graceful_shutdown();
    }

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 64];
        while matches!((&self.wake_rx).read(&mut buf), Ok(n) if n > 0) {}
    }

    /// Accept as many pending connections as the cap admits; at the cap,
    /// pause the listener (kernel backlog holds the rest).
    fn accept_ready(&mut self) {
        loop {
            if !try_reserve_slot(&self.shared.active, self.shared.cfg.max_conns) {
                self.pause_listener();
                return;
            }
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    if let Err(e) = self.register_conn(stream, peer) {
                        eprintln!("veridb-net: failed to register {peer}: {e}");
                        self.shared.active.fetch_sub(1, Ordering::AcqRel);
                        if let Some(m) = self.metrics() {
                            m.net_rejected.inc();
                        }
                    }
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.shared.active.fetch_sub(1, Ordering::AcqRel);
                    return;
                }
                Err(e) => {
                    eprintln!("veridb-net: accept failed: {e}");
                    self.shared.active.fetch_sub(1, Ordering::AcqRel);
                    return;
                }
            }
        }
    }

    fn register_conn(&mut self, stream: TcpStream, peer: SocketAddr) -> std::io::Result<()> {
        stream.set_nonblocking(true)?;
        // Responses are written as whole frames; don't let Nagle delay
        // the tail of a pipelined burst.
        let _ = stream.set_nodelay(true);
        let token = self.next_token;
        self.next_token += 1;
        self.poller.add(stream.as_raw_fd(), token, Interest::READ)?;
        let conn = Arc::new(Conn {
            token,
            peer: peer.to_string(),
            inbound: Mutex::new(VecDeque::new()),
            outbound: Mutex::new(Outbound::default()),
            scheduled: AtomicBool::new(false),
            closing: AtomicBool::new(false),
            read_paused: AtomicBool::new(false),
            portal: Mutex::new(None),
            shipping: AtomicBool::new(false),
        });
        self.conns.insert(
            token,
            ConnEntry {
                stream,
                conn,
                decoder: FrameDecoder::new(),
                interest: Interest::READ,
                last_activity: Instant::now(),
                write_stalled_since: None,
                handshaken: false,
            },
        );
        if let Some(m) = self.metrics() {
            m.net_accepted.inc();
            m.net_active_conns.inc();
        }
        Ok(())
    }

    fn pause_listener(&mut self) {
        if !self.listener_paused {
            self.listener_paused = true;
            let _ = self
                .poller
                .modify(self.listener.as_raw_fd(), LISTENER_TOKEN, Interest::NONE);
        }
    }

    fn maybe_resume_listener(&mut self) {
        if self.listener_paused
            && self.shared.active.load(Ordering::Acquire) < self.shared.cfg.max_conns
        {
            self.listener_paused = false;
            let _ = self
                .poller
                .modify(self.listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ);
        }
    }

    fn conn_event(&mut self, token: u64, readable: bool, writable: bool) {
        let keep = match self.conns.get_mut(&token) {
            None => return,
            Some(entry) => {
                if readable {
                    entry.last_activity = Instant::now();
                    handle_readable(&self.poller, &self.shared, &self.exec, entry)
                } else {
                    true
                }
            }
        };
        if !keep {
            self.close_conn(token);
            return;
        }
        if readable || writable {
            self.flush_token(token);
        }
    }

    /// Flush connections whose workers queued fresh output (or flagged
    /// state changes like closing).
    fn flush_notified(&mut self) {
        let tokens = std::mem::take(&mut *self.shared.notify.lock());
        for token in tokens {
            self.flush_token(token);
        }
    }

    fn flush_token(&mut self, token: u64) {
        let keep = match self.conns.get_mut(&token) {
            None => return,
            Some(entry) => flush_entry(&self.poller, &self.shared, &self.exec, entry),
        };
        if !keep {
            self.close_conn(token);
        }
    }

    /// Reap idle sessions and write-stalled peers.
    fn sweep(&mut self, now: Instant) {
        let idle = self.shared.cfg.idle_timeout;
        let stall = self.shared.cfg.timeout;
        let mut doomed: Vec<(u64, bool)> = Vec::new();
        for (&token, entry) in &self.conns {
            if now.duration_since(entry.last_activity) >= idle
                && !entry.conn.closing.load(Ordering::Acquire)
            {
                doomed.push((token, true));
            } else if entry
                .write_stalled_since
                .is_some_and(|t| now.duration_since(t) >= stall)
            {
                doomed.push((token, false));
            }
        }
        for (token, send_bye) in doomed {
            if let Some(m) = self.metrics() {
                m.net_timeouts.inc();
            }
            if send_bye {
                if let Some(entry) = self.conns.get_mut(&token) {
                    push_out(&entry.conn, MSG_BYE, &[]);
                    let _ = flush_entry(&self.poller, &self.shared, &self.exec, entry);
                }
            }
            self.close_conn(token);
        }
    }

    fn close_conn(&mut self, token: u64) {
        let Some(entry) = self.conns.remove(&token) else {
            return;
        };
        let _ = self.poller.delete(entry.stream.as_raw_fd());
        // Stop any in-flight worker turn at the next frame boundary and
        // reconcile the global queue count for frames it will never see.
        entry.conn.closing.store(true, Ordering::Release);
        let abandoned: Vec<(u8, Vec<u8>)> = entry.conn.inbound.lock().drain(..).collect();
        let m = self.shared.metrics.as_deref();
        for (kind, _) in abandoned {
            if kind == MSG_QUERY {
                self.shared.queued.fetch_sub(1, Ordering::AcqRel);
                if let Some(m) = m {
                    m.net_queued.dec();
                }
            }
        }
        if let Some(m) = m {
            m.net_active_conns.dec();
            if !entry.handshaken {
                m.net_rejected.inc();
            }
        }
        self.shared.active.fetch_sub(1, Ordering::AcqRel);
        self.maybe_resume_listener();
        let _ = entry.stream.shutdown(std::net::Shutdown::Both);
    }

    /// One bounded iteration of the event loop — used while draining
    /// during shutdown, when the main loop has already exited.
    fn pump(&mut self, timeout_ms: i32) {
        let mut events = Vec::new();
        if self.poller.wait(&mut events, timeout_ms).is_err() {
            return;
        }
        for ev in events.iter().copied() {
            match ev.token {
                WAKE_TOKEN => self.drain_wake(),
                LISTENER_TOKEN => {}
                token => self.conn_event(token, ev.readable || ev.hangup, ev.writable),
            }
        }
        self.flush_notified();
        // Push on every pending outbound queue, not just notified ones.
        let tokens: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, e)| !e.conn.outbound.lock().frames.is_empty())
            .map(|(&t, _)| t)
            .collect();
        for t in tokens {
            self.flush_token(t);
        }
    }

    fn graceful_shutdown(&mut self) {
        // 1. Stop accepting.
        let _ = self.poller.delete(self.listener.as_raw_fd());
        self.listener_paused = true;
        // 2. Drain: every outstanding connection turn on the shared pool
        //    finishes (turns respawn themselves while frames remain, so
        //    zero outstanding + empty inbound queues = fully drained),
        //    while the reactor keeps pumping so responses flush.
        let deadline = Instant::now() + self.shared.cfg.idle_timeout;
        loop {
            let turns_done = self.exec.outstanding.load(Ordering::Acquire) == 0
                && self
                    .conns
                    .values()
                    .all(|e| e.conn.inbound.lock().is_empty());
            self.pump(25);
            let flushed = self
                .conns
                .values()
                .all(|e| e.conn.outbound.lock().frames.is_empty());
            if (turns_done && flushed) || Instant::now() >= deadline {
                break;
            }
        }
        // 3. Orderly goodbye to every remaining session. (No worker
        //    threads to join: the shared pool outlives the server.)
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in &tokens {
            if let Some(entry) = self.conns.get_mut(token) {
                push_out(&entry.conn, MSG_BYE, &[]);
            }
        }
        self.pump(0);
        self.pump(25);
        for token in tokens {
            self.close_conn(token);
        }
    }
}

// ---------------------------------------------------------------------------
// Reactor ↔ socket helpers (free functions so the borrow of one registry
// entry never aliases the whole reactor)
// ---------------------------------------------------------------------------

/// Read until `WouldBlock` (or pause/EOF/error), decoding and dispatching
/// complete frames. Returns false when the connection must close.
fn handle_readable(
    poller: &Poller,
    shared: &Arc<ServerShared>,
    exec: &Arc<Executor>,
    entry: &mut ConnEntry,
) -> bool {
    let mut buf = [0u8; READ_CHUNK];
    loop {
        if entry.conn.read_paused.load(Ordering::Acquire) {
            return true;
        }
        match entry.stream.read(&mut buf) {
            Ok(0) => return false,
            Ok(n) => {
                if let Some(m) = shared.metrics.as_deref() {
                    m.net_bytes_in.add(n as u64);
                }
                entry.decoder.extend(&buf[..n]);
                if !drain_decoded(poller, shared, exec, entry) {
                    return false;
                }
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
}

/// Dispatch every complete frame sitting in the decoder, stopping early
/// if dispatch pauses reading. Returns false when the connection must
/// close (framing error or protocol violation).
fn drain_decoded(
    poller: &Poller,
    shared: &Arc<ServerShared>,
    exec: &Arc<Executor>,
    entry: &mut ConnEntry,
) -> bool {
    loop {
        if entry.conn.read_paused.load(Ordering::Acquire) {
            return true;
        }
        match entry.decoder.next_frame(&entry.conn.peer) {
            Ok(None) => return true,
            Ok(Some((kind, payload))) => {
                if let Some(m) = shared.metrics.as_deref() {
                    m.net_frames_in.inc();
                }
                if !dispatch_frame(poller, shared, exec, entry, kind, payload) {
                    return false;
                }
            }
            Err(_) => {
                // Any decoder failure is a framing reject: bad magic,
                // version, oversize, or CRC. Count and close; the byte
                // stream is unrecoverable.
                if let Some(m) = shared.metrics.as_deref() {
                    m.net_frame_rejects.inc();
                }
                return false;
            }
        }
    }
}

/// Route one complete frame: handshake inline (cheap — one quote), BYE /
/// STATS / QUERY through the executor for in-order processing. Returns
/// false when the connection must close.
fn dispatch_frame(
    poller: &Poller,
    shared: &Arc<ServerShared>,
    exec: &Arc<Executor>,
    entry: &mut ConnEntry,
    kind: u8,
    payload: Vec<u8>,
) -> bool {
    let m = shared.metrics.as_deref();
    if !entry.handshaken {
        if kind != MSG_HELLO {
            if let Some(m) = m {
                m.net_frame_rejects.inc();
            }
            return false;
        }
        let Ok((channel, nonce)) = decode_hello(&payload) else {
            if let Some(m) = m {
                m.net_frame_rejects.inc();
            }
            return false;
        };
        let portal = shared.portal(&channel);
        let quote = shared.db.enclave().quote(&shared.qe, &nonce);
        let msg = QuoteMsg {
            measurement: *quote.report.measurement.as_bytes(),
            user_data: quote.report.user_data,
            signature: quote.signature,
            key: portal
                .channel_key_for_attested_client()
                .key_exchange_bytes(),
        };
        *entry.conn.portal.lock() = Some(portal);
        entry.handshaken = true;
        push_out(&entry.conn, MSG_QUOTE, &encode_quote(&msg));
        return true;
    }
    match kind {
        MSG_QUERY => {
            // Admission: reserve a slot in the global query queue or
            // refuse visibly and retryably. The refused query never
            // reaches a portal, so its qid stays unspent.
            if !try_reserve_slot(&shared.queued, shared.cfg.queue_depth) {
                if let Some(m) = m {
                    m.net_overloaded.inc();
                }
                let qid = peek_query_qid(&payload).unwrap_or(0);
                let e = Error::Overloaded {
                    queued: shared.queued.load(Ordering::Relaxed),
                    limit: shared.cfg.queue_depth,
                };
                push_out(&entry.conn, MSG_ERROR, &encode_error(qid, &e));
                return true;
            }
            if let Some(m) = m {
                m.net_queued.inc();
            }
            enqueue_inbound(poller, shared, exec, entry, kind, payload);
        }
        MSG_STATS | MSG_BYE | MSG_SHIP_SUB | MSG_SHIP_ACK => {
            // Through the inbound queue so they stay ordered behind any
            // pipelined queries ahead of them.
            enqueue_inbound(poller, shared, exec, entry, kind, payload);
        }
        other => {
            if let Some(m) = m {
                m.net_frame_rejects.inc();
            }
            let e = Error::Net {
                peer: entry.conn.peer.clone(),
                op: "read frame".into(),
                detail: format!("unexpected frame kind {other}"),
            };
            push_out(&entry.conn, MSG_ERROR, &encode_error(0, &e));
            return false;
        }
    }
    true
}

fn enqueue_inbound(
    poller: &Poller,
    shared: &Arc<ServerShared>,
    exec: &Arc<Executor>,
    entry: &mut ConnEntry,
    kind: u8,
    payload: Vec<u8>,
) {
    let inbound_len = {
        let mut q = entry.conn.inbound.lock();
        q.push_back((kind, payload));
        q.len()
    };
    let outbound_len = entry.conn.outbound.lock().frames.len();
    if inbound_len >= INBOUND_CAP || outbound_len >= OUTBOUND_CAP {
        pause_read(poller, entry);
    }
    exec.schedule(&entry.conn, shared);
}

fn pause_read(poller: &Poller, entry: &mut ConnEntry) {
    if !entry.conn.read_paused.swap(true, Ordering::AcqRel) {
        entry.interest.readable = false;
        let _ = poller.modify(entry.stream.as_raw_fd(), entry.conn.token, entry.interest);
    }
}

/// Write as much queued output as the socket takes. Handles write-
/// interest arming, read resumption after backpressure, and deferred
/// close. Returns false when the connection must close.
fn flush_entry(
    poller: &Poller,
    shared: &Arc<ServerShared>,
    exec: &Arc<Executor>,
    entry: &mut ConnEntry,
) -> bool {
    let m = shared.metrics.as_deref();
    let drained = loop {
        let mut ob = entry.conn.outbound.lock();
        if ob.frames.is_empty() {
            break true;
        }
        // Coalesce every queued frame (up to the iovec cap) into one
        // vectored write — under depth-16 pipelining this turns one
        // syscall per frame into one per wakeup.
        let (wrote, nbufs) = {
            let mut bufs: Vec<std::io::IoSlice<'_>> =
                Vec::with_capacity(ob.frames.len().min(WRITEV_MAX_FRAMES));
            ob.gather(&mut bufs);
            (entry.stream.write_vectored(&bufs), bufs.len() as u64)
        };
        match wrote {
            // A 0-byte vectored write over non-empty slices means the
            // socket took nothing; treat it like a full buffer rather
            // than spinning.
            Ok(0) => {
                drop(ob);
                if !entry.interest.writable {
                    entry.interest.writable = true;
                    let _ =
                        poller.modify(entry.stream.as_raw_fd(), entry.conn.token, entry.interest);
                }
                entry.write_stalled_since.get_or_insert_with(Instant::now);
                break false;
            }
            Ok(n) => {
                let (frames, bytes) = ob.advance(n);
                if let Some(m) = m {
                    m.net_writev_frames.record(nbufs);
                    m.net_frames_out.add(frames);
                    m.net_bytes_out.add(bytes);
                }
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                drop(ob);
                if !entry.interest.writable {
                    entry.interest.writable = true;
                    let _ =
                        poller.modify(entry.stream.as_raw_fd(), entry.conn.token, entry.interest);
                }
                entry.write_stalled_since.get_or_insert_with(Instant::now);
                break false;
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    };
    if !drained {
        return true;
    }
    entry.write_stalled_since = None;
    if entry.interest.writable {
        entry.interest.writable = false;
        let _ = poller.modify(entry.stream.as_raw_fd(), entry.conn.token, entry.interest);
    }
    if entry.conn.closing.load(Ordering::Acquire)
        && !entry.conn.scheduled.load(Ordering::Acquire)
        && entry.conn.inbound.lock().is_empty()
    {
        return false;
    }
    maybe_resume_read(poller, shared, exec, entry);
    true
}

/// Re-arm read interest once the frame windows have drained below half,
/// then immediately dispatch any frames still buffered in the decoder —
/// the kernel will not re-signal readability for bytes we already read.
fn maybe_resume_read(
    poller: &Poller,
    shared: &Arc<ServerShared>,
    exec: &Arc<Executor>,
    entry: &mut ConnEntry,
) {
    if !entry.conn.read_paused.load(Ordering::Acquire) {
        return;
    }
    let inbound_len = entry.conn.inbound.lock().len();
    let outbound_len = entry.conn.outbound.lock().frames.len();
    if inbound_len > INBOUND_CAP / 2 || outbound_len > OUTBOUND_CAP / 2 {
        return;
    }
    entry.conn.read_paused.store(false, Ordering::Release);
    if !drain_decoded(poller, shared, exec, entry) {
        // Framing violation discovered in the backlog: defer the close
        // through the normal path.
        entry.conn.closing.store(true, Ordering::Release);
        shared.notify_token(entry.conn.token);
        return;
    }
    if !entry.conn.read_paused.load(Ordering::Acquire) && !entry.interest.readable {
        entry.interest.readable = true;
        let _ = poller.modify(entry.stream.as_raw_fd(), entry.conn.token, entry.interest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbound_gather_honors_head_offset_and_cap() {
        let mut ob = Outbound::default();
        for i in 0..(WRITEV_MAX_FRAMES + 5) {
            ob.frames.push_back(vec![i as u8; 10]);
        }
        ob.head_off = 3;
        let mut bufs = Vec::new();
        ob.gather(&mut bufs);
        assert_eq!(bufs.len(), WRITEV_MAX_FRAMES, "iovec count capped");
        assert_eq!(bufs[0].len(), 7, "first slice skips written prefix");
        assert_eq!(bufs[1].len(), 10, "later frames offered whole");
    }

    #[test]
    fn outbound_advance_matches_frame_boundaries() {
        let mut ob = Outbound::default();
        ob.frames.push_back(vec![0; 10]);
        ob.frames.push_back(vec![1; 20]);
        ob.frames.push_back(vec![2; 30]);

        // Partial write inside the first frame.
        assert_eq!(ob.advance(4), (0, 0));
        assert_eq!(ob.head_off, 4);
        // Finish frame 1, eat all of frame 2, stop mid-frame 3; completed
        // bytes are credited as whole frames (10 + 20).
        assert_eq!(ob.advance(6 + 20 + 5), (2, 30));
        assert_eq!(ob.frames.len(), 1);
        assert_eq!(ob.head_off, 5);
        // Drain the rest.
        assert_eq!(ob.advance(25), (1, 30));
        assert!(ob.frames.is_empty());
        assert_eq!(ob.head_off, 0);
    }

    #[test]
    fn cas_admission_never_exceeds_cap_under_contention() {
        // Satellite regression: the old accept loop did a load followed
        // by a separate fetch_add, so two racing admits could both pass
        // the cap check. The CAS loop cannot.
        let cap = 8;
        let counter = Arc::new(AtomicUsize::new(0));
        let admitted = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let counter = Arc::clone(&counter);
            let admitted = Arc::clone(&admitted);
            let peak = Arc::clone(&peak);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    if try_reserve_slot(&counter, cap) {
                        admitted.fetch_add(1, Ordering::Relaxed);
                        let now = counter.load(Ordering::Relaxed);
                        peak.fetch_max(now, Ordering::Relaxed);
                        assert!(now <= cap, "admitted past the cap: {now}");
                        counter.fetch_sub(1, Ordering::AcqRel);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(admitted.load(Ordering::Relaxed) > 0);
        assert!(peak.load(Ordering::Relaxed) <= cap);
        assert_eq!(counter.load(Ordering::Relaxed), 0);
    }

    fn make_conn(token: u64) -> Arc<Conn> {
        Arc::new(Conn {
            token,
            peer: format!("test-{token}"),
            inbound: Mutex::new(VecDeque::new()),
            outbound: Mutex::new(Outbound::default()),
            scheduled: AtomicBool::new(false),
            closing: AtomicBool::new(false),
            read_paused: AtomicBool::new(false),
            portal: Mutex::new(None),
            shipping: AtomicBool::new(false),
        })
    }

    /// A real `ServerShared` (the executor needs one to run turns); the
    /// returned wake-pipe read end must stay alive for `notify_token`.
    fn test_shared() -> (Arc<ServerShared>, UnixStream) {
        let db = Arc::new(
            VeriDb::open_with_entropy(veridb_common::VeriDbConfig::default(), "net-test", [7; 32])
                .unwrap(),
        );
        let (wake_tx, wake_rx) = UnixStream::pair().unwrap();
        wake_tx.set_nonblocking(true).unwrap();
        let shared = Arc::new(ServerShared {
            qe: QuotingEnclave::new(SIM_ATTESTATION_ROOT),
            cfg: NetConfig::from_config(db.config()),
            db,
            portals: Mutex::new(HashMap::new()),
            active: AtomicUsize::new(0),
            queued: AtomicUsize::new(0),
            shutdown: Arc::new(AtomicBool::new(false)),
            metrics: Some(Arc::new(Metrics::new())),
            notify: Mutex::new(Vec::new()),
            wake_tx,
        });
        (shared, wake_rx)
    }

    fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
        let start = Instant::now();
        while start.elapsed() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        cond()
    }

    #[test]
    fn executor_survives_a_panicking_turn() {
        // A turn that panics on the shared pool must be caught: the panic
        // is counted, the offending connection is torn down, and the pool
        // keeps serving other connections' turns.
        let (shared, _wake_rx) = test_shared();
        let exec = Executor::new();
        let bad = make_conn(0xDEAD);
        let good = make_conn(2);
        bad.inbound.lock().push_back((MSG_BYE, Vec::new()));
        good.inbound.lock().push_back((MSG_BYE, Vec::new()));
        TEST_PANIC_TOKEN.store(0xDEAD, Ordering::Relaxed);
        exec.schedule(&bad, &shared);
        exec.schedule(&good, &shared);
        assert!(
            wait_until(Duration::from_secs(30), || {
                exec.outstanding.load(Ordering::Acquire) == 0
                    && bad.closing.load(Ordering::Acquire)
                    && good.closing.load(Ordering::Acquire)
            }),
            "both turns must finish: the panic is caught, the pool survives"
        );
        let m = shared.metrics.as_deref().unwrap();
        assert_eq!(m.snapshot().net_worker_panics, 1, "panic counted once");
        assert!(
            !bad.scheduled.load(Ordering::Acquire),
            "claim released after the panic teardown"
        );
        // The good connection's BYE was actually processed — proof the
        // pool worker outlived the panicking turn.
        assert!(good.inbound.lock().is_empty());
    }

    #[test]
    fn executor_requeue_keeps_per_conn_serial_claim() {
        let (shared, _wake_rx) = test_shared();
        let exec = Executor::new();
        let conn = make_conn(7);
        // A held claim suppresses the spawn entirely: per-connection
        // frame order is guaranteed by at-most-one turn in flight.
        conn.scheduled.store(true, Ordering::Release);
        exec.schedule(&conn, &shared);
        assert_eq!(
            exec.outstanding.load(Ordering::Acquire),
            0,
            "scheduling a claimed connection must not spawn a second turn"
        );
        // Release and schedule for real: the turn drains the BYE on the
        // shared pool and gives the claim back.
        conn.inbound.lock().push_back((MSG_BYE, Vec::new()));
        conn.scheduled.store(false, Ordering::Release);
        exec.schedule(&conn, &shared);
        assert!(wait_until(Duration::from_secs(30), || {
            exec.outstanding.load(Ordering::Acquire) == 0 && !conn.scheduled.load(Ordering::Acquire)
        }));
        assert!(conn.closing.load(Ordering::Acquire), "BYE processed");
        assert!(conn.inbound.lock().is_empty());
    }
}
