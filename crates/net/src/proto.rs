//! Wire messages: the attestation handshake, signed queries, endorsed
//! results, and errors, encoded with the workspace codec primitives.
//!
//! The payload codec reuses `veridb_common::codec` (little-endian,
//! length-prefixed, bounds-checked) and the canonical `Row` codec, so the
//! bytes a result digest is computed over are the same bytes that travel
//! the wire. Decoding failures are [`Error::Codec`] — the payload came
//! through an untrusted host, so a mangled message must never panic.

use veridb_common::codec::{put_bytes, put_u16, put_u32, put_u64, Reader};
use veridb_common::{Error, Result, Row};
use veridb_enclave::{Mac, MAC_LEN};
use veridb_log::{scan_records, LogRecord};
use veridb_query::{EndorsedResult, QueryResult, SignedQuery};

/// Client → server: open a channel. Carries the channel name and the
/// client's attestation challenge nonce.
pub const MSG_HELLO: u8 = 1;
/// Server → client: the enclave quote binding the client nonce, plus the
/// simulated key-exchange payload (the channel MAC key).
pub const MSG_QUOTE: u8 = 2;
/// Client → server: a MAC-signed query.
pub const MSG_QUERY: u8 = 3;
/// Server → client: a MAC-endorsed result.
pub const MSG_RESULT: u8 = 4;
/// Server → client: a query-level error (qid echoed; qid 0 = session).
pub const MSG_ERROR: u8 = 5;
/// Client → server: request the server's metrics snapshot.
pub const MSG_STATS: u8 = 6;
/// Server → client: metrics snapshot text.
pub const MSG_STATS_OK: u8 = 7;
/// Either direction: orderly close.
pub const MSG_BYE: u8 = 8;
/// Replica → primary: subscribe to the endorsed log from a given LSN.
pub const MSG_SHIP_SUB: u8 = 9;
/// Primary → replica: subscription accepted — current sealed epoch plus
/// the sealed root-entropy blob (useless without the enclave fuse key),
/// so a fresh replica can derive the same keys before applying records.
pub const MSG_SHIP_META: u8 = 10;
/// Primary → replica: a batch of MAC-chained log records. A batch of
/// zero records is a heartbeat (the subscription is alive, the log tip
/// has not moved).
pub const MSG_SHIP: u8 = 11;
/// Replica → primary: records up to this LSN are durable on the
/// replica's own disk (never acknowledged before then).
pub const MSG_SHIP_ACK: u8 = 12;

fn get_mac(r: &mut Reader<'_>) -> Result<Mac> {
    let bytes = r.get_bytes()?;
    if bytes.len() != MAC_LEN {
        return Err(Error::Codec(format!(
            "MAC field is {} bytes, expected {MAC_LEN}",
            bytes.len()
        )));
    }
    let mut m = [0u8; MAC_LEN];
    m.copy_from_slice(bytes);
    Ok(Mac(m))
}

fn get_arr32(r: &mut Reader<'_>) -> Result<[u8; 32]> {
    let bytes = r.get_bytes()?;
    if bytes.len() != 32 {
        return Err(Error::Codec(format!(
            "fixed field is {} bytes, expected 32",
            bytes.len()
        )));
    }
    let mut a = [0u8; 32];
    a.copy_from_slice(bytes);
    Ok(a)
}

fn get_str(r: &mut Reader<'_>) -> Result<String> {
    let bytes = r.get_bytes()?;
    String::from_utf8(bytes.to_vec()).map_err(|_| Error::Codec("non-UTF-8 string field".into()))
}

// ---- HELLO ---------------------------------------------------------------

/// Encode a HELLO payload.
pub fn encode_hello(channel: &str, nonce: &[u8]) -> Vec<u8> {
    let mut buf = Vec::new();
    put_bytes(&mut buf, channel.as_bytes());
    put_bytes(&mut buf, nonce);
    buf
}

/// Decode a HELLO payload into `(channel, nonce)`.
pub fn decode_hello(payload: &[u8]) -> Result<(String, Vec<u8>)> {
    let mut r = Reader::new(payload);
    let channel = get_str(&mut r)?;
    let nonce = r.get_bytes()?.to_vec();
    Ok((channel, nonce))
}

// ---- QUOTE ---------------------------------------------------------------

/// The server's handshake response: the quote fields plus the simulated
/// attested key exchange (the raw channel key — see DESIGN.md §13 for why
/// handing it over after quote verification models the real protocol).
#[derive(Debug, Clone)]
pub struct QuoteMsg {
    /// The quoted enclave measurement.
    pub measurement: [u8; 32],
    /// The report's bound user data (hash of the client nonce).
    pub user_data: [u8; 32],
    /// Quote signature.
    pub signature: Mac,
    /// Channel MAC key (simulated key-exchange payload).
    pub key: [u8; 32],
}

/// Encode a QUOTE payload.
pub fn encode_quote(msg: &QuoteMsg) -> Vec<u8> {
    let mut buf = Vec::new();
    put_bytes(&mut buf, &msg.measurement);
    put_bytes(&mut buf, &msg.user_data);
    put_bytes(&mut buf, &msg.signature.0);
    put_bytes(&mut buf, &msg.key);
    buf
}

/// Decode a QUOTE payload.
pub fn decode_quote(payload: &[u8]) -> Result<QuoteMsg> {
    let mut r = Reader::new(payload);
    Ok(QuoteMsg {
        measurement: get_arr32(&mut r)?,
        user_data: get_arr32(&mut r)?,
        signature: get_mac(&mut r)?,
        key: get_arr32(&mut r)?,
    })
}

// ---- QUERY ---------------------------------------------------------------

/// Encode a signed query.
pub fn encode_query(q: &SignedQuery) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, q.qid);
    put_bytes(&mut buf, q.sql.as_bytes());
    put_bytes(&mut buf, &q.mac.0);
    buf
}

/// Decode a signed query.
pub fn decode_query(payload: &[u8]) -> Result<SignedQuery> {
    let mut r = Reader::new(payload);
    let qid = r.get_u64()?;
    let sql = get_str(&mut r)?;
    let mac = get_mac(&mut r)?;
    Ok(SignedQuery { qid, sql, mac })
}

/// Read just the qid off a QUERY payload without decoding the rest.
/// Used by the admission path to echo the refused query's id in the
/// `Overloaded` error frame; a payload too short to carry a qid yields
/// `None` (the error is then sent with qid 0, a session-level error).
pub fn peek_query_qid(payload: &[u8]) -> Option<u64> {
    Reader::new(payload).get_u64().ok()
}

// ---- RESULT --------------------------------------------------------------

/// Encode an endorsed result.
pub fn encode_result(e: &EndorsedResult) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, e.qid);
    put_u64(&mut buf, e.sequence);
    put_bytes(&mut buf, &e.mac.0);
    put_u16(&mut buf, e.result.columns.len() as u16);
    for c in &e.result.columns {
        put_bytes(&mut buf, c.as_bytes());
    }
    put_u32(&mut buf, e.result.rows.len() as u32);
    for row in &e.result.rows {
        row.encode(&mut buf);
    }
    buf
}

/// Decode an endorsed result.
pub fn decode_result(payload: &[u8]) -> Result<EndorsedResult> {
    let mut r = Reader::new(payload);
    let qid = r.get_u64()?;
    let sequence = r.get_u64()?;
    let mac = get_mac(&mut r)?;
    let ncols = r.get_u16()? as usize;
    let mut columns = Vec::with_capacity(ncols.min(1 << 12));
    for _ in 0..ncols {
        columns.push(get_str(&mut r)?);
    }
    let nrows = r.get_u32()? as usize;
    let mut rows = Vec::new();
    for _ in 0..nrows {
        rows.push(Row::decode(&mut r)?);
    }
    Ok(EndorsedResult {
        qid,
        sequence,
        result: QueryResult { columns, rows },
        mac,
    })
}

// ---- SHIP ----------------------------------------------------------------

/// The primary's answer to a `SHIP_SUB`: where the log stands and the
/// sealed seed a cold replica needs before it can open its own data
/// directory with matching enclave keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShipMeta {
    /// The primary's current sealed epoch.
    pub epoch: u64,
    /// The primary's durable log tip at subscription time.
    pub durable_lsn: u64,
    /// The sealed root-entropy blob (`enclave.seed.sealed` bytes).
    pub sealed_seed: Vec<u8>,
}

/// Encode a SHIP_SUB payload (the first LSN the replica wants).
pub fn encode_ship_sub(from_lsn: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, from_lsn);
    buf
}

/// Decode a SHIP_SUB payload.
pub fn decode_ship_sub(payload: &[u8]) -> Result<u64> {
    let mut r = Reader::new(payload);
    let from_lsn = r.get_u64()?;
    Ok(from_lsn)
}

/// Encode a SHIP_META payload.
pub fn encode_ship_meta(meta: &ShipMeta) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, meta.epoch);
    put_u64(&mut buf, meta.durable_lsn);
    put_bytes(&mut buf, &meta.sealed_seed);
    buf
}

/// Decode a SHIP_META payload.
pub fn decode_ship_meta(payload: &[u8]) -> Result<ShipMeta> {
    let mut r = Reader::new(payload);
    Ok(ShipMeta {
        epoch: r.get_u64()?,
        durable_lsn: r.get_u64()?,
        sealed_seed: r.get_bytes()?.to_vec(),
    })
}

/// Encode a SHIP payload: `count:u32 ‖ framed records`. Each record uses
/// the canonical WAL framing, so the bytes that travel the wire are the
/// bytes the replica appends to its own log — and the MAC chain the
/// replica verifies is the one the primary's enclave produced. An empty
/// batch is a heartbeat.
pub fn encode_ship(records: &[LogRecord]) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u32(&mut buf, records.len() as u32);
    for rec in records {
        rec.encode_framed(&mut buf);
    }
    buf
}

/// Decode a SHIP payload. The count must match the records that cleanly
/// decode — a mangled batch is a codec error, never a silent short read.
pub fn decode_ship(payload: &[u8]) -> Result<Vec<LogRecord>> {
    let mut r = Reader::new(payload);
    let count = r.get_u32()? as usize;
    if count > MAX_SHIP_RECORDS {
        return Err(Error::Codec(format!(
            "ship batch claims {count} records, limit {MAX_SHIP_RECORDS}"
        )));
    }
    let rest = payload
        .get(4..)
        .ok_or_else(|| Error::Codec("ship payload truncated".into()))?;
    let (records, clean) = scan_records(rest);
    if records.len() != count || clean != rest.len() {
        return Err(Error::Codec(format!(
            "ship batch decoded {} of {count} records ({} of {} bytes clean)",
            records.len(),
            clean,
            rest.len()
        )));
    }
    Ok(records)
}

/// Ceiling on records per SHIP batch, bounding what one length prefix can
/// make the replica allocate.
pub const MAX_SHIP_RECORDS: usize = 4096;

/// Encode a SHIP_ACK payload.
pub fn encode_ship_ack(acked_lsn: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, acked_lsn);
    buf
}

/// Decode a SHIP_ACK payload.
pub fn decode_ship_ack(payload: &[u8]) -> Result<u64> {
    let mut r = Reader::new(payload);
    let lsn = r.get_u64()?;
    Ok(lsn)
}

// ---- ERROR ---------------------------------------------------------------

fn error_tag(e: &Error) -> u8 {
    match e {
        Error::PageFull { .. } => 1,
        Error::PageNotFound(_) => 2,
        Error::SlotNotFound { .. } => 3,
        Error::KeyNotFound(_) => 4,
        Error::DuplicateKey(_) => 5,
        Error::TableNotFound(_) => 6,
        Error::TableExists(_) => 7,
        Error::ColumnNotFound(_) => 8,
        Error::EpcExhausted { .. } => 9,
        Error::Parse(_) => 10,
        Error::Plan(_) => 11,
        Error::Type(_) => 12,
        Error::Codec(_) => 13,
        Error::Config(_) => 14,
        Error::InvalidArgument(_) => 15,
        Error::Net { .. } => 16,
        Error::VerificationFailed { .. } => 17,
        Error::TamperDetected(_) => 18,
        Error::AuthFailed(_) => 19,
        Error::RollbackDetected { .. } => 20,
        Error::ReplayDetected { .. } => 21,
        Error::Overloaded { .. } => 22,
        Error::Io(_) => 23,
    }
}

/// Encode an ERROR payload: `qid ‖ tag ‖ fields`. Every [`Error`] variant
/// round-trips so the remote client sees exactly the error the portal
/// produced — including its security-violation classification.
pub fn encode_error(qid: u64, e: &Error) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, qid);
    buf.push(error_tag(e));
    match e {
        Error::PageFull {
            page,
            needed,
            available,
        } => {
            put_u64(&mut buf, *page);
            put_u64(&mut buf, *needed as u64);
            put_u64(&mut buf, *available as u64);
        }
        Error::PageNotFound(p) => put_u64(&mut buf, *p),
        Error::SlotNotFound { page, slot } => {
            put_u64(&mut buf, *page);
            put_u16(&mut buf, *slot);
        }
        Error::KeyNotFound(s)
        | Error::DuplicateKey(s)
        | Error::TableNotFound(s)
        | Error::TableExists(s)
        | Error::ColumnNotFound(s)
        | Error::Parse(s)
        | Error::Plan(s)
        | Error::Type(s)
        | Error::Codec(s)
        | Error::Config(s)
        | Error::InvalidArgument(s)
        | Error::Io(s)
        | Error::TamperDetected(s)
        | Error::AuthFailed(s) => put_bytes(&mut buf, s.as_bytes()),
        Error::EpcExhausted { requested, budget } => {
            put_u64(&mut buf, *requested as u64);
            put_u64(&mut buf, *budget as u64);
        }
        Error::Net { peer, op, detail } => {
            put_bytes(&mut buf, peer.as_bytes());
            put_bytes(&mut buf, op.as_bytes());
            put_bytes(&mut buf, detail.as_bytes());
        }
        Error::VerificationFailed { partition, epoch } => {
            put_u64(&mut buf, *partition as u64);
            put_u64(&mut buf, *epoch);
        }
        Error::RollbackDetected { sequence } => put_u64(&mut buf, *sequence),
        Error::ReplayDetected { qid } => put_u64(&mut buf, *qid),
        Error::Overloaded { queued, limit } => {
            put_u64(&mut buf, *queued as u64);
            put_u64(&mut buf, *limit as u64);
        }
    }
    buf
}

/// Decode an ERROR payload into `(qid, error)`.
pub fn decode_error(payload: &[u8]) -> Result<(u64, Error)> {
    let mut r = Reader::new(payload);
    let qid = r.get_u64()?;
    let tag = r.get_u8()?;
    let err = match tag {
        1 => Error::PageFull {
            page: r.get_u64()?,
            needed: r.get_u64()? as usize,
            available: r.get_u64()? as usize,
        },
        2 => Error::PageNotFound(r.get_u64()?),
        3 => Error::SlotNotFound {
            page: r.get_u64()?,
            slot: r.get_u16()?,
        },
        4 => Error::KeyNotFound(get_str(&mut r)?),
        5 => Error::DuplicateKey(get_str(&mut r)?),
        6 => Error::TableNotFound(get_str(&mut r)?),
        7 => Error::TableExists(get_str(&mut r)?),
        8 => Error::ColumnNotFound(get_str(&mut r)?),
        9 => Error::EpcExhausted {
            requested: r.get_u64()? as usize,
            budget: r.get_u64()? as usize,
        },
        10 => Error::Parse(get_str(&mut r)?),
        11 => Error::Plan(get_str(&mut r)?),
        12 => Error::Type(get_str(&mut r)?),
        13 => Error::Codec(get_str(&mut r)?),
        14 => Error::Config(get_str(&mut r)?),
        15 => Error::InvalidArgument(get_str(&mut r)?),
        23 => Error::Io(get_str(&mut r)?),
        16 => Error::Net {
            peer: get_str(&mut r)?,
            op: get_str(&mut r)?,
            detail: get_str(&mut r)?,
        },
        17 => Error::VerificationFailed {
            partition: r.get_u64()? as usize,
            epoch: r.get_u64()?,
        },
        18 => Error::TamperDetected(get_str(&mut r)?),
        19 => Error::AuthFailed(get_str(&mut r)?),
        20 => Error::RollbackDetected {
            sequence: r.get_u64()?,
        },
        21 => Error::ReplayDetected { qid: r.get_u64()? },
        22 => Error::Overloaded {
            queued: r.get_u64()? as usize,
            limit: r.get_u64()? as usize,
        },
        t => return Err(Error::Codec(format!("unknown error tag {t}"))),
    };
    Ok((qid, err))
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridb_common::Value;

    #[test]
    fn hello_round_trip() {
        let buf = encode_hello("repl", b"nonce-bytes");
        let (channel, nonce) = decode_hello(&buf).unwrap();
        assert_eq!(channel, "repl");
        assert_eq!(nonce, b"nonce-bytes");
    }

    #[test]
    fn quote_round_trip() {
        let msg = QuoteMsg {
            measurement: [1u8; 32],
            user_data: [2u8; 32],
            signature: Mac([3u8; 32]),
            key: [4u8; 32],
        };
        let got = decode_quote(&encode_quote(&msg)).unwrap();
        assert_eq!(got.measurement, msg.measurement);
        assert_eq!(got.user_data, msg.user_data);
        assert_eq!(got.signature, msg.signature);
        assert_eq!(got.key, msg.key);
    }

    #[test]
    fn query_round_trip() {
        let q = SignedQuery {
            qid: 42,
            sql: "SELECT 1".into(),
            mac: Mac([7u8; 32]),
        };
        let got = decode_query(&encode_query(&q)).unwrap();
        assert_eq!(got.qid, 42);
        assert_eq!(got.sql, "SELECT 1");
        assert_eq!(got.mac, q.mac);
    }

    #[test]
    fn result_round_trip() {
        let e = EndorsedResult {
            qid: 9,
            sequence: 100,
            result: QueryResult {
                columns: vec!["id".into(), "total".into()],
                rows: vec![
                    Row::new(vec![Value::Int(1), Value::Float(2.5)]),
                    Row::new(vec![Value::Str("x".into()), Value::Null]),
                ],
            },
            mac: Mac([8u8; 32]),
        };
        let got = decode_result(&encode_result(&e)).unwrap();
        assert_eq!(got.qid, 9);
        assert_eq!(got.sequence, 100);
        assert_eq!(got.mac, e.mac);
        assert_eq!(got.result.columns, e.result.columns);
        assert_eq!(got.result.rows, e.result.rows);
    }

    #[test]
    fn every_error_variant_round_trips() {
        let all = vec![
            Error::PageFull {
                page: 1,
                needed: 2,
                available: 3,
            },
            Error::PageNotFound(4),
            Error::SlotNotFound { page: 5, slot: 6 },
            Error::KeyNotFound("k".into()),
            Error::DuplicateKey("d".into()),
            Error::TableNotFound("t".into()),
            Error::TableExists("t2".into()),
            Error::ColumnNotFound("c".into()),
            Error::EpcExhausted {
                requested: 7,
                budget: 8,
            },
            Error::Parse("p".into()),
            Error::Plan("pl".into()),
            Error::Type("ty".into()),
            Error::Codec("co".into()),
            Error::Config("cf".into()),
            Error::InvalidArgument("ia".into()),
            Error::Io("disk gone".into()),
            Error::Net {
                peer: "1.2.3.4:5".into(),
                op: "read".into(),
                detail: "reset".into(),
            },
            Error::VerificationFailed {
                partition: 9,
                epoch: 10,
            },
            Error::TamperDetected("td".into()),
            Error::AuthFailed("af".into()),
            Error::RollbackDetected { sequence: 11 },
            Error::ReplayDetected { qid: 12 },
            Error::Overloaded {
                queued: 13,
                limit: 14,
            },
        ];
        for e in all {
            let (qid, got) = decode_error(&encode_error(77, &e)).unwrap();
            assert_eq!(qid, 77);
            assert_eq!(got, e, "variant failed to round-trip");
            assert_eq!(got.is_security_violation(), e.is_security_violation());
        }
    }

    #[test]
    fn peek_reads_the_qid_without_full_decode() {
        let q = SignedQuery {
            qid: 0xDEAD_BEEF,
            sql: "SELECT 1".into(),
            mac: Mac([7u8; 32]),
        };
        let buf = encode_query(&q);
        assert_eq!(peek_query_qid(&buf), Some(0xDEAD_BEEF));
        // A truncated header peeks to None, never panics.
        assert_eq!(peek_query_qid(&buf[..3]), None);
        assert_eq!(peek_query_qid(&[]), None);
    }

    #[test]
    fn ship_codecs_round_trip() {
        assert_eq!(decode_ship_sub(&encode_ship_sub(42)).unwrap(), 42);
        assert_eq!(decode_ship_ack(&encode_ship_ack(7)).unwrap(), 7);
        let meta = ShipMeta {
            epoch: 3,
            durable_lsn: 99,
            sealed_seed: vec![1, 2, 3, 4],
        };
        assert_eq!(decode_ship_meta(&encode_ship_meta(&meta)).unwrap(), meta);

        use veridb_enclave::MacKey;
        use veridb_log::GENESIS_MAC;
        let key = MacKey::new([3u8; 32]);
        let r1 = LogRecord::new_chained(&key, &GENESIS_MAC, 1, 1, 10, 3, "INSERT".into());
        let r2 = LogRecord::new_chained(&key, &r1.mac, 2, 1, 11, 4, "UPDATE".into());
        let batch = vec![r1, r2];
        let decoded = decode_ship(&encode_ship(&batch)).unwrap();
        assert_eq!(decoded, batch);
        // Heartbeat: zero records.
        assert!(decode_ship(&encode_ship(&[])).unwrap().is_empty());
    }

    #[test]
    fn mangled_ship_batch_is_a_codec_error() {
        use veridb_enclave::MacKey;
        use veridb_log::GENESIS_MAC;
        let key = MacKey::new([3u8; 32]);
        let r = LogRecord::new_chained(&key, &GENESIS_MAC, 1, 1, 10, 3, "INSERT".into());
        let mut buf = encode_ship(&[r]);
        // Truncation at every offset fails loudly, never misparses.
        for cut in 0..buf.len() {
            assert!(decode_ship(&buf[..cut]).is_err(), "cut at {cut}");
        }
        // A flipped body byte breaks the record CRC.
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        assert!(decode_ship(&buf).is_err());
        // An absurd count is refused before any allocation.
        let mut huge = Vec::new();
        put_u32(&mut huge, (MAX_SHIP_RECORDS + 1) as u32);
        assert!(decode_ship(&huge).is_err());
    }

    #[test]
    fn truncated_payloads_fail_cleanly() {
        let buf = encode_query(&SignedQuery {
            qid: 1,
            sql: "SELECT 1".into(),
            mac: Mac([0u8; 32]),
        });
        for cut in 0..buf.len() {
            assert!(
                decode_query(&buf[..cut]).is_err(),
                "cut at {cut} must error"
            );
        }
    }

    #[test]
    fn wrong_mac_length_rejected() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 1);
        put_bytes(&mut buf, b"SELECT 1");
        put_bytes(&mut buf, b"short-mac");
        assert!(decode_query(&buf).is_err());
    }
}
