//! Untrusted wire framing: magic, version, length prefix, CRC.
//!
//! Every message travels as one frame:
//!
//! ```text
//! ┌───────┬─────────┬──────┬─────────┬─────────┬───────────┐
//! │ magic │ version │ kind │ len u32 │ crc u32 │ payload…  │
//! │ 4 B   │ 2 B     │ 1 B  │ 4 B     │ 4 B     │ len bytes │
//! └───────┴─────────┴──────┴─────────┴─────────┴───────────┘
//! ```
//!
//! The CRC covers `kind ‖ payload` and exists purely as *transport
//! hygiene*: it catches accidental corruption early and cheaply so the
//! connection can fail fast. It provides **no integrity** — an adversarial
//! host can recompute it after tampering. All integrity rests on the portal
//! MACs inside the payloads (see DESIGN.md §13). A frame that fails any
//! framing check surfaces as [`Error::Net`], a transport error, never as a
//! verification alarm.

use std::io::{Read, Write};
use veridb_common::{Error, Result};

/// Frame magic: identifies the VeriDB binary protocol.
pub const MAGIC: [u8; 4] = *b"VDBN";

/// Protocol version. Bumped on any incompatible framing or codec change.
pub const VERSION: u16 = 1;

/// Fixed header size: magic + version + kind + len + crc.
pub const HEADER_BYTES: usize = 4 + 2 + 1 + 4 + 4;

/// Largest accepted payload. Caps memory a malicious peer can make the
/// receiver allocate from a single length prefix.
pub const MAX_FRAME_BYTES: usize = 32 * 1024 * 1024;

/// CRC-32 (IEEE 802.3 polynomial, reflected). Shared with the WAL record
/// codec via `veridb_common::crc`.
pub use veridb_common::crc::crc32;

fn net_err(peer: &str, op: &str, detail: impl std::fmt::Display) -> Error {
    Error::Net {
        peer: peer.to_owned(),
        op: op.to_owned(),
        detail: detail.to_string(),
    }
}

/// Encode a frame into a fresh buffer (header + payload).
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_BYTES + payload.len());
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.push(kind);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let mut crc_input = Vec::with_capacity(1 + payload.len());
    crc_input.push(kind);
    crc_input.extend_from_slice(payload);
    buf.extend_from_slice(&crc32(&crc_input).to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Write one frame. I/O failures become [`Error::Net`] with `peer` context.
pub fn write_frame(w: &mut impl Write, peer: &str, kind: u8, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(net_err(
            peer,
            "write frame",
            format!(
                "payload {} exceeds frame cap {MAX_FRAME_BYTES}",
                payload.len()
            ),
        ));
    }
    let buf = encode_frame(kind, payload);
    w.write_all(&buf)
        .and_then(|()| w.flush())
        .map_err(|e| net_err(peer, "write frame", e))
}

/// Read and validate one frame, returning `(kind, payload)`.
///
/// Any malformed header (wrong magic/version, oversized length) or CRC
/// mismatch is an [`Error::Net`] — the framing layer is untrusted, so these
/// are transport failures, not security alarms.
pub fn read_frame(r: &mut impl Read, peer: &str) -> Result<(u8, Vec<u8>)> {
    let mut header = [0u8; HEADER_BYTES];
    r.read_exact(&mut header)
        .map_err(|e| net_err(peer, "read frame header", e))?;
    parse_header(peer, &header).and_then(|(kind, len, crc)| {
        let mut payload = vec![0u8; len];
        r.read_exact(&mut payload)
            .map_err(|e| net_err(peer, "read frame payload", e))?;
        let mut crc_input = Vec::with_capacity(1 + len);
        crc_input.push(kind);
        crc_input.extend_from_slice(&payload);
        if crc32(&crc_input) != crc {
            return Err(net_err(peer, "read frame", "frame CRC mismatch"));
        }
        Ok((kind, payload))
    })
}

/// Validate a header, returning `(kind, payload_len, expected_crc)`.
fn parse_header(peer: &str, header: &[u8; HEADER_BYTES]) -> Result<(u8, usize, u32)> {
    if header[0..4] != MAGIC {
        return Err(net_err(peer, "read frame", "bad frame magic"));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(net_err(
            peer,
            "read frame",
            format!("unsupported protocol version {version} (expected {VERSION})"),
        ));
    }
    let kind = header[6];
    let len = u32::from_le_bytes([header[7], header[8], header[9], header[10]]) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(net_err(
            peer,
            "read frame",
            format!("frame length {len} exceeds cap {MAX_FRAME_BYTES}"),
        ));
    }
    let crc = u32::from_le_bytes([header[11], header[12], header[13], header[14]]);
    Ok((kind, len, crc))
}

/// Incremental frame decoder for non-blocking sockets.
///
/// The reactor feeds whatever bytes `read(2)` produced into [`extend`]
/// and drains complete frames with [`next_frame`]; partial headers and
/// payloads stay buffered across readiness events. Validation is
/// identical to [`read_frame`] (magic, version, length cap, CRC), and a
/// failure poisons the decoder — framing state is unrecoverable once the
/// byte stream desynchronizes, so the connection must be closed.
///
/// [`extend`]: FrameDecoder::extend
/// [`next_frame`]: FrameDecoder::next_frame
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by returned frames; compacted
    /// lazily so each readiness event is O(bytes read), not O(buffered).
    consumed: usize,
    poisoned: bool,
}

impl FrameDecoder {
    /// Fresh decoder with nothing buffered.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffer bytes read off the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing when the dead prefix dominates.
        if self.consumed > 0 && self.consumed >= self.buf.len() / 2 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Pop the next complete, validated frame, or `None` if more bytes
    /// are needed. After an `Err` the decoder is poisoned and every
    /// subsequent call returns the same framing failure.
    pub fn next_frame(&mut self, peer: &str) -> Result<Option<(u8, Vec<u8>)>> {
        if self.poisoned {
            return Err(net_err(
                peer,
                "read frame",
                "decoder poisoned by earlier framing error",
            ));
        }
        let avail = &self.buf[self.consumed..];
        if avail.len() < HEADER_BYTES {
            return Ok(None);
        }
        let mut header = [0u8; HEADER_BYTES];
        header.copy_from_slice(&avail[..HEADER_BYTES]);
        let (kind, len, crc) = match parse_header(peer, &header) {
            Ok(h) => h,
            Err(e) => {
                self.poisoned = true;
                return Err(e);
            }
        };
        if avail.len() < HEADER_BYTES + len {
            return Ok(None);
        }
        let payload = avail[HEADER_BYTES..HEADER_BYTES + len].to_vec();
        let mut crc_input = Vec::with_capacity(1 + len);
        crc_input.push(kind);
        crc_input.extend_from_slice(&payload);
        if crc32(&crc_input) != crc {
            self.poisoned = true;
            return Err(net_err(peer, "read frame", "frame CRC mismatch"));
        }
        self.consumed += HEADER_BYTES + len;
        Ok(Some((kind, payload)))
    }
}

/// Read one frame as raw bytes (header + payload) *without* CRC
/// validation. Used by the adversarial proxy, which must be able to carry
/// and tamper with frames it does not interpret.
pub fn read_raw_frame(r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let mut header = [0u8; HEADER_BYTES];
    r.read_exact(&mut header)?;
    // Trust only the length field, bounded by the cap; the proxy forwards
    // garbage headers as-is and lets the endpoint reject them.
    let len = u32::from_le_bytes([header[7], header[8], header[9], header[10]]) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame length exceeds cap",
        ));
    }
    let mut buf = Vec::with_capacity(HEADER_BYTES + len);
    buf.extend_from_slice(&header);
    buf.resize(HEADER_BYTES + len, 0);
    r.read_exact(&mut buf[HEADER_BYTES..])?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trip() {
        let buf = encode_frame(7, b"hello frame");
        let mut cur = &buf[..];
        let (kind, payload) = read_frame(&mut cur, "test").unwrap();
        assert_eq!(kind, 7);
        assert_eq!(payload, b"hello frame");
    }

    #[test]
    fn empty_payload_round_trip() {
        let buf = encode_frame(9, b"");
        let mut cur = &buf[..];
        let (kind, payload) = read_frame(&mut cur, "test").unwrap();
        assert_eq!(kind, 9);
        assert!(payload.is_empty());
    }

    #[test]
    fn corrupted_payload_fails_crc() {
        let mut buf = encode_frame(3, b"payload bytes");
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        let mut cur = &buf[..];
        let err = read_frame(&mut cur, "test").unwrap_err();
        assert!(!err.is_security_violation(), "framing errors are transport");
        assert!(err.to_string().contains("CRC"));
    }

    #[test]
    fn corrupted_kind_fails_crc() {
        let mut buf = encode_frame(3, b"payload");
        buf[6] = 4; // kind is covered by the CRC
        let mut cur = &buf[..];
        assert!(read_frame(&mut cur, "test").is_err());
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let mut buf = encode_frame(1, b"x");
        buf[0] = b'X';
        assert!(read_frame(&mut &buf[..], "t")
            .unwrap_err()
            .to_string()
            .contains("magic"));

        let mut buf = encode_frame(1, b"x");
        buf[4] = 0xFF;
        assert!(read_frame(&mut &buf[..], "t")
            .unwrap_err()
            .to_string()
            .contains("version"));
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut buf = encode_frame(1, b"x");
        buf[7..11].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut &buf[..], "t").unwrap_err();
        assert!(err.to_string().contains("cap"));
    }

    #[test]
    fn truncated_frame_is_transport_error() {
        let buf = encode_frame(1, b"longer payload");
        let cut = &buf[..buf.len() - 4];
        let err = read_frame(&mut &cut[..], "t").unwrap_err();
        assert!(!err.is_security_violation());
    }

    #[test]
    fn decoder_reassembles_frames_from_arbitrary_splits() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_frame(3, b"first"));
        stream.extend_from_slice(&encode_frame(4, b""));
        stream.extend_from_slice(&encode_frame(5, b"third payload"));
        // Feed the stream byte-at-a-time, 7-at-a-time, and all-at-once:
        // the decoded frame sequence must be identical.
        for chunk in [1usize, 7, stream.len()] {
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for piece in stream.chunks(chunk) {
                dec.extend(piece);
                while let Some(f) = dec.next_frame("test").unwrap() {
                    got.push(f);
                }
            }
            assert_eq!(
                got,
                vec![
                    (3u8, b"first".to_vec()),
                    (4u8, Vec::new()),
                    (5u8, b"third payload".to_vec()),
                ],
                "chunk size {chunk}"
            );
            assert_eq!(dec.pending_bytes(), 0);
        }
    }

    #[test]
    fn decoder_poisons_on_framing_error_and_stays_poisoned() {
        let mut bad = encode_frame(3, b"payload");
        let last = bad.len() - 1;
        bad[last] ^= 0x01; // break the CRC
        let mut dec = FrameDecoder::new();
        dec.extend(&bad);
        assert!(dec.next_frame("test").is_err());
        // A valid frame after the poison is never surfaced: the stream
        // position is untrustworthy once framing fails.
        dec.extend(&encode_frame(4, b"good"));
        assert!(dec.next_frame("test").is_err());
    }

    #[test]
    fn decoder_rejects_bad_magic_before_buffering_payload() {
        let mut buf = encode_frame(1, b"x");
        buf[0] = b'X';
        let mut dec = FrameDecoder::new();
        dec.extend(&buf);
        let err = dec.next_frame("test").unwrap_err();
        assert!(err.to_string().contains("magic"));
        assert!(!err.is_security_violation());
    }

    #[test]
    fn raw_frame_reads_tampered_bytes_verbatim() {
        let mut buf = encode_frame(2, b"abc");
        let raw = read_raw_frame(&mut &buf[..]).unwrap();
        assert_eq!(raw, buf);
        // Corrupt the CRC: raw read still carries the frame through.
        buf[11] ^= 0xFF;
        let raw = read_raw_frame(&mut &buf[..]).unwrap();
        assert_eq!(raw, buf);
    }
}
