//! Minimal epoll bindings for the reactor (Linux).
//!
//! The server's event loop needs exactly four operations — create an
//! epoll instance, (de)register file descriptors with a readable/writable
//! interest mask, and wait — so this module binds them directly instead
//! of pulling in a portability layer. Registration is level-triggered:
//! the reactor re-arms nothing and simply acts on whatever readiness the
//! kernel reports, which keeps the loop free of the lost-wakeup hazards
//! edge-triggered polling invites.
//!
//! Tokens are opaque `u64`s carried in `epoll_event.data`; the reactor
//! uses them to key its connection registry.

use std::io;
use std::os::unix::io::RawFd;

// Kernel ABI: on x86 the struct is packed so the 64-bit data field
// straddles the events word; other architectures use natural alignment.
#[repr(C)]
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

const EPOLLIN: u32 = 0x1;
const EPOLLOUT: u32 = 0x4;
const EPOLLERR: u32 = 0x8;
const EPOLLHUP: u32 = 0x10;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0x80000;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// Which readiness a registration asks for. Hangup/error conditions are
/// always reported regardless of the mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer half-closed).
    pub readable: bool,
    /// Wake when the fd accepts writes again.
    pub writable: bool,
}

impl Interest {
    /// Readable only — the steady state for an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Neither direction: the fd stays registered (so hangups are still
    /// reported) but produces no read/write events. Used to pause the
    /// listener at the connection cap and paused-read connections.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };

    fn bits(self) -> u32 {
        let mut e = 0;
        if self.readable {
            e |= EPOLLIN | EPOLLRDHUP;
        }
        if self.writable {
            e |= EPOLLOUT;
        }
        e
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Data (or EOF) is available to read.
    pub readable: bool,
    /// The fd accepts writes again.
    pub writable: bool,
    /// The peer hung up or the fd errored; the owner should read to EOF
    /// (draining any final bytes) and close.
    pub hangup: bool,
}

/// An epoll instance. All methods take `&self`; the kernel serializes
/// concurrent `epoll_ctl` calls, though the reactor is single-threaded
/// anyway.
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Create a close-on-exec epoll instance.
    pub fn new() -> io::Result<Poller> {
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: Interest, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest.bits(),
            data: token,
        };
        // DEL ignores the event argument; passing it unconditionally
        // keeps compatibility with pre-2.6.9 kernels that required
        // non-null and costs nothing.
        if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` under `token`.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Change the interest mask (and/or token) of a registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregister a fd. Harmless to call for an already-closed fd (the
    /// kernel auto-deregisters on close); errors are returned but the
    /// reactor ignores them.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, Interest::NONE, 0)
    }

    /// Wait up to `timeout_ms` (−1 = forever) and fill `out` with ready
    /// events. Retries `EINTR` internally; returns the number of events.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        const CAPACITY: usize = 256;
        let mut raw = [EpollEvent { events: 0, data: 0 }; CAPACITY];
        let n = loop {
            let n = unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), CAPACITY as i32, timeout_ms) };
            if n >= 0 {
                break n as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        out.clear();
        for ev in &raw[..n] {
            let bits = ev.events;
            out.push(Event {
                token: ev.data,
                readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(n)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            close(self.epfd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readable_event_fires_and_clears() {
        let poller = Poller::new().unwrap();
        let (mut a, mut b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        poller.add(b.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        // Nothing written yet: zero-timeout wait reports nothing.
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);

        a.write_all(b"x").unwrap();
        assert!(poller.wait(&mut events, 1000).unwrap() >= 1);
        let ev = events.iter().find(|e| e.token == 7).unwrap();
        assert!(ev.readable);

        // Level-triggered: still readable until drained.
        assert!(poller.wait(&mut events, 0).unwrap() >= 1);
        let mut buf = [0u8; 8];
        let _ = b.read(&mut buf).unwrap();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn hangup_reported_as_readable() {
        let poller = Poller::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        poller.add(b.as_raw_fd(), 1, Interest::READ).unwrap();
        drop(a);
        let mut events = Vec::new();
        assert!(poller.wait(&mut events, 1000).unwrap() >= 1);
        // Peer closure surfaces as readable (read will return 0) and/or
        // hangup; either path leads the reactor to close the conn.
        assert!(events[0].readable || events[0].hangup);
    }

    #[test]
    fn interest_none_silences_readiness() {
        let poller = Poller::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        poller.add(b.as_raw_fd(), 3, Interest::READ).unwrap();
        a.write_all(b"x").unwrap();
        let mut events = Vec::new();
        assert!(poller.wait(&mut events, 1000).unwrap() >= 1);
        // Pause: data still pending but no events delivered.
        poller.modify(b.as_raw_fd(), 3, Interest::NONE).unwrap();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
        // Resume: the level-triggered readiness reappears.
        poller.modify(b.as_raw_fd(), 3, Interest::READ).unwrap();
        assert!(poller.wait(&mut events, 1000).unwrap() >= 1);
    }

    #[test]
    fn delete_stops_events() {
        let poller = Poller::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        poller.add(b.as_raw_fd(), 9, Interest::READ).unwrap();
        poller.delete(b.as_raw_fd()).unwrap();
        a.write_all(b"x").unwrap();
        let mut events = Vec::new();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
    }
}
