//! Adversarial wire proxy for tests and demos.
//!
//! [`TamperProxy`] sits between a [`crate::RemoteClient`] and a server,
//! forwarding frames in both directions and applying scripted corruptions:
//! bit-flips (with or without fixing up the untrusted CRC), truncation,
//! frame replay, reordering, and drops. It is the concrete embodiment of
//! the paper's network adversary: it owns the wire completely, and the
//! security claim under test is that *no corruption it applies can produce
//! a wrong result* — only client-visible transport or verification errors.

use crate::frame::{crc32, read_raw_frame, HEADER_BYTES};
use parking_lot::Mutex;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// A corruption to apply to one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tamper {
    /// Flip one payload bit. With `fix_crc` the frame CRC is recomputed so
    /// the *framing* layer accepts the frame and only the portal MACs can
    /// catch it — the test that the CRC is not load-bearing for security.
    BitFlip {
        /// Recompute the CRC over the flipped payload.
        fix_crc: bool,
    },
    /// Forward only the first half of the frame, then sever the connection.
    Truncate,
    /// Forward the frame, then forward an identical copy.
    Replay,
    /// Hold this frame and emit it after the next one (reorder).
    SwapNext,
    /// Silently drop the frame.
    Drop,
}

/// Which direction of the proxied connection a rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Frames from the client toward the server (queries).
    ClientToServer,
    /// Frames from the server toward the client (quotes, results).
    ServerToClient,
}

#[derive(Debug, Clone, Copy)]
struct Rule {
    dir: Dir,
    /// Zero-based index of the frame (per direction, per connection) to hit.
    nth: usize,
    tamper: Tamper,
}

/// A man-in-the-middle proxy owning the wire between client and server.
pub struct TamperProxy {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    rules: Arc<Mutex<Vec<Rule>>>,
    applied: Arc<AtomicUsize>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl TamperProxy {
    /// Start a proxy on an ephemeral port, forwarding to `upstream`.
    pub fn start(upstream: &str) -> std::io::Result<TamperProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let rules = Arc::new(Mutex::new(Vec::new()));
        let applied = Arc::new(AtomicUsize::new(0));

        let upstream = upstream.to_owned();
        let t_shutdown = Arc::clone(&shutdown);
        let t_rules = Arc::clone(&rules);
        let t_applied = Arc::clone(&applied);
        let accept_thread = std::thread::spawn(move || {
            let mut workers = Vec::new();
            while !t_shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((client, _)) => {
                        let Ok(server) = TcpStream::connect(&upstream) else {
                            continue;
                        };
                        let c2s = spawn_forwarder(
                            client.try_clone().expect("clone client stream"),
                            server.try_clone().expect("clone server stream"),
                            Dir::ClientToServer,
                            Arc::clone(&t_rules),
                            Arc::clone(&t_applied),
                        );
                        let s2c = spawn_forwarder(
                            server,
                            client,
                            Dir::ServerToClient,
                            Arc::clone(&t_rules),
                            Arc::clone(&t_applied),
                        );
                        workers.push(c2s);
                        workers.push(s2c);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(10));
                    }
                    Err(_) => break,
                }
            }
            for w in workers {
                let _ = w.join();
            }
        });

        Ok(TamperProxy {
            local_addr,
            shutdown,
            rules,
            applied,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Schedule `tamper` against the `nth` frame (zero-based, counted per
    /// direction per connection) flowing in `dir`.
    pub fn set_tamper(&self, dir: Dir, nth: usize, tamper: Tamper) {
        self.rules.lock().push(Rule { dir, nth, tamper });
    }

    /// Remove all scheduled corruptions.
    pub fn clear(&self) {
        self.rules.lock().clear();
    }

    /// How many corruptions have been applied so far.
    pub fn applied(&self) -> usize {
        self.applied.load(Ordering::SeqCst)
    }
}

impl Drop for TamperProxy {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn spawn_forwarder(
    mut src: TcpStream,
    mut dst: TcpStream,
    dir: Dir,
    rules: Arc<Mutex<Vec<Rule>>>,
    applied: Arc<AtomicUsize>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let mut frame_idx = 0usize;
        // A frame held back by `SwapNext`, emitted after the next frame.
        let mut held: Option<Vec<u8>> = None;
        loop {
            let frame = match read_raw_frame(&mut src) {
                Ok(f) => f,
                Err(_) => {
                    // Connection over: flush any held frame, then mirror
                    // the close to the other side.
                    if let Some(h) = held.take() {
                        let _ = dst.write_all(&h);
                    }
                    let _ = dst.shutdown(std::net::Shutdown::Both);
                    return;
                }
            };
            let rule = {
                let rules = rules.lock();
                rules
                    .iter()
                    .find(|r| r.dir == dir && r.nth == frame_idx)
                    .copied()
            };
            frame_idx += 1;
            let verdict = match rule {
                None => Verdict::Forward(frame),
                Some(rule) => {
                    applied.fetch_add(1, Ordering::SeqCst);
                    apply(rule.tamper, frame)
                }
            };
            match verdict {
                Verdict::Forward(bytes) => {
                    if dst.write_all(&bytes).is_err() {
                        return;
                    }
                    if let Some(h) = held.take() {
                        if dst.write_all(&h).is_err() {
                            return;
                        }
                    }
                }
                Verdict::ForwardTwice(bytes) => {
                    if dst.write_all(&bytes).is_err() || dst.write_all(&bytes).is_err() {
                        return;
                    }
                }
                Verdict::Hold(bytes) => {
                    // If something was already held, emit it first to keep
                    // exactly one frame in flight.
                    if let Some(h) = held.replace(bytes) {
                        if dst.write_all(&h).is_err() {
                            return;
                        }
                    }
                }
                Verdict::Sever(bytes) => {
                    let _ = dst.write_all(&bytes);
                    let _ = dst.shutdown(std::net::Shutdown::Both);
                    let _ = src.shutdown(std::net::Shutdown::Both);
                    return;
                }
                Verdict::Dropped => {}
            }
        }
    })
}

enum Verdict {
    Forward(Vec<u8>),
    ForwardTwice(Vec<u8>),
    Hold(Vec<u8>),
    /// Write these bytes, then kill the connection.
    Sever(Vec<u8>),
    Dropped,
}

fn apply(tamper: Tamper, mut frame: Vec<u8>) -> Verdict {
    match tamper {
        Tamper::BitFlip { fix_crc } => {
            if frame.len() > HEADER_BYTES {
                // Flip a bit in the middle of the payload — inside the
                // MAC-protected message body for every message kind.
                let idx = HEADER_BYTES + (frame.len() - HEADER_BYTES) / 2;
                frame[idx] ^= 0x10;
                if fix_crc {
                    let kind = frame[6];
                    let mut crc_input = Vec::with_capacity(frame.len() - HEADER_BYTES + 1);
                    crc_input.push(kind);
                    crc_input.extend_from_slice(&frame[HEADER_BYTES..]);
                    let crc = crc32(&crc_input);
                    frame[11..15].copy_from_slice(&crc.to_le_bytes());
                }
            }
            Verdict::Forward(frame)
        }
        Tamper::Truncate => {
            let keep = frame.len() / 2;
            frame.truncate(keep.max(1));
            Verdict::Sever(frame)
        }
        Tamper::Replay => Verdict::ForwardTwice(frame),
        Tamper::SwapNext => Verdict::Hold(frame),
        Tamper::Drop => Verdict::Dropped,
    }
}
