//! The verifying remote client.
//!
//! [`RemoteClient`] speaks the frame protocol to a `veridb serve` endpoint
//! and reuses the in-process [`veridb_query::Client`] *unchanged* for every
//! security decision: quote verification at handshake, query signing,
//! endorsement MACs, and the `SeqIntervals` rollback defense. The network
//! layer adds only transport concerns — framing, timeouts, bounded-backoff
//! reconnect — and a strict error taxonomy:
//!
//! - **Transport errors** ([`Error::Net`]): retryable. A lost connection
//!   while *sending* a query is retried automatically with the *same*
//!   signed query (the portal spends a qid only on endorsement, so the
//!   retry is safe). A loss while *awaiting* a response is surfaced to the
//!   caller, because the server may already have endorsed the result and a
//!   blind retry would be indistinguishable from a replay.
//! - **Overload refusals** ([`Error::Overloaded`]): retryable by
//!   construction — the server refused the query at admission, before any
//!   portal saw it, so its qid is unspent and the *identical* signed query
//!   is resent after a bounded backoff.
//! - **Duplicate responses**: a `RESULT` frame that is byte-identical to
//!   one this client already verified (same qid, same endorsement MAC) is
//!   a transport-level replay. It is refused visibly — counted in
//!   [`RemoteClient::duplicates_refused`] — but does *not* poison the
//!   session: the connection keeps serving subsequent queries. A stale
//!   qid with a *different* endorsement is a conflicting answer for a
//!   spent sequence number and goes through full verification, where the
//!   rollback defense rejects it.
//! - **Verification failures** (`AuthFailed`, `RollbackDetected`,
//!   `ReplayDetected`, `VerificationFailed`, `TamperDetected`): never
//!   retried, never downgraded. They propagate exactly as the in-process
//!   client produces them.
//!
//! The client keeps its [`veridb_query::Client`] (qid counter + sequence
//! intervals) across reconnects: a server restart that resets the sequence
//! counter is then caught as [`Error::RollbackDetected`], which is
//! precisely the §5.1 rollback story extended to the wire.

use crate::frame::{read_frame, write_frame};
use crate::proto::{
    decode_error, decode_quote, decode_result, encode_hello, encode_query, MSG_BYE, MSG_ERROR,
    MSG_HELLO, MSG_QUERY, MSG_QUOTE, MSG_RESULT, MSG_STATS, MSG_STATS_OK,
};
use crate::server::SIM_ATTESTATION_ROOT;
use std::collections::{HashMap, VecDeque};
use std::net::TcpStream;
use std::time::Duration;
use veridb_common::backoff::{Backoff, RETRY_ATTEMPTS};
use veridb_common::{Error, Result, Row};
use veridb_enclave::attestation::{Quote, QuoteVerifier, Report};
use veridb_enclave::mac::Mac;
use veridb_enclave::{mac::sha256, MacKey, Measurement, QuotingEnclave};
use veridb_query::{Client, QueryResult, SignedQuery};

/// How many recently answered queries the client remembers, along with
/// the endorsement MAC it accepted for each. A late or replayed `RESULT`
/// frame for one of these is compared against the remembered MAC: a
/// byte-identical duplicate is refused visibly but harmlessly, while a
/// *different* endorsement for a spent qid is verified in full — its
/// sequence number is already in `SeqIntervals`, so it surfaces as
/// `RollbackDetected` instead of passing silently.
const RECENT_QUERIES: usize = 64;

/// A remote VeriDB client over the untrusted wire.
pub struct RemoteClient {
    addr: String,
    channel: String,
    verifier: QuoteVerifier,
    expected: Measurement,
    timeout: Duration,
    stream: Option<TcpStream>,
    /// The in-process verifying client; survives reconnects.
    inner: Option<Client>,
    /// Fingerprint of the channel key accepted at first attestation. A
    /// different key on reconnect means a different enclave instance is
    /// answering — rejected rather than silently re-keyed.
    key_id: Option<[u8; 32]>,
    /// Recently answered queries and the endorsement MAC accepted for
    /// each, for classifying stale/replayed responses.
    recent: HashMap<u64, (SignedQuery, Mac)>,
    recent_order: Vec<u64>,
    /// Byte-identical duplicate `RESULT` frames refused (transport-level
    /// replays that did not disturb the session).
    duplicates_refused: u64,
}

impl RemoteClient {
    /// Connect to `addr`, run the attestation handshake on `channel`, and
    /// verify the enclave quote against `expected`. `verifier` is the
    /// client's root of trust for the quoting infrastructure.
    pub fn connect(
        addr: &str,
        channel: &str,
        verifier: QuoteVerifier,
        expected: Measurement,
        timeout: Duration,
    ) -> Result<RemoteClient> {
        let mut c = RemoteClient {
            addr: addr.to_owned(),
            channel: channel.to_owned(),
            verifier,
            expected,
            timeout,
            stream: None,
            inner: None,
            key_id: None,
            recent: HashMap::new(),
            recent_order: Vec::new(),
            duplicates_refused: 0,
        };
        c.reconnect()?;
        Ok(c)
    }

    /// [`RemoteClient::connect`] against the simulated attestation
    /// service, expecting the enclave identity `identity` (the default
    /// `veridb serve` identity is `"veridb"`). Real deployments would ship
    /// the verifier root and expected measurement out of band.
    pub fn connect_simulated(
        addr: &str,
        channel: &str,
        identity: &str,
        timeout: Duration,
    ) -> Result<RemoteClient> {
        let verifier = QuotingEnclave::new(SIM_ATTESTATION_ROOT).verifier();
        let expected = Measurement::of_code(identity.as_bytes());
        Self::connect(addr, channel, verifier, expected, timeout)
    }

    fn net_err(&self, op: &str, detail: impl std::fmt::Display) -> Error {
        Error::Net {
            peer: self.addr.clone(),
            op: op.to_owned(),
            detail: detail.to_string(),
        }
    }

    /// (Re-)establish the TCP connection and re-run the attestation
    /// handshake with a fresh nonce, with bounded-backoff retries on
    /// transport failures. Verification failures abort immediately.
    pub fn reconnect(&mut self) -> Result<()> {
        self.stream = None;
        let mut backoff = Backoff::new();
        let mut last = self.net_err("connect", "no attempt made");
        for _ in 0..RETRY_ATTEMPTS {
            match self.try_handshake() {
                Ok(()) => return Ok(()),
                Err(e) if e.is_security_violation() => return Err(e),
                Err(e) => {
                    last = e;
                    backoff.wait();
                }
            }
        }
        Err(last)
    }

    /// Re-point this client at a different server — the promoted warm
    /// replica after the primary died — and re-run the attested
    /// handshake there. Everything that makes this client a *verifying*
    /// client survives the switch: the expected measurement, the pinned
    /// channel-key fingerprint (`key_id`), the qid counter, and the
    /// `SeqIntervals` endorsement history. A replica that does not hold
    /// the primary's sealed entropy derives a different channel key and
    /// is refused at the `key_id` check; a replica that rolled the
    /// sequence counter back trips `RollbackDetected` on its first
    /// answer. Failover is therefore only possible onto a replica that
    /// is cryptographically the same database.
    pub fn fail_over(&mut self, addr: &str) -> Result<()> {
        self.addr = addr.to_owned();
        self.reconnect()
    }

    fn try_handshake(&mut self) -> Result<()> {
        let stream = TcpStream::connect(&self.addr).map_err(|e| self.net_err("connect", e))?;
        stream
            .set_read_timeout(Some(self.timeout))
            .map_err(|e| self.net_err("set_read_timeout", e))?;
        stream
            .set_write_timeout(Some(self.timeout))
            .map_err(|e| self.net_err("set_write_timeout", e))?;
        let mut stream = stream;

        // Fresh random nonce per handshake: a replayed quote from an old
        // session fails the nonce binding.
        let mut nonce = [0u8; 32];
        rand::RngCore::fill_bytes(&mut rand::thread_rng(), &mut nonce);

        write_frame(
            &mut stream,
            &self.addr,
            MSG_HELLO,
            &encode_hello(&self.channel, &nonce),
        )?;
        let (kind, payload) = read_frame(&mut stream, &self.addr)?;
        if kind != MSG_QUOTE {
            return Err(self.net_err("handshake", format!("expected QUOTE, got kind {kind}")));
        }
        let msg = decode_quote(&payload)?;
        let quote = Quote {
            report: Report {
                measurement: Measurement::from_bytes(msg.measurement),
                user_data: msg.user_data,
            },
            signature: msg.signature,
        };
        let key = MacKey::new(msg.key);
        let key_id = sha256(&[b"net-channel-key", &msg.key]);

        match (&self.inner, self.key_id) {
            (None, _) => {
                // First attestation: full quote check, then accept the key.
                self.inner = Some(Client::attest_quote(
                    &self.verifier,
                    &quote,
                    self.expected,
                    &nonce,
                    key,
                )?);
                self.key_id = Some(key_id);
            }
            (Some(_), Some(known)) => {
                // Reconnect: the quote must still verify *and* the channel
                // key must be the one this client's sequence history is
                // bound to. A different key means a different enclave
                // instance — treat as an impersonation/rollback attempt.
                self.verifier
                    .verify(&quote, self.expected, &nonce)
                    .map_err(|e| Error::AuthFailed(format!("attestation failed: {e}")))?;
                if key_id != known {
                    return Err(Error::AuthFailed(
                        "channel key changed across reconnect; refusing to re-key a live \
                         sequence history"
                            .into(),
                    ));
                }
            }
            (Some(_), None) => unreachable!("inner client always records key_id"),
        }
        self.stream = Some(stream);
        Ok(())
    }

    fn remember(&mut self, q: SignedQuery, mac: Mac) {
        if self.recent_order.len() >= RECENT_QUERIES {
            let evict = self.recent_order.remove(0);
            self.recent.remove(&evict);
        }
        self.recent_order.push(q.qid);
        self.recent.insert(q.qid, (q, mac));
    }

    /// How many byte-identical duplicate `RESULT` frames this client has
    /// refused. Each was a transport-level replay of a response already
    /// verified; the refusal is per-frame and leaves the session usable.
    pub fn duplicates_refused(&self) -> u64 {
        self.duplicates_refused
    }

    /// Execute one query remotely with full verification. See the module
    /// docs for the retry taxonomy.
    pub fn query(&mut self, sql: &str) -> Result<QueryResult> {
        let q = self
            .inner
            .as_mut()
            .expect("connected client has an inner verifier")
            .sign_query(sql);
        let mut overload_backoff = Backoff::new();
        let mut overload_attempt = 0;
        loop {
            // Send, retrying transport failures with the same signed query
            // (safe: the portal spends a qid only on endorsement).
            let mut backoff = Backoff::new();
            let mut attempt = 0;
            loop {
                let send = self.send_query(&q);
                match send {
                    Ok(()) => break,
                    Err(e) if e.is_security_violation() => return Err(e),
                    Err(e) => {
                        attempt += 1;
                        if attempt >= RETRY_ATTEMPTS {
                            return Err(e);
                        }
                        backoff.wait();
                        self.reconnect()?;
                    }
                }
            }
            match self.await_result(q.clone()) {
                // An admission refusal: the qid is unspent, the identical
                // signed query may be resent once the server breathes.
                Err(Error::Overloaded { .. }) if overload_attempt + 1 < RETRY_ATTEMPTS => {
                    overload_attempt += 1;
                    overload_backoff.wait();
                }
                other => return other,
            }
        }
    }

    fn send_query(&mut self, q: &SignedQuery) -> Result<()> {
        if self.stream.is_none() {
            self.reconnect()?;
        }
        let addr = self.addr.clone();
        let stream = self.stream.as_mut().expect("reconnect sets stream");
        write_frame(stream, &addr, MSG_QUERY, &encode_query(q))
    }

    /// Wait for the response to `q`, verifying every frame that arrives.
    /// Stale frames for *recently answered* queries are verified too — a
    /// replayed endorsement carries an already-seen sequence number and
    /// trips the rollback defense rather than being skipped.
    fn await_result(&mut self, q: SignedQuery) -> Result<QueryResult> {
        // Bound on frames examined before giving up; stale responses from
        // pipelined/replayed traffic are each handled in one iteration.
        for _ in 0..(RECENT_QUERIES * 2) {
            let addr = self.addr.clone();
            let stream = self.stream.as_mut().ok_or_else(|| Error::Net {
                peer: addr.clone(),
                op: "await result".into(),
                detail: "connection lost".into(),
            })?;
            let (kind, payload) = match read_frame(stream, &addr) {
                Ok(f) => f,
                Err(e) => {
                    // The server may already have endorsed this qid; a
                    // silent resend would look like a replay. Surface the
                    // transport error and drop the connection.
                    self.stream = None;
                    return Err(e);
                }
            };
            match kind {
                MSG_RESULT => {
                    let endorsed = decode_result(&payload)?;
                    let inner = self.inner.as_mut().expect("inner set after handshake");
                    if endorsed.qid == q.qid {
                        let rows = inner.verify_result(&q, &endorsed)?;
                        let result = QueryResult {
                            columns: endorsed.result.columns,
                            rows,
                        };
                        self.remember(q, endorsed.mac);
                        return Ok(result);
                    }
                    // A result for a query we did not just send. If it is
                    // byte-identical to one we recently completed, it is a
                    // transport-level replay: refuse it (counted) and keep
                    // the session. A *different* endorsement for a spent
                    // qid is verified in full — its sequence number is
                    // already recorded, so it trips the rollback defense.
                    // Unknown qids are unauthenticated noise → AuthFailed.
                    match self.recent.get(&endorsed.qid) {
                        Some((_, mac)) if mac.0 == endorsed.mac.0 => {
                            self.duplicates_refused += 1;
                            continue;
                        }
                        Some((orig, _)) => {
                            inner.verify_result(orig, &endorsed)?;
                            // Verified but conflict-free: genuinely
                            // impossible (sequence already recorded), but
                            // be explicit rather than continue silently.
                            return Err(Error::AuthFailed(format!(
                                "unexpected duplicate result for qid {}",
                                endorsed.qid
                            )));
                        }
                        None => {
                            return Err(Error::AuthFailed(format!(
                                "result for unknown qid {} (expected {})",
                                endorsed.qid, q.qid
                            )))
                        }
                    }
                }
                MSG_ERROR => {
                    let (eqid, err) = decode_error(&payload)?;
                    if eqid == q.qid || eqid == 0 {
                        return Err(err);
                    }
                    // An error echo for an older qid (e.g. the portal
                    // rejecting an attacker's replay of a query we already
                    // completed). The defense worked; keep waiting for our
                    // own response.
                    continue;
                }
                MSG_BYE => {
                    self.stream = None;
                    return Err(self.net_err("await result", "server closed the session"));
                }
                other => {
                    return Err(
                        self.net_err("await result", format!("unexpected frame kind {other}"))
                    );
                }
            }
        }
        Err(self.net_err("await result", "no response after examining stale frames"))
    }

    /// Execute a batch of queries pipelined on one connection: all signed
    /// and sent up front, responses collected in any order (§5.1 expects
    /// out-of-order arrivals; `SeqIntervals` absorbs them). Results are
    /// returned in the order of `sqls`. Any verification failure aborts
    /// the whole batch.
    pub fn query_batch(&mut self, sqls: &[&str]) -> Result<Vec<QueryResult>> {
        self.query_pipelined(sqls, sqls.len().max(1))
    }

    /// Execute `sqls` with at most `depth` queries in flight at once on
    /// this connection. The server processes one connection's queries
    /// serially and delivers `RESULT` frames in submission order; this
    /// method additionally absorbs two benign interleavings:
    ///
    /// - [`Error::Overloaded`] refusals (the qid is unspent) — the
    ///   identical signed query is resent after a bounded backoff, up to
    ///   [`RETRY_ATTEMPTS`] times per query;
    /// - byte-identical duplicate `RESULT` frames — refused and counted
    ///   ([`RemoteClient::duplicates_refused`]) without disturbing the
    ///   in-flight window.
    ///
    /// Results are returned in the order of `sqls`. Any verification
    /// failure aborts the whole pipeline.
    pub fn query_pipelined(&mut self, sqls: &[&str], depth: usize) -> Result<Vec<QueryResult>> {
        let depth = depth.max(1);
        let inner = self
            .inner
            .as_mut()
            .expect("connected client has an inner verifier");
        let queries: Vec<SignedQuery> = sqls.iter().map(|s| inner.sign_query(s)).collect();
        let total = queries.len();
        let mut next = 0usize;
        // qid → index into `queries`, for everything in flight.
        let mut pending: HashMap<u64, usize> = HashMap::new();
        // Indices refused with Overloaded, awaiting a resend slot.
        let mut resend: VecDeque<usize> = VecDeque::new();
        let mut overload_attempts: HashMap<u64, usize> = HashMap::new();
        let mut overload_backoff = Backoff::new();
        let mut done: HashMap<u64, QueryResult> = HashMap::new();
        let addr = self.addr.clone();
        while done.len() < total {
            // Keep the window full: refused queries first (they are the
            // oldest), then fresh ones.
            while pending.len() < depth && (!resend.is_empty() || next < total) {
                let idx = match resend.pop_front() {
                    Some(idx) => idx,
                    None => {
                        let idx = next;
                        next += 1;
                        idx
                    }
                };
                self.send_query(&queries[idx])?;
                pending.insert(queries[idx].qid, idx);
            }
            let stream = self.stream.as_mut().ok_or_else(|| Error::Net {
                peer: addr.clone(),
                op: "await pipeline".into(),
                detail: "connection lost".into(),
            })?;
            let (kind, payload) = read_frame(stream, &addr).inspect_err(|_| {
                self.stream = None;
            })?;
            match kind {
                MSG_RESULT => {
                    let endorsed = decode_result(&payload)?;
                    let Some(idx) = pending.remove(&endorsed.qid) else {
                        // Not in flight: a transport replay of a completed
                        // response is refused harmlessly; anything else is
                        // unauthenticated noise.
                        match self.recent.get(&endorsed.qid) {
                            Some((_, mac)) if mac.0 == endorsed.mac.0 => {
                                self.duplicates_refused += 1;
                                continue;
                            }
                            _ => {
                                return Err(Error::AuthFailed(format!(
                                    "pipeline result for unexpected qid {}",
                                    endorsed.qid
                                )))
                            }
                        }
                    };
                    let inner = self.inner.as_mut().expect("inner set after handshake");
                    let rows = inner.verify_result(&queries[idx], &endorsed)?;
                    done.insert(
                        endorsed.qid,
                        QueryResult {
                            columns: endorsed.result.columns,
                            rows,
                        },
                    );
                    self.remember(queries[idx].clone(), endorsed.mac);
                }
                MSG_ERROR => {
                    let (eqid, err) = decode_error(&payload)?;
                    match (&err, pending.get(&eqid)) {
                        (Error::Overloaded { .. }, Some(&idx)) => {
                            let attempts = overload_attempts.entry(eqid).or_insert(0);
                            *attempts += 1;
                            if *attempts >= RETRY_ATTEMPTS {
                                return Err(err);
                            }
                            pending.remove(&eqid);
                            resend.push_back(idx);
                            overload_backoff.wait();
                        }
                        _ => return Err(err),
                    }
                }
                MSG_BYE => {
                    self.stream = None;
                    return Err(self.net_err("await pipeline", "server closed the session"));
                }
                other => {
                    return Err(
                        self.net_err("await pipeline", format!("unexpected frame kind {other}"))
                    );
                }
            }
        }
        Ok(queries
            .iter()
            .map(|q| done.remove(&q.qid).expect("every pending qid completed"))
            .collect())
    }

    /// Fetch the server's metrics snapshot as `name value` lines.
    pub fn stats(&mut self) -> Result<String> {
        if self.stream.is_none() {
            self.reconnect()?;
        }
        let addr = self.addr.clone();
        let stream = self.stream.as_mut().expect("reconnect sets stream");
        write_frame(stream, &addr, MSG_STATS, &[])?;
        let (kind, payload) = read_frame(stream, &addr)?;
        if kind != MSG_STATS_OK {
            return Err(self.net_err("stats", format!("unexpected frame kind {kind}")));
        }
        String::from_utf8(payload).map_err(|_| Error::Codec("non-UTF-8 stats payload".into()))
    }

    /// The client's rollback-defense storage footprint, in intervals.
    pub fn sequence_intervals(&self) -> usize {
        self.inner
            .as_ref()
            .map(|c| c.sequence_intervals())
            .unwrap_or(0)
    }

    /// Orderly close (best effort).
    pub fn close(&mut self) {
        if let Some(stream) = self.stream.as_mut() {
            let addr = self.addr.clone();
            let _ = write_frame(stream, &addr, MSG_BYE, &[]);
        }
        self.stream = None;
    }
}

impl Drop for RemoteClient {
    fn drop(&mut self) {
        self.close();
    }
}

impl std::fmt::Debug for RemoteClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteClient")
            .field("addr", &self.addr)
            .field("channel", &self.channel)
            .field("connected", &self.stream.is_some())
            .field("seq_intervals", &self.sequence_intervals())
            .finish_non_exhaustive()
    }
}

/// Convenience: rows of a verified query, mirroring the in-process
/// `Client::verify_result` return shape.
pub fn rows_of(result: &QueryResult) -> &[Row] {
    &result.rows
}
