//! The verifying remote client.
//!
//! [`RemoteClient`] speaks the frame protocol to a `veridb serve` endpoint
//! and reuses the in-process [`veridb_query::Client`] *unchanged* for every
//! security decision: quote verification at handshake, query signing,
//! endorsement MACs, and the `SeqIntervals` rollback defense. The network
//! layer adds only transport concerns — framing, timeouts, bounded-backoff
//! reconnect — and a strict error taxonomy:
//!
//! - **Transport errors** ([`Error::Net`]): retryable. A lost connection
//!   while *sending* a query is retried automatically with the *same*
//!   signed query (the portal spends a qid only on endorsement, so the
//!   retry is safe). A loss while *awaiting* a response is surfaced to the
//!   caller, because the server may already have endorsed the result and a
//!   blind retry would be indistinguishable from a replay.
//! - **Verification failures** (`AuthFailed`, `RollbackDetected`,
//!   `ReplayDetected`, `VerificationFailed`, `TamperDetected`): never
//!   retried, never downgraded. They propagate exactly as the in-process
//!   client produces them.
//!
//! The client keeps its [`veridb_query::Client`] (qid counter + sequence
//! intervals) across reconnects: a server restart that resets the sequence
//! counter is then caught as [`Error::RollbackDetected`], which is
//! precisely the §5.1 rollback story extended to the wire.

use crate::frame::{read_frame, write_frame};
use crate::proto::{
    decode_error, decode_quote, decode_result, encode_hello, encode_query, MSG_BYE, MSG_ERROR,
    MSG_HELLO, MSG_QUERY, MSG_QUOTE, MSG_RESULT, MSG_STATS, MSG_STATS_OK,
};
use crate::server::SIM_ATTESTATION_ROOT;
use std::collections::HashMap;
use std::net::TcpStream;
use std::time::Duration;
use veridb_common::backoff::{Backoff, RETRY_ATTEMPTS};
use veridb_common::{Error, Result, Row};
use veridb_enclave::attestation::{Quote, QuoteVerifier, Report};
use veridb_enclave::{mac::sha256, MacKey, Measurement, QuotingEnclave};
use veridb_query::{Client, QueryResult, SignedQuery};

/// How many recently answered queries the client remembers. A late or
/// replayed `RESULT` frame for one of these is *verified*, not skipped:
/// its sequence number is already in `SeqIntervals`, so a replay surfaces
/// as `RollbackDetected` instead of passing silently.
const RECENT_QUERIES: usize = 64;

/// A remote VeriDB client over the untrusted wire.
pub struct RemoteClient {
    addr: String,
    channel: String,
    verifier: QuoteVerifier,
    expected: Measurement,
    timeout: Duration,
    stream: Option<TcpStream>,
    /// The in-process verifying client; survives reconnects.
    inner: Option<Client>,
    /// Fingerprint of the channel key accepted at first attestation. A
    /// different key on reconnect means a different enclave instance is
    /// answering — rejected rather than silently re-keyed.
    key_id: Option<[u8; 32]>,
    /// Recently answered queries, for verifying stale/replayed responses.
    recent: HashMap<u64, SignedQuery>,
    recent_order: Vec<u64>,
}

impl RemoteClient {
    /// Connect to `addr`, run the attestation handshake on `channel`, and
    /// verify the enclave quote against `expected`. `verifier` is the
    /// client's root of trust for the quoting infrastructure.
    pub fn connect(
        addr: &str,
        channel: &str,
        verifier: QuoteVerifier,
        expected: Measurement,
        timeout: Duration,
    ) -> Result<RemoteClient> {
        let mut c = RemoteClient {
            addr: addr.to_owned(),
            channel: channel.to_owned(),
            verifier,
            expected,
            timeout,
            stream: None,
            inner: None,
            key_id: None,
            recent: HashMap::new(),
            recent_order: Vec::new(),
        };
        c.reconnect()?;
        Ok(c)
    }

    /// [`RemoteClient::connect`] against the simulated attestation
    /// service, expecting the enclave identity `identity` (the default
    /// `veridb serve` identity is `"veridb"`). Real deployments would ship
    /// the verifier root and expected measurement out of band.
    pub fn connect_simulated(
        addr: &str,
        channel: &str,
        identity: &str,
        timeout: Duration,
    ) -> Result<RemoteClient> {
        let verifier = QuotingEnclave::new(SIM_ATTESTATION_ROOT).verifier();
        let expected = Measurement::of_code(identity.as_bytes());
        Self::connect(addr, channel, verifier, expected, timeout)
    }

    fn net_err(&self, op: &str, detail: impl std::fmt::Display) -> Error {
        Error::Net {
            peer: self.addr.clone(),
            op: op.to_owned(),
            detail: detail.to_string(),
        }
    }

    /// (Re-)establish the TCP connection and re-run the attestation
    /// handshake with a fresh nonce, with bounded-backoff retries on
    /// transport failures. Verification failures abort immediately.
    pub fn reconnect(&mut self) -> Result<()> {
        self.stream = None;
        let mut backoff = Backoff::new();
        let mut last = self.net_err("connect", "no attempt made");
        for _ in 0..RETRY_ATTEMPTS {
            match self.try_handshake() {
                Ok(()) => return Ok(()),
                Err(e) if e.is_security_violation() => return Err(e),
                Err(e) => {
                    last = e;
                    backoff.wait();
                }
            }
        }
        Err(last)
    }

    fn try_handshake(&mut self) -> Result<()> {
        let stream = TcpStream::connect(&self.addr).map_err(|e| self.net_err("connect", e))?;
        stream
            .set_read_timeout(Some(self.timeout))
            .map_err(|e| self.net_err("set_read_timeout", e))?;
        stream
            .set_write_timeout(Some(self.timeout))
            .map_err(|e| self.net_err("set_write_timeout", e))?;
        let mut stream = stream;

        // Fresh random nonce per handshake: a replayed quote from an old
        // session fails the nonce binding.
        let mut nonce = [0u8; 32];
        rand::RngCore::fill_bytes(&mut rand::thread_rng(), &mut nonce);

        write_frame(
            &mut stream,
            &self.addr,
            MSG_HELLO,
            &encode_hello(&self.channel, &nonce),
        )?;
        let (kind, payload) = read_frame(&mut stream, &self.addr)?;
        if kind != MSG_QUOTE {
            return Err(self.net_err("handshake", format!("expected QUOTE, got kind {kind}")));
        }
        let msg = decode_quote(&payload)?;
        let quote = Quote {
            report: Report {
                measurement: Measurement::from_bytes(msg.measurement),
                user_data: msg.user_data,
            },
            signature: msg.signature,
        };
        let key = MacKey::new(msg.key);
        let key_id = sha256(&[b"net-channel-key", &msg.key]);

        match (&self.inner, self.key_id) {
            (None, _) => {
                // First attestation: full quote check, then accept the key.
                self.inner = Some(Client::attest_quote(
                    &self.verifier,
                    &quote,
                    self.expected,
                    &nonce,
                    key,
                )?);
                self.key_id = Some(key_id);
            }
            (Some(_), Some(known)) => {
                // Reconnect: the quote must still verify *and* the channel
                // key must be the one this client's sequence history is
                // bound to. A different key means a different enclave
                // instance — treat as an impersonation/rollback attempt.
                self.verifier
                    .verify(&quote, self.expected, &nonce)
                    .map_err(|e| Error::AuthFailed(format!("attestation failed: {e}")))?;
                if key_id != known {
                    return Err(Error::AuthFailed(
                        "channel key changed across reconnect; refusing to re-key a live \
                         sequence history"
                            .into(),
                    ));
                }
            }
            (Some(_), None) => unreachable!("inner client always records key_id"),
        }
        self.stream = Some(stream);
        Ok(())
    }

    fn remember(&mut self, q: SignedQuery) {
        if self.recent_order.len() >= RECENT_QUERIES {
            let evict = self.recent_order.remove(0);
            self.recent.remove(&evict);
        }
        self.recent_order.push(q.qid);
        self.recent.insert(q.qid, q);
    }

    /// Execute one query remotely with full verification. See the module
    /// docs for the retry taxonomy.
    pub fn query(&mut self, sql: &str) -> Result<QueryResult> {
        let q = self
            .inner
            .as_mut()
            .expect("connected client has an inner verifier")
            .sign_query(sql);
        // Send, retrying transport failures with the same signed query
        // (safe: the portal spends a qid only on endorsement).
        let mut backoff = Backoff::new();
        let mut attempt = 0;
        loop {
            let send = self.send_query(&q);
            match send {
                Ok(()) => break,
                Err(e) if e.is_security_violation() => return Err(e),
                Err(e) => {
                    attempt += 1;
                    if attempt >= RETRY_ATTEMPTS {
                        return Err(e);
                    }
                    backoff.wait();
                    self.reconnect()?;
                }
            }
        }
        self.await_result(q)
    }

    fn send_query(&mut self, q: &SignedQuery) -> Result<()> {
        if self.stream.is_none() {
            self.reconnect()?;
        }
        let addr = self.addr.clone();
        let stream = self.stream.as_mut().expect("reconnect sets stream");
        write_frame(stream, &addr, MSG_QUERY, &encode_query(q))
    }

    /// Wait for the response to `q`, verifying every frame that arrives.
    /// Stale frames for *recently answered* queries are verified too — a
    /// replayed endorsement carries an already-seen sequence number and
    /// trips the rollback defense rather than being skipped.
    fn await_result(&mut self, q: SignedQuery) -> Result<QueryResult> {
        // Bound on frames examined before giving up; stale responses from
        // pipelined/replayed traffic are each handled in one iteration.
        for _ in 0..(RECENT_QUERIES * 2) {
            let addr = self.addr.clone();
            let stream = self.stream.as_mut().ok_or_else(|| Error::Net {
                peer: addr.clone(),
                op: "await result".into(),
                detail: "connection lost".into(),
            })?;
            let (kind, payload) = match read_frame(stream, &addr) {
                Ok(f) => f,
                Err(e) => {
                    // The server may already have endorsed this qid; a
                    // silent resend would look like a replay. Surface the
                    // transport error and drop the connection.
                    self.stream = None;
                    return Err(e);
                }
            };
            match kind {
                MSG_RESULT => {
                    let endorsed = decode_result(&payload)?;
                    let inner = self.inner.as_mut().expect("inner set after handshake");
                    if endorsed.qid == q.qid {
                        let rows = inner.verify_result(&q, &endorsed)?;
                        let result = QueryResult {
                            columns: endorsed.result.columns,
                            rows,
                        };
                        self.remember(q);
                        return Ok(result);
                    }
                    // A result for a query we did not just send. If it is
                    // one we recently completed, verify it: a replayed
                    // response re-presents a spent sequence number →
                    // RollbackDetected. Unknown qids are unauthenticated
                    // noise → AuthFailed.
                    match self.recent.get(&endorsed.qid) {
                        Some(orig) => {
                            inner.verify_result(orig, &endorsed)?;
                            // Verified but duplicate-free: genuinely
                            // impossible (sequence already recorded), but
                            // be explicit rather than continue silently.
                            return Err(Error::AuthFailed(format!(
                                "unexpected duplicate result for qid {}",
                                endorsed.qid
                            )));
                        }
                        None => {
                            return Err(Error::AuthFailed(format!(
                                "result for unknown qid {} (expected {})",
                                endorsed.qid, q.qid
                            )))
                        }
                    }
                }
                MSG_ERROR => {
                    let (eqid, err) = decode_error(&payload)?;
                    if eqid == q.qid || eqid == 0 {
                        return Err(err);
                    }
                    // An error echo for an older qid (e.g. the portal
                    // rejecting an attacker's replay of a query we already
                    // completed). The defense worked; keep waiting for our
                    // own response.
                    continue;
                }
                MSG_BYE => {
                    self.stream = None;
                    return Err(self.net_err("await result", "server closed the session"));
                }
                other => {
                    return Err(
                        self.net_err("await result", format!("unexpected frame kind {other}"))
                    );
                }
            }
        }
        Err(self.net_err("await result", "no response after examining stale frames"))
    }

    /// Execute a batch of queries pipelined on one connection: all signed
    /// and sent up front, responses collected in any order (§5.1 expects
    /// out-of-order arrivals; `SeqIntervals` absorbs them). Results are
    /// returned in the order of `sqls`. Any verification failure aborts
    /// the whole batch.
    pub fn query_batch(&mut self, sqls: &[&str]) -> Result<Vec<QueryResult>> {
        let inner = self
            .inner
            .as_mut()
            .expect("connected client has an inner verifier");
        let queries: Vec<SignedQuery> = sqls.iter().map(|s| inner.sign_query(s)).collect();
        for q in &queries {
            self.send_query(q)?;
        }
        let mut pending: HashMap<u64, SignedQuery> =
            queries.iter().map(|q| (q.qid, q.clone())).collect();
        let mut done: HashMap<u64, QueryResult> = HashMap::new();
        let addr = self.addr.clone();
        while !pending.is_empty() {
            let stream = self.stream.as_mut().ok_or_else(|| Error::Net {
                peer: addr.clone(),
                op: "await batch".into(),
                detail: "connection lost".into(),
            })?;
            let (kind, payload) = read_frame(stream, &addr).inspect_err(|_| {
                self.stream = None;
            })?;
            match kind {
                MSG_RESULT => {
                    let endorsed = decode_result(&payload)?;
                    let Some(orig) = pending.remove(&endorsed.qid) else {
                        return Err(Error::AuthFailed(format!(
                            "batch result for unexpected qid {}",
                            endorsed.qid
                        )));
                    };
                    let inner = self.inner.as_mut().expect("inner set after handshake");
                    let rows = inner.verify_result(&orig, &endorsed)?;
                    done.insert(
                        endorsed.qid,
                        QueryResult {
                            columns: endorsed.result.columns,
                            rows,
                        },
                    );
                    self.remember(orig);
                }
                MSG_ERROR => {
                    let (_, err) = decode_error(&payload)?;
                    return Err(err);
                }
                other => {
                    return Err(
                        self.net_err("await batch", format!("unexpected frame kind {other}"))
                    );
                }
            }
        }
        Ok(queries
            .iter()
            .map(|q| done.remove(&q.qid).expect("every pending qid completed"))
            .collect())
    }

    /// Fetch the server's metrics snapshot as `name value` lines.
    pub fn stats(&mut self) -> Result<String> {
        if self.stream.is_none() {
            self.reconnect()?;
        }
        let addr = self.addr.clone();
        let stream = self.stream.as_mut().expect("reconnect sets stream");
        write_frame(stream, &addr, MSG_STATS, &[])?;
        let (kind, payload) = read_frame(stream, &addr)?;
        if kind != MSG_STATS_OK {
            return Err(self.net_err("stats", format!("unexpected frame kind {kind}")));
        }
        String::from_utf8(payload).map_err(|_| Error::Codec("non-UTF-8 stats payload".into()))
    }

    /// The client's rollback-defense storage footprint, in intervals.
    pub fn sequence_intervals(&self) -> usize {
        self.inner
            .as_ref()
            .map(|c| c.sequence_intervals())
            .unwrap_or(0)
    }

    /// Orderly close (best effort).
    pub fn close(&mut self) {
        if let Some(stream) = self.stream.as_mut() {
            let addr = self.addr.clone();
            let _ = write_frame(stream, &addr, MSG_BYE, &[]);
        }
        self.stream = None;
    }
}

impl Drop for RemoteClient {
    fn drop(&mut self) {
        self.close();
    }
}

impl std::fmt::Debug for RemoteClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteClient")
            .field("addr", &self.addr)
            .field("channel", &self.channel)
            .field("connected", &self.stream.is_some())
            .field("seq_intervals", &self.sequence_intervals())
            .finish_non_exhaustive()
    }
}

/// Convenience: rows of a verified query, mirroring the in-process
/// `Client::verify_result` return shape.
pub fn rows_of(result: &QueryResult) -> &[Row] {
    &result.rows
}
