//! VeriDB networked client/server layer.
//!
//! The paper's threat model (§5.1) has a *remote* client talking to the
//! enclave across an untrusted provider: queries carry `MAC_k(qid ‖ sql)`,
//! results come back endorsed with `MAC_k(qid ‖ seq ‖ digest)`, and a
//! strictly increasing sequence number defends against rollback. This
//! crate puts that protocol on a real wire:
//!
//! - [`frame`] — versioned, length-prefixed, CRC-checked binary framing.
//!   The framing layer is *untrusted*: its checks are transport hygiene,
//!   never security (DESIGN.md §13).
//! - [`proto`] — codecs for the handshake, signed queries, endorsed
//!   results, and errors, built on the workspace's canonical codec.
//! - [`server`] — an event-driven reactor over one shared
//!   [`veridb::VeriDb`]: a single epoll loop owns every socket, decodes
//!   frames incrementally, and feeds a bounded executor pool; per-channel
//!   persistent portals, CAS-exact connection admission, a global query
//!   queue with retryable `Overloaded` refusals, per-connection
//!   backpressure windows, idle reaping, and graceful draining shutdown.
//! - [`client`] — [`RemoteClient`], which reuses the in-process verifying
//!   client unchanged for attestation, MACs, and the `SeqIntervals`
//!   rollback defense, adding only transport concerns.
//! - [`proxy`] — [`TamperProxy`], an adversarial man-in-the-middle for
//!   tests: bit-flips, truncation, replay, reordering, drops.
//! - [`replica`] — the warm-replica runtime: [`ShipSubscription`] tails a
//!   primary's MAC-chained log, [`ReplicaRunner`] applies it through the
//!   verified replay path and ACKs durability, and on primary loss the
//!   replica promotes itself so clients can
//!   [`RemoteClient::fail_over`] with their rollback defenses intact.

pub mod client;
pub mod frame;
mod poll;
pub mod proto;
pub mod proxy;
pub mod replica;
pub mod server;

pub use client::RemoteClient;
pub use proxy::{Dir, Tamper, TamperProxy};
pub use replica::{
    ensure_replica_seed, fetch_seed, run_replica, ReplicaOutcome, ReplicaRunner, ShipSubscription,
};
pub use server::{serve, serve_with, NetConfig, ServerHandle, SIM_ATTESTATION_ROOT};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;
    use veridb::{VeriDb, VeriDbConfig};

    fn test_db() -> Arc<VeriDb> {
        let db = VeriDb::open(VeriDbConfig::default()).unwrap();
        db.sql("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
            .unwrap();
        db.sql("INSERT INTO kv VALUES (1, 10), (2, 20), (3, 30)")
            .unwrap();
        Arc::new(db)
    }

    #[test]
    fn serve_query_round_trip() {
        let db = test_db();
        let mut server = serve(Arc::clone(&db), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();
        let mut client =
            RemoteClient::connect_simulated(&addr, "t1", "veridb", Duration::from_secs(5)).unwrap();
        let remote = client.query("SELECT k, v FROM kv WHERE k = 2").unwrap();
        let local = db.sql("SELECT k, v FROM kv WHERE k = 2").unwrap();
        assert_eq!(remote.columns, local.columns);
        assert_eq!(remote.rows, local.rows);
        client.close();
        server.shutdown();
    }

    #[test]
    fn stats_reports_net_counters() {
        let db = test_db();
        let mut server = serve(Arc::clone(&db), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();
        let mut client =
            RemoteClient::connect_simulated(&addr, "t2", "veridb", Duration::from_secs(5)).unwrap();
        client.query("SELECT k FROM kv").unwrap();
        let stats = client.stats().unwrap();
        assert!(stats.contains("net.accepted 1"), "stats:\n{stats}");
        assert!(stats.contains("net.frames_in"), "stats:\n{stats}");
        let wire_count: u64 = stats
            .lines()
            .find(|l| l.starts_with("net.wire_ns.count "))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert!(wire_count >= 1);
        server.shutdown();
    }

    #[test]
    fn wrong_expected_measurement_fails_attestation() {
        let db = test_db();
        let mut server = serve(Arc::clone(&db), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();
        let err =
            RemoteClient::connect_simulated(&addr, "t3", "not-veridb", Duration::from_secs(5))
                .unwrap_err();
        assert!(err.is_security_violation(), "got {err}");
        server.shutdown();
    }

    #[test]
    fn connection_refused_is_transport_error() {
        // Nothing listens on this port (bound then dropped).
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let err =
            RemoteClient::connect_simulated(&addr, "t4", "veridb", Duration::from_millis(200))
                .unwrap_err();
        assert!(matches!(err, veridb::Error::Net { .. }), "got {err}");
        assert!(!err.is_security_violation());
    }
}
