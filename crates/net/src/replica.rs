//! Warm-replica runtime: ship the endorsed log, apply it verified, fail
//! over.
//!
//! A warm replica is a second durable [`VeriDb`] instance that tails the
//! primary's write-ahead log over the wire and applies every record
//! through the same protected replay path recovery uses. Because the
//! records are MAC-chained by the primary's enclave and the replica runs
//! the same enclave identity from the same sealed root entropy, the
//! replica can *verify* the stream it applies — a host (or the network)
//! that reorders, edits, or truncates the feed breaks the chain at
//! `Wal::append_raw` and the batch is refused loudly.
//!
//! The flow:
//!
//! 1. [`fetch_seed`] / [`ensure_replica_seed`] — before the replica's
//!    first open, pull the primary's sealed root-entropy blob
//!    (`SHIP_META`) so both sides derive identical keys. The blob is
//!    sealed under the simulated CPU-fuse key: useless to anyone who
//!    cannot launch the same enclave.
//! 2. [`ShipSubscription`] — attested handshake (the replica verifies
//!    the primary's quote like any client), then `SHIP_SUB(from_lsn)`;
//!    the primary answers `SHIP_META` and streams `SHIP` batches, empty
//!    batches doubling as heartbeats.
//! 3. [`run_replica`] — the apply loop: [`VeriDb::apply_shipped`] per
//!    batch (verify → append to the local WAL → replay → fsync), then
//!    `SHIP_ACK(durable_lsn)` so the primary's `log.ship_lag_records`
//!    gauge tracks how far behind this replica is. Records are never
//!    acknowledged before they are durable on the replica's own disk.
//! 4. **Failover** — when the primary stops answering and reconnects
//!    fail, the loop calls [`VeriDb::promote`]: the replica seals a
//!    fresh epoch and starts logging its own writes. Clients
//!    [`RemoteClient::fail_over`](crate::RemoteClient::fail_over) to it
//!    with their `SeqIntervals` and pinned channel key intact — the
//!    promoted replica derives the *same* per-channel keys from the
//!    shared sealed entropy, so the attestation re-check passes and no
//!    sequence number ever repeats.

use crate::frame::{read_frame, write_frame};
use crate::proto::{
    decode_error, decode_quote, decode_ship, decode_ship_meta, encode_hello, encode_ship_ack,
    encode_ship_sub, ShipMeta, MSG_BYE, MSG_ERROR, MSG_HELLO, MSG_QUOTE, MSG_SHIP, MSG_SHIP_ACK,
    MSG_SHIP_META, MSG_SHIP_SUB,
};
use crate::server::SIM_ATTESTATION_ROOT;
use std::net::TcpStream;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use veridb::{LogRecord, VeriDb};
use veridb_common::{Error, Result};
use veridb_enclave::attestation::{Quote, Report};
use veridb_enclave::{Measurement, QuotingEnclave};

/// Consecutive failed reconnect probes before the replica declares the
/// primary dead and promotes itself.
const PROMOTE_PROBES: u32 = 3;

/// Pause between reconnect probes.
const PROBE_PAUSE: Duration = Duration::from_millis(50);

/// How a replica run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaOutcome {
    /// The caller asked the loop to stop; the instance is still a replica.
    Stopped,
    /// The primary went away; this instance promoted itself to primary.
    Promoted,
}

/// An open log-shipping subscription to a primary.
///
/// The read timeout must comfortably exceed the primary's heartbeat
/// cadence (500 ms), or idle periods will look like transport failures.
pub struct ShipSubscription {
    stream: TcpStream,
    addr: String,
    meta: ShipMeta,
}

impl ShipSubscription {
    /// Connect to `addr`, attest the primary's enclave against
    /// `identity`, and subscribe to its log from `from_lsn`.
    pub fn open(
        addr: &str,
        identity: &str,
        from_lsn: u64,
        timeout: Duration,
    ) -> Result<ShipSubscription> {
        let net_err = |op: &str, detail: String| Error::Net {
            peer: addr.to_owned(),
            op: op.into(),
            detail,
        };
        let stream =
            TcpStream::connect(addr).map_err(|e| net_err("connect", e.to_string()))?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| net_err("set_read_timeout", e.to_string()))?;
        stream
            .set_write_timeout(Some(timeout))
            .map_err(|e| net_err("set_write_timeout", e.to_string()))?;
        let mut stream = stream;

        // The replica is a client of the primary: same attested handshake,
        // fresh nonce, full quote verification. A fake primary cannot feed
        // us a log (and could not have MAC-chained one anyway).
        let mut nonce = [0u8; 32];
        rand::RngCore::fill_bytes(&mut rand::thread_rng(), &mut nonce);
        write_frame(
            &mut stream,
            addr,
            MSG_HELLO,
            &encode_hello("__ship__", &nonce),
        )?;
        let (kind, payload) = read_frame(&mut stream, addr)?;
        if kind != MSG_QUOTE {
            return Err(net_err("handshake", format!("expected QUOTE, got kind {kind}")));
        }
        let msg = decode_quote(&payload)?;
        let quote = Quote {
            report: Report {
                measurement: Measurement::from_bytes(msg.measurement),
                user_data: msg.user_data,
            },
            signature: msg.signature,
        };
        QuotingEnclave::new(SIM_ATTESTATION_ROOT)
            .verifier()
            .verify(&quote, Measurement::of_code(identity.as_bytes()), &nonce)
            .map_err(|e| Error::AuthFailed(format!("primary attestation failed: {e}")))?;

        write_frame(&mut stream, addr, MSG_SHIP_SUB, &encode_ship_sub(from_lsn))?;
        let (kind, payload) = read_frame(&mut stream, addr)?;
        let meta = match kind {
            MSG_SHIP_META => decode_ship_meta(&payload)?,
            MSG_ERROR => return Err(decode_error(&payload)?.1),
            other => {
                return Err(net_err(
                    "subscribe",
                    format!("expected SHIP_META, got kind {other}"),
                ))
            }
        };
        Ok(ShipSubscription {
            stream,
            addr: addr.to_owned(),
            meta,
        })
    }

    /// The primary's subscription metadata (epoch, durable tip, sealed
    /// seed).
    pub fn meta(&self) -> &ShipMeta {
        &self.meta
    }

    /// Block for the next SHIP batch. An empty batch is a heartbeat.
    pub fn next_batch(&mut self) -> Result<Vec<LogRecord>> {
        let (kind, payload) = read_frame(&mut self.stream, &self.addr)?;
        match kind {
            MSG_SHIP => decode_ship(&payload),
            MSG_ERROR => Err(decode_error(&payload)?.1),
            MSG_BYE => Err(Error::Net {
                peer: self.addr.clone(),
                op: "ship".into(),
                detail: "primary closed the subscription".into(),
            }),
            other => Err(Error::Net {
                peer: self.addr.clone(),
                op: "ship".into(),
                detail: format!("unexpected frame kind {other}"),
            }),
        }
    }

    /// Acknowledge that records up to `lsn` are durable on this side.
    pub fn ack(&mut self, lsn: u64) -> Result<()> {
        write_frame(
            &mut self.stream,
            &self.addr,
            MSG_SHIP_ACK,
            &encode_ship_ack(lsn),
        )
    }

    /// Orderly close (best effort).
    pub fn close(mut self) {
        let addr = self.addr.clone();
        let _ = write_frame(&mut self.stream, &addr, MSG_BYE, &[]);
    }
}

/// Fetch the primary's sealed root-entropy blob without consuming any of
/// its log: subscribe, take the `SHIP_META`, say goodbye.
pub fn fetch_seed(addr: &str, identity: &str, timeout: Duration) -> Result<Vec<u8>> {
    let sub = ShipSubscription::open(addr, identity, 1, timeout)?;
    let seed = sub.meta.sealed_seed.clone();
    sub.close();
    Ok(seed)
}

/// Make sure `data_dir` holds the primary's sealed seed before the
/// replica's first durable open. No-op when the seed file already exists
/// (a restarted replica must keep its own — it is the same blob anyway).
pub fn ensure_replica_seed(
    data_dir: &str,
    primary: &str,
    identity: &str,
    timeout: Duration,
) -> Result<()> {
    let path = Path::new(data_dir).join(veridb::durable::SEED_FILE);
    if path.exists() {
        return Ok(());
    }
    std::fs::create_dir_all(data_dir)
        .map_err(|e| Error::Io(format!("create data dir {data_dir}: {e}")))?;
    let seed = fetch_seed(primary, identity, timeout)?;
    veridb_log::store::write_file_atomic(&path, &seed)
}

/// The warm-replica apply loop. Blocks until `stop` is raised (returns
/// [`ReplicaOutcome::Stopped`]) or the primary is declared dead after
/// [`PROMOTE_PROBES`] failed reconnects, in which case the database is
/// [promoted](VeriDb::promote) and the loop returns
/// [`ReplicaOutcome::Promoted`]. Security violations — a feed that fails
/// chain verification, an attestation mismatch — abort immediately and
/// are never retried.
pub fn run_replica(
    db: &VeriDb,
    primary: &str,
    identity: &str,
    timeout: Duration,
    stop: &AtomicBool,
) -> Result<ReplicaOutcome> {
    let durable = db
        .durable()
        .ok_or_else(|| {
            Error::InvalidArgument("a replica needs a durable database (data_dir)".into())
        })?
        .clone();
    let mut probes = 0u32;
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(ReplicaOutcome::Stopped);
        }
        let from = durable.wal().durable_lsn() + 1;
        let mut sub = match ShipSubscription::open(primary, identity, from, timeout) {
            Ok(sub) => sub,
            Err(e) if e.is_security_violation() => return Err(e),
            Err(_) => {
                probes += 1;
                if probes >= PROMOTE_PROBES {
                    db.promote()?;
                    return Ok(ReplicaOutcome::Promoted);
                }
                std::thread::sleep(PROBE_PAUSE);
                continue;
            }
        };
        probes = 0;
        loop {
            if stop.load(Ordering::Acquire) {
                sub.close();
                return Ok(ReplicaOutcome::Stopped);
            }
            match sub.next_batch() {
                Ok(batch) => {
                    // apply_shipped verifies the chain, extends the local
                    // WAL, replays, and waits for the fsync; heartbeats
                    // just re-ack the current durable tip.
                    let acked = if batch.is_empty() {
                        durable.wal().durable_lsn()
                    } else {
                        db.apply_shipped(&batch)?
                    };
                    if sub.ack(acked).is_err() {
                        break; // transport: reconnect or promote
                    }
                }
                Err(e) if e.is_security_violation() => return Err(e),
                Err(_) => break, // transport: reconnect or promote
            }
        }
    }
}

/// [`run_replica`] on a background thread, with a stop/join handle.
pub struct ReplicaRunner {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<Result<ReplicaOutcome>>>,
}

impl ReplicaRunner {
    /// Start the apply loop for `db` against `primary`.
    pub fn spawn(
        db: Arc<VeriDb>,
        primary: &str,
        identity: &str,
        timeout: Duration,
    ) -> ReplicaRunner {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let primary = primary.to_owned();
        let identity = identity.to_owned();
        let thread = std::thread::Builder::new()
            .name("veridb-replica".into())
            .spawn(move || run_replica(&db, &primary, &identity, timeout, &stop2))
            .expect("spawn replica thread");
        ReplicaRunner {
            stop,
            thread: Some(thread),
        }
    }

    /// Ask the loop to stop and wait for it. Returns how the run ended —
    /// [`ReplicaOutcome::Promoted`] if failover happened before the stop
    /// request landed.
    pub fn stop(mut self) -> Result<ReplicaOutcome> {
        self.stop.store(true, Ordering::Release);
        self.join_inner()
    }

    /// Wait for the loop to end on its own (promotion or error).
    pub fn join(mut self) -> Result<ReplicaOutcome> {
        self.join_inner()
    }

    fn join_inner(&mut self) -> Result<ReplicaOutcome> {
        match self.thread.take() {
            Some(t) => t.join().map_err(|_| {
                Error::Io("replica thread panicked".into())
            })?,
            None => Ok(ReplicaOutcome::Stopped),
        }
    }
}

impl Drop for ReplicaRunner {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}
