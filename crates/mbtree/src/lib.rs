//! MB-Tree: the classic MHT-based verifiable index VeriDB is compared
//! against (Li et al., reference \[14\]; §6.2, Figure 11 of the VeriDB paper).
//!
//! An MB-Tree is a B+-tree whose every node carries a Merkle hash:
//!
//! - a leaf's hash covers its sorted `(key, value)` entries,
//! - an internal node's hash covers its separator keys and children hashes,
//! - the **root hash** is the single authenticator the client must track.
//!
//! Reads return a *verification object* (VO): the tree with all subtrees
//! irrelevant to the query pruned to bare hashes. The client recomputes
//! the root hash from the VO and compares it against the tracked root;
//! range completeness follows from revealing one boundary record on each
//! side (the paper's Example 2.1) plus the structural guarantee that no
//! in-range subtree is pruned.
//!
//! The architectural property the paper criticizes is reproduced
//! faithfully: **every operation serializes on the root** — writes must
//! recompute the root hash before any subsequent read can produce a VO,
//! so the whole tree sits behind one lock. That is the concurrency
//! bottleneck Figure 11/13 contrast against VeriDB's partitioned RSWSs.

pub mod hash;
pub mod tree;
pub mod vo;

pub use hash::NodeHash;
pub use tree::MbTree;
pub use vo::{verify_point, verify_range, VerifyOutcome, VoNode};
