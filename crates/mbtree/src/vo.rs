//! Verification objects and client-side checks.
//!
//! A [`VoNode`] is the pruned tree the server returns with each answer.
//! The client holds only the trusted root hash; verification recomputes
//! the root from the VO and checks, structurally, that no subtree that
//! could contain an answer was pruned away.

use crate::hash::{entry_hash, internal_hash, leaf_hash, NodeHash};
use crate::tree::{route_pub, tamper};
use std::ops::Bound;
use veridb_common::{Result, Value};

/// A node of a verification object.
#[derive(Debug, Clone)]
pub enum VoNode {
    /// A subtree irrelevant to the query, reduced to its hash.
    Pruned(NodeHash),
    /// A revealed internal node.
    Internal {
        /// Separator keys.
        keys: Vec<Value>,
        /// Children (revealed or pruned).
        children: Vec<VoNode>,
    },
    /// A fully revealed leaf.
    Leaf {
        /// The leaf's `(key, value)` entries.
        entries: Vec<(Value, Vec<u8>)>,
    },
}

impl VoNode {
    /// Recompute this VO node's Merkle hash.
    pub fn hash(&self) -> NodeHash {
        match self {
            VoNode::Pruned(h) => *h,
            VoNode::Leaf { entries } => {
                let ehashes: Vec<NodeHash> =
                    entries.iter().map(|(k, v)| entry_hash(k, v)).collect();
                leaf_hash(&ehashes)
            }
            VoNode::Internal { keys, children } => {
                let chashes: Vec<NodeHash> = children.iter().map(|c| c.hash()).collect();
                internal_hash(keys, &chashes)
            }
        }
    }

    /// Total serialized size in bytes (the "VO size" metric of the
    /// verifiable-database literature).
    pub fn size_bytes(&self) -> usize {
        match self {
            VoNode::Pruned(_) => 32,
            VoNode::Leaf { entries } => entries
                .iter()
                .map(|(k, v)| k.encode_to_vec().len() + v.len())
                .sum::<usize>(),
            VoNode::Internal { keys, children } => {
                keys.iter().map(|k| k.encode_to_vec().len()).sum::<usize>()
                    + children.iter().map(|c| c.size_bytes()).sum::<usize>()
            }
        }
    }
}

/// Client outcome of a verified point lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// Key present with this value.
    Present(Vec<u8>),
    /// Key verifiably absent.
    Absent,
}

/// Client-side verification of a point lookup: recompute the root hash,
/// then walk the VO along the key's routing path; the path must be fully
/// revealed and end in a leaf that settles presence or absence.
pub fn verify_point(vo: &VoNode, trusted_root: &NodeHash, key: &Value) -> Result<VerifyOutcome> {
    if &vo.hash() != trusted_root {
        return Err(tamper("VO root hash does not match the trusted root"));
    }
    let mut node = vo;
    loop {
        match node {
            VoNode::Pruned(_) => {
                return Err(tamper(
                    "the subtree that could contain the key was pruned from the VO",
                ));
            }
            VoNode::Internal { keys, children } => {
                let idx = route_pub(keys, key);
                node = children
                    .get(idx)
                    .ok_or_else(|| tamper("malformed VO: routing index out of bounds"))?;
            }
            VoNode::Leaf { entries } => {
                return Ok(match entries.iter().find(|(k, _)| k == key) {
                    Some((_, v)) => VerifyOutcome::Present(v.clone()),
                    None => VerifyOutcome::Absent,
                });
            }
        }
    }
}

/// Client-side verification of a range scan `[lo, hi]`: recompute the root
/// hash; check that every subtree intersecting the range is revealed; and
/// return the complete, ordered in-range entries harvested from the VO.
pub fn verify_range(
    vo: &VoNode,
    trusted_root: &NodeHash,
    lo: &Bound<Value>,
    hi: &Bound<Value>,
) -> Result<Vec<(Value, Vec<u8>)>> {
    if &vo.hash() != trusted_root {
        return Err(tamper("VO root hash does not match the trusted root"));
    }
    let mut out = Vec::new();
    walk_range(vo, lo, hi, &mut out)?;
    // Entries arrive in tree order; enforce it as a defensive invariant.
    if !out.windows(2).all(|w| w[0].0 < w[1].0) {
        return Err(tamper("VO leaves are not in key order"));
    }
    Ok(out)
}

fn bound_contains(lo: &Bound<Value>, hi: &Bound<Value>, k: &Value) -> bool {
    let lo_ok = match lo {
        Bound::Unbounded => true,
        Bound::Included(v) => k >= v,
        Bound::Excluded(v) => k > v,
    };
    let hi_ok = match hi {
        Bound::Unbounded => true,
        Bound::Included(v) => k <= v,
        Bound::Excluded(v) => k < v,
    };
    lo_ok && hi_ok
}

fn walk_range(
    node: &VoNode,
    lo: &Bound<Value>,
    hi: &Bound<Value>,
    out: &mut Vec<(Value, Vec<u8>)>,
) -> Result<()> {
    match node {
        VoNode::Pruned(_) => Ok(()), // checked for relevance by the caller
        VoNode::Leaf { entries } => {
            for (k, v) in entries {
                if bound_contains(lo, hi, k) {
                    out.push((k.clone(), v.clone()));
                }
            }
            Ok(())
        }
        VoNode::Internal { keys, children } => {
            // Child i covers keys in [keys[i-1], keys[i]). It intersects
            // the range unless it lies wholly below lo or wholly above hi.
            for (i, child) in children.iter().enumerate() {
                let child_max = keys.get(i); // exclusive upper bound of child i
                let child_min = if i == 0 { None } else { keys.get(i - 1) };
                let below = match (lo, child_max) {
                    (Bound::Included(v), Some(mx)) => mx <= v,
                    (Bound::Excluded(v), Some(mx)) => mx <= v,
                    _ => false,
                };
                let above = match (hi, child_min) {
                    (Bound::Included(v), Some(mn)) => mn > v,
                    (Bound::Excluded(v), Some(mn)) => mn > v,
                    _ => false,
                };
                let intersects = !below && !above;
                if intersects {
                    if matches!(child, VoNode::Pruned(_)) {
                        return Err(tamper(
                            "a subtree intersecting the queried range was \
                             pruned from the VO (possible omission)",
                        ));
                    }
                    walk_range(child, lo, hi, out)?;
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::MbTree;

    fn tree_with(n: i64) -> MbTree {
        let t = MbTree::with_order(8);
        for i in 0..n {
            t.insert(Value::Int(i * 2), format!("v{i}").into_bytes());
        }
        t
    }

    #[test]
    fn honest_point_lookup_verifies() {
        let t = tree_with(100);
        let root = t.root_hash();
        let (v, vo) = t.get(&Value::Int(42));
        assert_eq!(
            verify_point(&vo, &root, &Value::Int(42)).unwrap(),
            VerifyOutcome::Present(v.unwrap())
        );
        // Absence (odd keys don't exist).
        let (v, vo) = t.get(&Value::Int(43));
        assert!(v.is_none());
        assert_eq!(
            verify_point(&vo, &root, &Value::Int(43)).unwrap(),
            VerifyOutcome::Absent
        );
    }

    #[test]
    fn stale_root_rejected() {
        let t = tree_with(100);
        let stale_root = t.root_hash();
        t.update(&Value::Int(0), b"changed".to_vec());
        let (_, vo) = t.get(&Value::Int(42));
        assert!(verify_point(&vo, &stale_root, &Value::Int(42)).is_err());
    }

    #[test]
    fn forged_value_in_vo_rejected() {
        let t = tree_with(100);
        let root = t.root_hash();
        let (_, mut vo) = t.get(&Value::Int(42));
        // The host tampers with a revealed leaf entry in transit.
        fn corrupt(n: &mut VoNode) -> bool {
            match n {
                VoNode::Leaf { entries } => {
                    if let Some((_, v)) = entries.first_mut() {
                        v.push(0xFF);
                        return true;
                    }
                    false
                }
                VoNode::Internal { children, .. } => children.iter_mut().any(corrupt),
                VoNode::Pruned(_) => false,
            }
        }
        assert!(corrupt(&mut vo));
        assert!(verify_point(&vo, &root, &Value::Int(42)).is_err());
    }

    #[test]
    fn honest_range_verifies_and_is_complete() {
        let t = tree_with(200); // keys 0,2,...,398
        let root = t.root_hash();
        let lo = Bound::Included(Value::Int(100));
        let hi = Bound::Included(Value::Int(140));
        let (rows, vo) = t.range(lo.clone(), hi.clone());
        let verified = verify_range(&vo, &root, &lo, &hi).unwrap();
        assert_eq!(verified, rows);
        let keys: Vec<i64> = verified.iter().map(|(k, _)| k.as_i64().unwrap()).collect();
        assert_eq!(keys, (100..=140).step_by(2).collect::<Vec<_>>());
    }

    #[test]
    fn range_omission_detected() {
        let t = tree_with(200);
        let root = t.root_hash();
        let lo = Bound::Included(Value::Int(100));
        let hi = Bound::Included(Value::Int(140));
        let (_, vo) = t.range(lo.clone(), hi.clone());
        // Maliciously prune a revealed in-range subtree.
        fn prune_first_revealed(n: &mut VoNode) -> bool {
            if let VoNode::Internal { children, .. } = n {
                for c in children.iter_mut() {
                    match c {
                        VoNode::Leaf { .. } | VoNode::Internal { .. } => {
                            let h = c.hash();
                            *c = VoNode::Pruned(h);
                            return true;
                        }
                        VoNode::Pruned(_) => continue,
                    }
                }
            }
            false
        }
        let mut forged = vo.clone();
        assert!(prune_first_revealed(&mut forged));
        // Root hash still matches (pruning preserves hashes), but the
        // structural completeness check fires.
        let err = verify_range(&forged, &root, &lo, &hi);
        assert!(err.is_err(), "omission via pruning must be detected");
    }

    #[test]
    fn vo_size_is_sublinear_for_point_queries() {
        let t = MbTree::new();
        for i in 0..20_000i64 {
            t.insert(Value::Int(i), vec![0u8; 64]);
        }
        let (_, vo) = t.get(&Value::Int(10_000));
        // A point VO must be far smaller than the full data (20k * 64B).
        assert!(
            vo.size_bytes() < 64 * 1024,
            "VO is {} bytes",
            vo.size_bytes()
        );
    }

    #[test]
    fn empty_tree_point_lookup() {
        let t = MbTree::new();
        let root = t.root_hash();
        let (v, vo) = t.get(&Value::Int(1));
        assert!(v.is_none());
        assert_eq!(
            verify_point(&vo, &root, &Value::Int(1)).unwrap(),
            VerifyOutcome::Absent
        );
    }
}
