//! The MB-Tree itself: an in-memory B+-tree with per-node Merkle hashes
//! and a single global lock.
//!
//! Writes update the path from the affected leaf to the root, recomputing
//! each node's hash — the root-hash maintenance that makes MHT-based
//! designs serialize all operations (§2.2). Deletes do not rebalance
//! (entries are removed and hashes recomputed; structural slack is
//! acceptable for a baseline and keeps deletion semantics obvious).

use crate::hash::{entry_hash, internal_hash, leaf_hash, NodeHash};
use crate::vo::VoNode;
use parking_lot::Mutex;
use std::ops::Bound;
use veridb_common::{Error, Value};

/// Maximum entries per leaf / children per internal node.
const DEFAULT_ORDER: usize = 32;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        entries: Vec<(Value, Vec<u8>)>,
        hash: NodeHash,
    },
    Internal {
        /// Separator keys; child `i` holds keys `< keys[i]`,
        /// child `i+1` holds keys `>= keys[i]`.
        keys: Vec<Value>,
        children: Vec<usize>,
        child_hashes: Vec<NodeHash>,
        hash: NodeHash,
    },
}

struct TreeInner {
    arena: Vec<Node>,
    root: usize,
    len: usize,
}

/// A Merkle B+-tree behind one global lock.
pub struct MbTree {
    inner: Mutex<TreeInner>,
    order: usize,
}

impl Default for MbTree {
    fn default() -> Self {
        Self::new()
    }
}

impl MbTree {
    /// Empty tree with the default fanout.
    pub fn new() -> Self {
        Self::with_order(DEFAULT_ORDER)
    }

    /// Empty tree with fanout `order` (≥ 4).
    pub fn with_order(order: usize) -> Self {
        assert!(order >= 4, "order must be >= 4");
        let leaf = Node::Leaf {
            entries: Vec::new(),
            hash: leaf_hash(&[]),
        };
        MbTree {
            inner: Mutex::new(TreeInner {
                arena: vec![leaf],
                root: 0,
                len: 0,
            }),
            order,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.lock().len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current root hash — the authenticator the client tracks. Every
    /// verification compares against this value.
    pub fn root_hash(&self) -> NodeHash {
        let t = self.inner.lock();
        node_hash(&t.arena[t.root])
    }

    /// Insert or overwrite `key`. Returns `true` if the key was new.
    pub fn insert(&self, key: Value, value: Vec<u8>) -> bool {
        let mut t = self.inner.lock();
        let order = self.order;
        let root = t.root;
        let (split, was_new) = insert_rec(&mut t.arena, root, key, value, order);
        if was_new {
            t.len += 1;
        }
        if let Some((sep, right)) = split {
            let left = t.root;
            let lh = node_hash(&t.arena[left]);
            let rh = node_hash(&t.arena[right]);
            let keys = vec![sep];
            let hash = internal_hash(&keys, &[lh, rh]);
            t.arena.push(Node::Internal {
                keys,
                children: vec![left, right],
                child_hashes: vec![lh, rh],
                hash,
            });
            t.root = t.arena.len() - 1;
        }
        was_new
    }

    /// Remove `key`. Returns the old value if present.
    pub fn delete(&self, key: &Value) -> Option<Vec<u8>> {
        let mut t = self.inner.lock();
        let root = t.root;
        let removed = delete_rec(&mut t.arena, root, key);
        if removed.is_some() {
            t.len -= 1;
        }
        removed
    }

    /// Overwrite the value of an existing key. Returns `false` if absent.
    pub fn update(&self, key: &Value, value: Vec<u8>) -> bool {
        let mut t = self.inner.lock();
        let root = t.root;
        update_rec(&mut t.arena, root, key, value)
    }

    /// Point lookup with a verification object.
    pub fn get(&self, key: &Value) -> (Option<Vec<u8>>, VoNode) {
        let t = self.inner.lock();
        let vo = build_point_vo(&t.arena, t.root, key);
        let found = lookup(&t.arena, t.root, key);
        (found, vo)
    }

    /// Range scan `[lo, hi]` with a verification object. Returns the
    /// matching `(key, value)` pairs in key order.
    pub fn range(&self, lo: Bound<Value>, hi: Bound<Value>) -> (Vec<(Value, Vec<u8>)>, VoNode) {
        let t = self.inner.lock();
        let vo = build_range_vo(&t.arena, t.root, &lo, &hi);
        let mut out = Vec::new();
        collect_range(&t.arena, t.root, &lo, &hi, &mut out);
        (out, vo)
    }

    /// Rebuild from sorted bulk data (bench setup helper).
    pub fn bulk_load(&self, items: impl IntoIterator<Item = (Value, Vec<u8>)>) {
        for (k, v) in items {
            self.insert(k, v);
        }
    }
}

fn node_hash(n: &Node) -> NodeHash {
    match n {
        Node::Leaf { hash, .. } | Node::Internal { hash, .. } => *hash,
    }
}

fn rehash_leaf(entries: &[(Value, Vec<u8>)]) -> NodeHash {
    let ehashes: Vec<NodeHash> = entries.iter().map(|(k, v)| entry_hash(k, v)).collect();
    leaf_hash(&ehashes)
}

/// Route a key to a child index given separator keys.
fn route(keys: &[Value], key: &Value) -> usize {
    keys.partition_point(|k| key >= k)
}

fn insert_rec(
    arena: &mut Vec<Node>,
    node: usize,
    key: Value,
    value: Vec<u8>,
    order: usize,
) -> (Option<(Value, usize)>, bool) {
    match &mut arena[node] {
        Node::Leaf { entries, hash } => {
            let was_new = match entries.binary_search_by(|(k, _)| k.cmp(&key)) {
                Ok(i) => {
                    entries[i].1 = value;
                    false
                }
                Err(i) => {
                    entries.insert(i, (key, value));
                    true
                }
            };
            if entries.len() <= order {
                *hash = rehash_leaf(entries);
                return (None, was_new);
            }
            // Split.
            let mid = entries.len() / 2;
            let right_entries: Vec<_> = entries.split_off(mid);
            let sep = right_entries[0].0.clone();
            *hash = rehash_leaf(entries);
            let rhash = rehash_leaf(&right_entries);
            arena.push(Node::Leaf {
                entries: right_entries,
                hash: rhash,
            });
            (Some((sep, arena.len() - 1)), was_new)
        }
        Node::Internal { keys, children, .. } => {
            let idx = route(keys, &key);
            let child = children[idx];
            let (split, was_new) = insert_rec(arena, child, key, value, order);
            // Re-borrow after recursion.
            let child_hash = node_hash(&arena[child]);
            let split_info = split.map(|(sep, right)| {
                let rh = node_hash(&arena[right]);
                (sep, right, rh)
            });
            let Node::Internal {
                keys,
                children,
                child_hashes,
                hash,
            } = &mut arena[node]
            else {
                unreachable!()
            };
            child_hashes[idx] = child_hash;
            if let Some((sep, right, rh)) = split_info {
                keys.insert(idx, sep);
                children.insert(idx + 1, right);
                child_hashes.insert(idx + 1, rh);
            }
            if children.len() <= order {
                *hash = internal_hash(keys, child_hashes);
                return (None, was_new);
            }
            // Split the internal node: middle key moves up.
            let mid = keys.len() / 2;
            let sep_up = keys[mid].clone();
            let right_keys: Vec<Value> = keys.split_off(mid + 1);
            keys.pop(); // remove the separator that moves up
            let right_children: Vec<usize> = children.split_off(mid + 1);
            let right_chashes: Vec<NodeHash> = child_hashes.split_off(mid + 1);
            *hash = internal_hash(keys, child_hashes);
            let rhash = internal_hash(&right_keys, &right_chashes);
            arena.push(Node::Internal {
                keys: right_keys,
                children: right_children,
                child_hashes: right_chashes,
                hash: rhash,
            });
            (Some((sep_up, arena.len() - 1)), was_new)
        }
    }
}

fn delete_rec(arena: &mut [Node], node: usize, key: &Value) -> Option<Vec<u8>> {
    match &mut arena[node] {
        Node::Leaf { entries, hash } => match entries.binary_search_by(|(k, _)| k.cmp(key)) {
            Ok(i) => {
                let (_, v) = entries.remove(i);
                *hash = rehash_leaf(entries);
                Some(v)
            }
            Err(_) => None,
        },
        Node::Internal { keys, children, .. } => {
            let idx = route(keys, key);
            let child = children[idx];
            let removed = delete_rec(arena, child, key)?;
            let ch = node_hash(&arena[child]);
            let Node::Internal {
                keys,
                child_hashes,
                hash,
                ..
            } = &mut arena[node]
            else {
                unreachable!()
            };
            child_hashes[idx] = ch;
            *hash = internal_hash(keys, child_hashes);
            Some(removed)
        }
    }
}

fn update_rec(arena: &mut [Node], node: usize, key: &Value, value: Vec<u8>) -> bool {
    match &mut arena[node] {
        Node::Leaf { entries, hash } => match entries.binary_search_by(|(k, _)| k.cmp(key)) {
            Ok(i) => {
                entries[i].1 = value;
                *hash = rehash_leaf(entries);
                true
            }
            Err(_) => false,
        },
        Node::Internal { keys, children, .. } => {
            let idx = route(keys, key);
            let child = children[idx];
            if !update_rec(arena, child, key, value) {
                return false;
            }
            let ch = node_hash(&arena[child]);
            let Node::Internal {
                keys,
                child_hashes,
                hash,
                ..
            } = &mut arena[node]
            else {
                unreachable!()
            };
            child_hashes[idx] = ch;
            *hash = internal_hash(keys, child_hashes);
            true
        }
    }
}

fn lookup(arena: &[Node], node: usize, key: &Value) -> Option<Vec<u8>> {
    match &arena[node] {
        Node::Leaf { entries, .. } => entries
            .binary_search_by(|(k, _)| k.cmp(key))
            .ok()
            .map(|i| entries[i].1.clone()),
        Node::Internal { keys, children, .. } => lookup(arena, children[route(keys, key)], key),
    }
}

fn build_point_vo(arena: &[Node], node: usize, key: &Value) -> VoNode {
    match &arena[node] {
        Node::Leaf { entries, .. } => VoNode::Leaf {
            entries: entries.clone(),
        },
        Node::Internal {
            keys,
            children,
            child_hashes,
            ..
        } => {
            let idx = route(keys, key);
            let vo_children = children
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    if i == idx {
                        build_point_vo(arena, c, key)
                    } else {
                        VoNode::Pruned(child_hashes[i])
                    }
                })
                .collect();
            VoNode::Internal {
                keys: keys.clone(),
                children: vo_children,
            }
        }
    }
}

/// Which children of an internal node must be revealed for `[lo, hi]`:
/// every intersecting child plus one extra on each side (the boundary
/// records of Example 2.1).
pub(crate) fn reveal_range(
    keys: &[Value],
    lo: &Bound<Value>,
    hi: &Bound<Value>,
    n: usize,
) -> (usize, usize) {
    let lo_idx = match lo {
        Bound::Unbounded => 0,
        Bound::Included(v) | Bound::Excluded(v) => route(keys, v),
    };
    let hi_idx = match hi {
        Bound::Unbounded => n - 1,
        Bound::Included(v) | Bound::Excluded(v) => route(keys, v),
    };
    (lo_idx.saturating_sub(1), (hi_idx + 1).min(n - 1))
}

fn build_range_vo(arena: &[Node], node: usize, lo: &Bound<Value>, hi: &Bound<Value>) -> VoNode {
    match &arena[node] {
        Node::Leaf { entries, .. } => VoNode::Leaf {
            entries: entries.clone(),
        },
        Node::Internal {
            keys,
            children,
            child_hashes,
            ..
        } => {
            let (a, b) = reveal_range(keys, lo, hi, children.len());
            let vo_children = children
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    if i >= a && i <= b {
                        build_range_vo(arena, c, lo, hi)
                    } else {
                        VoNode::Pruned(child_hashes[i])
                    }
                })
                .collect();
            VoNode::Internal {
                keys: keys.clone(),
                children: vo_children,
            }
        }
    }
}

fn in_bounds(k: &Value, lo: &Bound<Value>, hi: &Bound<Value>) -> bool {
    let lo_ok = match lo {
        Bound::Unbounded => true,
        Bound::Included(v) => k >= v,
        Bound::Excluded(v) => k > v,
    };
    let hi_ok = match hi {
        Bound::Unbounded => true,
        Bound::Included(v) => k <= v,
        Bound::Excluded(v) => k < v,
    };
    lo_ok && hi_ok
}

fn collect_range(
    arena: &[Node],
    node: usize,
    lo: &Bound<Value>,
    hi: &Bound<Value>,
    out: &mut Vec<(Value, Vec<u8>)>,
) {
    match &arena[node] {
        Node::Leaf { entries, .. } => {
            for (k, v) in entries {
                if in_bounds(k, lo, hi) {
                    out.push((k.clone(), v.clone()));
                }
            }
        }
        Node::Internal { keys, children, .. } => {
            let (a, b) = reveal_range(keys, lo, hi, children.len());
            for &c in &children[a..=b] {
                collect_range(arena, c, lo, hi, out);
            }
        }
    }
}

/// Internal error helper used by verification.
pub(crate) fn tamper(msg: impl Into<String>) -> Error {
    Error::TamperDetected(msg.into())
}

/// Re-exported for `vo::verify_*`.
pub(crate) fn route_pub(keys: &[Value], key: &Value) -> usize {
    route(keys, key)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_with(n: i64) -> MbTree {
        let t = MbTree::with_order(8);
        for i in 0..n {
            assert!(t.insert(Value::Int(i), format!("v{i}").into_bytes()));
        }
        t
    }

    #[test]
    fn insert_get_basics() {
        let t = tree_with(100);
        assert_eq!(t.len(), 100);
        let (v, _) = t.get(&Value::Int(42));
        assert_eq!(v.unwrap(), b"v42");
        let (v, _) = t.get(&Value::Int(500));
        assert!(v.is_none());
    }

    #[test]
    fn insert_overwrites_and_reports() {
        let t = tree_with(10);
        assert!(!t.insert(Value::Int(5), b"replaced".to_vec()));
        assert_eq!(t.len(), 10);
        assert_eq!(t.get(&Value::Int(5)).0.unwrap(), b"replaced");
    }

    #[test]
    fn root_hash_changes_on_every_write() {
        let t = tree_with(50);
        let h0 = t.root_hash();
        t.update(&Value::Int(7), b"new".to_vec());
        let h1 = t.root_hash();
        assert_ne!(h0, h1);
        t.delete(&Value::Int(7));
        let h2 = t.root_hash();
        assert_ne!(h1, h2);
        t.insert(Value::Int(7), b"back".to_vec());
        assert_ne!(h2, t.root_hash());
    }

    #[test]
    fn delete_and_update() {
        let t = tree_with(100);
        assert_eq!(t.delete(&Value::Int(10)).unwrap(), b"v10");
        assert!(t.delete(&Value::Int(10)).is_none());
        assert_eq!(t.len(), 99);
        assert!(t.update(&Value::Int(11), b"x".to_vec()));
        assert!(!t.update(&Value::Int(10), b"x".to_vec()));
    }

    #[test]
    fn range_collects_in_order() {
        let t = tree_with(200);
        let (rows, _) = t.range(
            Bound::Included(Value::Int(50)),
            Bound::Excluded(Value::Int(60)),
        );
        let keys: Vec<i64> = rows.iter().map(|(k, _)| k.as_i64().unwrap()).collect();
        assert_eq!(keys, (50..60).collect::<Vec<_>>());
    }

    #[test]
    fn large_tree_stays_consistent() {
        let t = MbTree::new();
        // Insert shuffled keys.
        let mut keys: Vec<i64> = (0..5000).collect();
        let mut s = 0x12345u64;
        for i in (1..keys.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            keys.swap(i, (s >> 33) as usize % (i + 1));
        }
        for k in &keys {
            t.insert(Value::Int(*k), k.to_le_bytes().to_vec());
        }
        assert_eq!(t.len(), 5000);
        for k in [0i64, 1, 999, 2500, 4999] {
            assert!(t.get(&Value::Int(k)).0.is_some());
        }
        let (rows, _) = t.range(Bound::Unbounded, Bound::Unbounded);
        assert_eq!(rows.len(), 5000);
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
