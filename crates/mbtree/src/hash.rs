//! Merkle hashing for MB-Tree nodes.

use sha2::{Digest, Sha256};
use veridb_common::Value;

/// A 32-byte Merkle hash.
pub type NodeHash = [u8; 32];

/// Hash of one leaf entry: `H("entry" ‖ key ‖ value)`.
pub fn entry_hash(key: &Value, value: &[u8]) -> NodeHash {
    let mut h = Sha256::new();
    h.update(b"entry");
    let kb = key.encode_to_vec();
    h.update((kb.len() as u64).to_le_bytes());
    h.update(&kb);
    h.update((value.len() as u64).to_le_bytes());
    h.update(value);
    h.finalize().into()
}

/// Hash of a leaf node: `H("leaf" ‖ entry hashes)`.
pub fn leaf_hash(entry_hashes: &[NodeHash]) -> NodeHash {
    let mut h = Sha256::new();
    h.update(b"leaf");
    h.update((entry_hashes.len() as u64).to_le_bytes());
    for eh in entry_hashes {
        h.update(eh);
    }
    h.finalize().into()
}

/// Hash of an internal node: `H("node" ‖ separator keys ‖ child hashes)`.
pub fn internal_hash(keys: &[Value], child_hashes: &[NodeHash]) -> NodeHash {
    let mut h = Sha256::new();
    h.update(b"node");
    h.update((keys.len() as u64).to_le_bytes());
    for k in keys {
        let kb = k.encode_to_vec();
        h.update((kb.len() as u64).to_le_bytes());
        h.update(&kb);
    }
    h.update((child_hashes.len() as u64).to_le_bytes());
    for ch in child_hashes {
        h.update(ch);
    }
    h.finalize().into()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_hash_binds_key_and_value() {
        let a = entry_hash(&Value::Int(1), b"v");
        assert_ne!(a, entry_hash(&Value::Int(2), b"v"));
        assert_ne!(a, entry_hash(&Value::Int(1), b"w"));
        assert_eq!(a, entry_hash(&Value::Int(1), b"v"));
    }

    #[test]
    fn node_hashes_are_order_sensitive() {
        let e1 = entry_hash(&Value::Int(1), b"a");
        let e2 = entry_hash(&Value::Int(2), b"b");
        assert_ne!(leaf_hash(&[e1, e2]), leaf_hash(&[e2, e1]));
        assert_ne!(
            internal_hash(&[Value::Int(5)], &[e1, e2]),
            internal_hash(&[Value::Int(6)], &[e1, e2])
        );
    }

    #[test]
    fn domain_separation_between_leaf_and_internal() {
        let e = entry_hash(&Value::Int(1), b"a");
        assert_ne!(leaf_hash(&[e]), internal_hash(&[], &[e]));
    }
}
