//! Property-based model checking of the MB-Tree baseline: arbitrary op
//! sequences match a `BTreeMap` model, every point lookup and range scan
//! verifies against the tracked root hash, and stale roots are rejected.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::ops::Bound;
use veridb_common::Value;
use veridb_mbtree::{verify_point, verify_range, MbTree, VerifyOutcome};

#[derive(Debug, Clone)]
enum Op {
    Insert(i16, u8),
    Delete(i16),
    Update(i16, u8),
    Get(i16),
    Range(i16, i16),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<i16>(), any::<u8>()).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => any::<i16>().prop_map(Op::Delete),
        2 => (any::<i16>(), any::<u8>()).prop_map(|(k, v)| Op::Update(k, v)),
        3 => any::<i16>().prop_map(Op::Get),
        2 => (any::<i16>(), any::<i16>()).prop_map(|(a, b)| Op::Range(a.min(b), a.max(b))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn mbtree_matches_model_and_always_verifies(
        ops in prop::collection::vec(arb_op(), 0..150),
        order in prop_oneof![Just(4usize), Just(8), Just(32)],
    ) {
        let tree = MbTree::with_order(order);
        let mut model: BTreeMap<i64, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let was_new = tree.insert(Value::Int(k as i64), vec![v]);
                    prop_assert_eq!(
                        was_new,
                        model.insert(k as i64, vec![v]).is_none()
                    );
                }
                Op::Delete(k) => {
                    prop_assert_eq!(
                        tree.delete(&Value::Int(k as i64)),
                        model.remove(&(k as i64))
                    );
                }
                Op::Update(k, v) => {
                    let hit = tree.update(&Value::Int(k as i64), vec![v]);
                    if let Some(slot) = model.get_mut(&(k as i64)) {
                        prop_assert!(hit);
                        *slot = vec![v];
                    } else {
                        prop_assert!(!hit);
                    }
                }
                Op::Get(k) => {
                    let root = tree.root_hash();
                    let (got, vo) = tree.get(&Value::Int(k as i64));
                    prop_assert_eq!(got.as_ref(), model.get(&(k as i64)));
                    let outcome =
                        verify_point(&vo, &root, &Value::Int(k as i64)).unwrap();
                    match model.get(&(k as i64)) {
                        Some(v) => prop_assert_eq!(
                            outcome,
                            VerifyOutcome::Present(v.clone())
                        ),
                        None => prop_assert_eq!(outcome, VerifyOutcome::Absent),
                    }
                }
                Op::Range(a, b) => {
                    let root = tree.root_hash();
                    let lo = Bound::Included(Value::Int(a as i64));
                    let hi = Bound::Included(Value::Int(b as i64));
                    let (rows, vo) = tree.range(lo.clone(), hi.clone());
                    let verified = verify_range(&vo, &root, &lo, &hi).unwrap();
                    prop_assert_eq!(&verified, &rows);
                    let got: Vec<i64> =
                        rows.iter().map(|(k, _)| k.as_i64().unwrap()).collect();
                    let want: Vec<i64> =
                        model.range(a as i64..=b as i64).map(|(&k, _)| k).collect();
                    prop_assert_eq!(got, want);
                }
            }
        }
        prop_assert_eq!(tree.len(), model.len());
    }

    #[test]
    fn stale_roots_always_rejected(
        seed in prop::collection::vec((any::<i16>(), any::<u8>()), 1..40),
        mutate_key in any::<i16>(),
    ) {
        let tree = MbTree::with_order(8);
        for (k, v) in &seed {
            tree.insert(Value::Int(*k as i64), vec![*v]);
        }
        let stale = tree.root_hash();
        // Any state-changing write invalidates old roots.
        tree.insert(Value::Int(mutate_key as i64), b"mutated".to_vec());
        let probe = Value::Int(seed[0].0 as i64);
        let (_, vo) = tree.get(&probe);
        prop_assert!(verify_point(&vo, &stale, &probe).is_err());
    }
}
