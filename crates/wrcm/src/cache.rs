//! Enclave-resident verified cell cache.
//!
//! The offline memory-checking protocol (Algorithm 1) pays a PRF
//! evaluation, two digest folds, and a page-mutex acquisition on *every*
//! cell access. For hot cells (TPC-C warehouse/district rows) that cost
//! dominates. The protocol explicitly tolerates keeping a cell inside
//! trusted memory and deferring its RS/WS accounting: after a protected
//! read verifies a cell, the host copy's `(data, ts)` pair *is* the cell's
//! outstanding WS element, and it stays exactly that until the next
//! protected operation touches it. So the enclave may pin the verified
//! payload and serve reads — and absorb writes — from trusted memory with
//! no crypto at all, as long as every *host-visible* mutation of the cell
//! goes back through the protocol:
//!
//! - **fill** (read miss): the normal verified read runs (RS fold at the
//!   host timestamp, WS fold at a fresh one), then the payload is pinned.
//!   The host copy keeps carrying the outstanding element.
//! - **read hit**: return the pinned payload. No PRF, no folds, no page
//!   lock — just the cache shard lock.
//! - **write hit**: overwrite the pinned payload and mark the entry dirty,
//!   *iff* the new payload fits the entry's capacity (the length verified
//!   at fill — in-place host writes of `len <= capacity` can never fail,
//!   so the deferred write-back can never be stranded by `PageFull`).
//!   The host copy still carries the *fill-time* outstanding element.
//! - **write-back** (dirty eviction, drain): a normal protected write: RS
//!   fold consumes the host copy at its current timestamp (cancelling the
//!   outstanding element — a tampered host copy fails to cancel and is
//!   caught at the next epoch close), WS fold inserts the dirty payload at
//!   a fresh timestamp.
//! - **clean eviction**: drop the entry. The host copy already carries the
//!   outstanding element ("released with its entry timestamp"); nothing
//!   folds, and `h(RS) = h(WS)` balances at the next deferred scan.
//!
//! Verification scans read host bytes and therefore need no cache
//! interaction for balance; tampering with the host copy of a cached cell
//! is detected at the next scan exactly as for an uncached cell.
//!
//! Locking: the cache is sharded by page id; the global order is
//! **cache shard → page mutex → partition mutex** (shards by index when
//! two are needed). Shard locks are reader-writer: read-only interactions
//! (point-read hits, the batched scan's no-dirty-cells fast path) hold
//! the covering shard lock in *shared* mode so hot read-mostly morsels do
//! not serialize on it, while every path that mutates cached state —
//! fill, invalidate, write-back, dirty-flush, absorb — holds it
//! exclusively for its whole duration, which keeps those transitions
//! atomic against concurrent point ops. Scan-side code (`process_page`,
//! compaction) never takes shard locks, so it can never invert the order.

use crate::memory::CellAddr;
use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use veridb_enclave::EpcAllocation;

/// Fixed shard count: enough to keep unrelated pages off each other's
/// lock under the morsel worker pool, small enough that a full drain is
/// cheap.
const SHARDS: usize = 16;

/// Approximate per-entry enclave bookkeeping (map node, ring slot, flags)
/// charged against the byte budget and the EPC on top of the payload.
pub const ENTRY_OVERHEAD: usize = 96;

/// One pinned cell.
#[derive(Debug)]
pub(crate) struct Entry {
    /// The trusted payload (authoritative while the entry lives).
    pub data: Vec<u8>,
    /// Capacity ceiling for absorbed writes: the payload length the host
    /// copy was last written with. In-place host writes of up to this
    /// length cannot fail, so write-back is `PageFull`-proof.
    pub cap: usize,
    /// Whether `data` differs from the host copy (write-back required on
    /// eviction).
    pub dirty: bool,
    /// Second-chance bit for the clock eviction ring. Atomic so shared
    /// lookups ([`Shard::get`] under a read guard) can set it.
    referenced: AtomicBool,
    /// EPC budget charge for `cap + ENTRY_OVERHEAD` bytes; released on
    /// drop.
    _epc: Option<EpcAllocation>,
}

impl Entry {
    fn cost(&self) -> usize {
        self.cap + ENTRY_OVERHEAD
    }
}

/// One cache shard: entry map plus a clock (second-chance) eviction ring.
/// Ring slots may go stale when entries are invalidated; the clock hand
/// skips them lazily.
#[derive(Debug, Default)]
pub(crate) struct Shard {
    entries: HashMap<CellAddr, Entry>,
    ring: VecDeque<CellAddr>,
    bytes: usize,
    budget: usize,
}

impl Shard {
    /// Look up a pinned payload, marking the entry recently used. Takes
    /// `&self` so hit paths work under a shared shard guard.
    pub fn get(&self, addr: CellAddr) -> Option<Vec<u8>> {
        let e = self.entries.get(&addr)?;
        e.referenced.store(true, Ordering::Relaxed);
        Some(e.data.clone())
    }

    /// Whether `addr` is pinned *dirty* (shared-guard probe for the
    /// batched scan's fast path).
    pub fn is_dirty(&self, addr: CellAddr) -> bool {
        self.entries.get(&addr).is_some_and(|e| e.dirty)
    }

    /// Absorb a write into the pinned copy if the entry exists and the new
    /// payload fits its capacity. Returns whether the write was absorbed.
    pub fn write_hit(&mut self, addr: CellAddr, data: &[u8]) -> bool {
        match self.entries.get_mut(&addr) {
            Some(e) if data.len() <= e.cap => {
                e.data.clear();
                e.data.extend_from_slice(data);
                e.dirty = true;
                e.referenced.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Whether `addr` is pinned.
    pub fn contains(&self, addr: CellAddr) -> bool {
        self.entries.contains_key(&addr)
    }

    /// Drop the entry for `addr` (invalidation: the caller has superseded
    /// or destroyed the host cell under this shard lock). Any dirty
    /// payload dies with it — the caller's host-path fold already accounts
    /// for the cell.
    pub fn remove(&mut self, addr: CellAddr) -> Option<Entry> {
        let e = self.entries.remove(&addr)?;
        self.bytes -= e.cost();
        Some(e)
    }

    /// If `addr` is pinned dirty: mark it clean and return a copy of the
    /// payload for the caller to write back to the host (under this same
    /// shard lock). The entry stays pinned, and its capacity ceiling
    /// shrinks to the flushed length: the host copy now holds exactly
    /// these bytes, and a later compaction may trim its cell capacity to
    /// match, so absorbing anything longer would strand the write-back.
    pub fn take_dirty_data(&mut self, addr: CellAddr) -> Option<Vec<u8>> {
        let e = self.entries.get_mut(&addr)?;
        if !e.dirty {
            return None;
        }
        e.dirty = false;
        self.bytes -= e.cost();
        e.cap = e.data.len();
        self.bytes += e.cost();
        Some(e.data.clone())
    }

    /// Evict entries (clock / second chance) until `need` more bytes fit
    /// in the budget, returning the victims for the caller to write back
    /// if dirty. May return fewer than needed only when the shard empties.
    pub fn make_room(&mut self, need: usize) -> Vec<(CellAddr, Entry)> {
        let mut victims = Vec::new();
        let mut sweeps = self.ring.len().saturating_mul(2);
        while self.bytes + need > self.budget && sweeps > 0 {
            sweeps -= 1;
            let Some(addr) = self.ring.pop_front() else {
                break;
            };
            match self.entries.get_mut(&addr) {
                None => continue, // stale ring slot (invalidated entry)
                Some(e) if e.referenced.load(Ordering::Relaxed) => {
                    e.referenced.store(false, Ordering::Relaxed);
                    self.ring.push_back(addr);
                }
                Some(_) => {
                    let e = self.entries.remove(&addr).expect("checked");
                    self.bytes -= e.cost();
                    victims.push((addr, e));
                }
            }
        }
        victims
    }

    /// Pin a freshly verified payload (clean). The caller has already made
    /// room and charged the EPC.
    pub fn insert(&mut self, addr: CellAddr, data: &[u8], epc: Option<EpcAllocation>) {
        let entry = Entry {
            data: data.to_vec(),
            cap: data.len(),
            dirty: false,
            referenced: AtomicBool::new(true),
            _epc: epc,
        };
        self.bytes += entry.cost();
        if let Some(old) = self.entries.insert(addr, entry) {
            self.bytes -= old.cost();
        } else {
            self.ring.push_back(addr);
        }
    }

    /// Remove and return every entry (drain). Ring and byte count reset.
    pub fn take_all(&mut self) -> Vec<(CellAddr, Entry)> {
        self.ring.clear();
        self.bytes = 0;
        self.entries.drain().collect()
    }

    /// Byte budget of this shard.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Bytes currently pinned.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Entries currently pinned.
    pub fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Bounded, sharded, enclave-resident cell cache.
pub struct CellCache {
    shards: Vec<RwLock<Shard>>,
    /// Pinned bytes across all shards (mirrors the per-shard counts; kept
    /// as an atomic so the obs gauge can be set without sweeping shards).
    resident: AtomicUsize,
    /// Lifetime hit/miss tallies, independent of the obs registry so the
    /// cache can report a ratio even with metrics off.
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CellCache {
    /// Build a cache with `total_bytes` capacity split over the shards;
    /// `None` when `total_bytes` is zero (cache disabled).
    pub fn new(total_bytes: usize) -> Option<CellCache> {
        if total_bytes == 0 {
            return None;
        }
        let per_shard = (total_bytes / SHARDS).max(ENTRY_OVERHEAD + 1);
        let shards = (0..SHARDS)
            .map(|_| {
                RwLock::new(Shard {
                    budget: per_shard,
                    ..Shard::default()
                })
            })
            .collect();
        Some(CellCache {
            shards,
            resident: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    fn index(&self, page: u64) -> usize {
        // Fibonacci hash: consecutive page ids land on different shards.
        (page.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.shards.len()
    }

    /// Exclusively lock the shard covering `page` (any path that may
    /// mutate cached state).
    pub(crate) fn shard(&self, page: u64) -> RwLockWriteGuard<'_, Shard> {
        self.shards[self.index(page)].write()
    }

    /// Lock the shard covering `page` in shared mode (read-only probes:
    /// point-read hits, batched-scan dirtiness checks).
    pub(crate) fn shard_read(&self, page: u64) -> RwLockReadGuard<'_, Shard> {
        self.shards[self.index(page)].read()
    }

    /// Lock the shards covering two pages in index order; the first guard
    /// always covers `a`, the second is `None` when both pages share a
    /// shard.
    pub(crate) fn shard_pair(
        &self,
        a: u64,
        b: u64,
    ) -> (
        RwLockWriteGuard<'_, Shard>,
        Option<RwLockWriteGuard<'_, Shard>>,
    ) {
        let (ia, ib) = (self.index(a), self.index(b));
        if ia == ib {
            (self.shards[ia].write(), None)
        } else if ia < ib {
            let ga = self.shards[ia].write();
            let gb = self.shards[ib].write();
            (ga, Some(gb))
        } else {
            let gb = self.shards[ib].write();
            let ga = self.shards[ia].write();
            (ga, Some(gb))
        }
    }

    /// Number of shards (drain iterates them by index).
    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Exclusively lock shard `i`.
    pub(crate) fn shard_by_index(&self, i: usize) -> RwLockWriteGuard<'_, Shard> {
        self.shards[i].write()
    }

    /// Record pinned-byte movement for the resident gauge.
    pub(crate) fn adjust_resident(&self, before: usize, after: usize) {
        if after >= before {
            self.resident.fetch_add(after - before, Ordering::Relaxed);
        } else {
            self.resident.fetch_sub(before - after, Ordering::Relaxed);
        }
    }

    /// Bytes currently pinned across all shards.
    pub fn resident_bytes(&self) -> usize {
        self.resident.load(Ordering::Relaxed)
    }

    /// Count a hit.
    pub(crate) fn count_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a miss.
    pub(crate) fn count_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Lifetime `(hits, misses)`.
    pub fn hit_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Hit ratio in percent (0 when no accesses yet).
    pub fn hit_ratio_pct(&self) -> u64 {
        let (h, m) = self.hit_stats();
        (h * 100).checked_div(h + m).unwrap_or(0)
    }

    /// Entries pinned across all shards (diagnostic; takes every shard
    /// lock briefly).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether no entries are pinned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The byte cost an entry of `data_len` charges against the budget and
    /// the EPC.
    pub fn entry_cost(data_len: usize) -> usize {
        data_len + ENTRY_OVERHEAD
    }
}

impl std::fmt::Debug for CellCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellCache")
            .field("shards", &self.shards.len())
            .field("resident_bytes", &self.resident_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(page: u64, slot: u16) -> CellAddr {
        CellAddr { page, slot }
    }

    #[test]
    fn zero_capacity_disables() {
        assert!(CellCache::new(0).is_none());
        assert!(CellCache::new(1024).is_some());
    }

    #[test]
    fn fill_hit_and_write_hit_roundtrip() {
        let c = CellCache::new(1 << 20).unwrap();
        let a = addr(7, 3);
        {
            let mut s = c.shard(7);
            assert!(s.get(a).is_none());
            s.insert(a, b"payload", None);
            assert_eq!(s.get(a).unwrap(), b"payload");
            // Fits capacity: absorbed.
            assert!(s.write_hit(a, b"shorter"));
            assert_eq!(s.get(a).unwrap(), b"shorter");
            // Exceeds capacity: refused.
            assert!(!s.write_hit(a, b"way-too-long-for-slot"));
            assert_eq!(s.take_dirty_data(a).unwrap(), b"shorter");
            // Now clean: nothing to take.
            assert!(s.take_dirty_data(a).is_none());
        }
    }

    #[test]
    fn eviction_respects_budget_and_second_chance() {
        let c = CellCache::new(1).unwrap(); // tiny: one entry per shard
        let a1 = addr(1, 0);
        let mut s = c.shard(1);
        let budget = s.budget();
        s.insert(a1, b"x", None);
        assert!(s.bytes() <= budget);
        // Filling a second entry in the same shard must evict the first.
        let a2 = addr(1, 1);
        let victims = s.make_room(CellCache::entry_cost(1));
        assert_eq!(victims.len(), 1);
        assert_eq!(victims[0].0, a1);
        s.insert(a2, b"y", None);
        assert!(s.contains(a2));
        assert!(!s.contains(a1));
    }

    #[test]
    fn invalidated_ring_slots_are_skipped() {
        let c = CellCache::new(1 << 20).unwrap();
        let mut s = c.shard(0);
        let budget = s.budget();
        s.insert(addr(0, 0), b"a", None);
        s.insert(addr(0, 1), b"b", None);
        s.remove(addr(0, 0));
        // Demand the whole budget so both ring slots are swept: the stale
        // slot is skipped, the live one (after its second chance) evicted.
        let victims = s.make_room(budget);
        assert_eq!(victims.len(), 1);
        assert_eq!(victims[0].0, addr(0, 1));
        assert_eq!(s.len(), 0);
        assert_eq!(s.bytes(), 0);
    }

    #[test]
    fn take_all_drains() {
        let c = CellCache::new(1 << 20).unwrap();
        let mut s = c.shard(3);
        s.insert(addr(3, 0), b"a", None);
        s.insert(addr(3, 1), b"b", None);
        assert!(s.write_hit(addr(3, 1), b"B"));
        let all = s.take_all();
        assert_eq!(all.len(), 2);
        assert_eq!(all.iter().filter(|(_, e)| e.dirty).count(), 1);
        assert_eq!(s.len(), 0);
        assert_eq!(s.bytes(), 0);
    }

    #[test]
    fn hit_ratio_accounting() {
        let c = CellCache::new(1 << 20).unwrap();
        c.count_hit();
        c.count_hit();
        c.count_hit();
        c.count_miss();
        assert_eq!(c.hit_stats(), (3, 1));
        assert_eq!(c.hit_ratio_pct(), 75);
    }
}
