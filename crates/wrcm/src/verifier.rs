//! The non-quiescent background verifier (Algorithm 2).
//!
//! A dedicated thread performs one page scan per `verify_every_ops`
//! protected operations, in parallel with routine reads and writes — the
//! deferred, "always running" verification process of §4.1/§6.1. Only the
//! page currently being scanned is locked; the rest of the memory stays
//! fully available, which is the paper's key concurrency argument against
//! MHT root hashes.
//!
//! Verification failures are sticky: the first one poisons the
//! [`VerifiedMemory`], is returned by [`BackgroundVerifier::stop`], and
//! prevents the query portal from endorsing any further results.

use crate::memory::VerifiedMemory;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use veridb_common::Error;

/// Handle for one or more background verification threads.
pub struct BackgroundVerifier {
    handles: Vec<JoinHandle<Option<Error>>>,
    stop_tx: Sender<()>,
}

impl BackgroundVerifier {
    /// Spawn a single verifier over `mem` and wire its tick channel into
    /// the memory's operation counter. One tick = one page scan.
    pub fn spawn(mem: Arc<VerifiedMemory>) -> Self {
        Self::spawn_pool(mem, 1)
    }

    /// Spawn `threads` verifier threads sharing the tick stream — the
    /// paper's §3.3 "multiple verifiers" deployment. Each tick is consumed
    /// by exactly one thread (crossbeam channels are multi-consumer);
    /// partition pass locks keep concurrent scans of one partition
    /// exclusive.
    pub fn spawn_pool(mem: Arc<VerifiedMemory>, threads: usize) -> Self {
        let threads = threads.max(1);
        let (tick_tx, tick_rx): (Sender<()>, Receiver<()>) = unbounded();
        let (stop_tx, stop_rx) = bounded::<()>(threads);
        mem.set_ticker(tick_tx);
        let mut handles = Vec::with_capacity(threads);
        for i in 0..threads {
            let mem = Arc::clone(&mem);
            let tick_rx = tick_rx.clone();
            let stop_rx = stop_rx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("veridb-verifier-{i}"))
                    .spawn(move || {
                        let mut first_failure: Option<Error> = None;
                        loop {
                            crossbeam::channel::select! {
                                recv(stop_rx) -> _ => return first_failure,
                                recv(tick_rx) -> msg => {
                                    if msg.is_err() {
                                        return first_failure;
                                    }
                                    if let Err(e) = mem.scan_step() {
                                        // Poisoning already happened inside
                                        // scan_step; remember the first
                                        // error and keep draining ticks so
                                        // ops don't block.
                                        if first_failure.is_none() {
                                            first_failure = Some(e);
                                        }
                                    }
                                }
                            }
                        }
                    })
                    .expect("spawn verifier thread"),
            );
        }
        BackgroundVerifier { handles, stop_tx }
    }

    /// Stop all threads and return the first verification failure any of
    /// them saw.
    pub fn stop(mut self) -> Option<Error> {
        for _ in 0..self.handles.len() {
            let _ = self.stop_tx.send(());
        }
        let mut first = None;
        for h in self.handles.drain(..) {
            if let Ok(Some(e)) = h.join() {
                if first.is_none() {
                    first = Some(e);
                }
            }
        }
        first
    }
}

impl Drop for BackgroundVerifier {
    fn drop(&mut self) {
        for _ in 0..self.handles.len() {
            let _ = self.stop_tx.send(());
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemConfig;
    use veridb_common::backoff::Backoff;
    use veridb_common::PrfBackend;
    use veridb_enclave::Enclave;

    fn mem(verify_every: u64) -> Arc<VerifiedMemory> {
        let enclave = Enclave::create("verifier-test", 1 << 22, [1u8; 32]);
        VerifiedMemory::new(
            enclave,
            MemConfig {
                page_size: 1024,
                partitions: 2,
                verify_rsws: true,
                verify_metadata: false,
                verify_every_ops: Some(verify_every),
                track_touched_pages: true,
                compact_during_verification: true,
                prf: PrfBackend::SipHash,
                metrics: true,
                workers: 1,
                cell_cache_bytes: 0,
            },
        )
    }

    #[test]
    fn background_verifier_scans_while_ops_run() {
        let m = mem(10);
        let v = BackgroundVerifier::spawn(Arc::clone(&m));
        let page = m.allocate_page();
        let mut addrs = Vec::new();
        for i in 0..20 {
            addrs.push(m.insert_in(page, format!("value-{i}").as_bytes()).unwrap());
        }
        for _ in 0..20 {
            for a in &addrs {
                let _ = m.read(*a).unwrap();
            }
        }
        // Wait (bounded) for the verifier to drain enough ticks to prove it
        // scanned concurrently with the ops above.
        let scanned = Backoff::wait_for(
            || m.metrics().is_some_and(|mm| mm.scan_steps.get() >= 10),
            2_000,
        );
        assert!(scanned, "background verifier made no scan progress");
        assert!(v.stop().is_none(), "honest run must not fail verification");
        assert!(m.poisoned().is_none());
        // And a final synchronous pass also succeeds.
        m.verify_now().unwrap();
    }

    #[test]
    fn background_verifier_catches_tampering() {
        let m = mem(5);
        let page = m.allocate_page();
        let addr = m.insert_in(page, b"honest value").unwrap();
        // Ensure the cell's write is in WS, then tamper behind the
        // protocol's back.
        m.with_page_mut(page, |p| {
            let live = p.live_slot_ids();
            let slot = live[0];
            p.write(slot, b"evil value!!", 999_999).unwrap();
        })
        .unwrap();
        let v = BackgroundVerifier::spawn(Arc::clone(&m));
        // Drive enough ops (on another page) to trigger scans of both
        // partitions and close their epochs.
        let other = m.allocate_page();
        let a2 = m.insert_in(other, b"x").unwrap();
        for _ in 0..200 {
            let _ = m.read(a2);
        }
        // Wait (bounded) for a scan to trip over the forged cell; if the
        // poison never lands the assertions below fail with the same
        // message a fixed sleep would have produced.
        let _ = Backoff::wait_for(|| m.poisoned().is_some(), 2_000);
        let failure = v.stop();
        let poisoned = m.poisoned();
        assert!(
            failure.is_some() || poisoned.is_some(),
            "tampering must be detected by the background verifier"
        );
        assert!(matches!(
            poisoned.or(failure),
            Some(Error::VerificationFailed { .. })
        ));
        let _ = addr;
    }
}

#[cfg(test)]
mod pool_tests {
    use super::*;
    use crate::memory::MemConfig;
    use veridb_common::backoff::Backoff;
    use veridb_common::PrfBackend;
    use veridb_enclave::Enclave;

    fn mem(partitions: usize) -> Arc<VerifiedMemory> {
        let enclave = Enclave::create("pool-test", 1 << 22, [13u8; 32]);
        VerifiedMemory::new(
            enclave,
            MemConfig {
                page_size: 1024,
                partitions,
                verify_rsws: true,
                verify_metadata: false,
                verify_every_ops: Some(5),
                track_touched_pages: true,
                compact_during_verification: true,
                prf: PrfBackend::SipHash,
                metrics: true,
                workers: 1,
                cell_cache_bytes: 0,
            },
        )
    }

    #[test]
    fn verifier_pool_handles_honest_run() {
        let m = mem(8);
        let v = BackgroundVerifier::spawn_pool(Arc::clone(&m), 3);
        let pages: Vec<u64> = (0..8).map(|_| m.allocate_page()).collect();
        let mut addrs = Vec::new();
        for &p in &pages {
            for i in 0..6 {
                addrs.push(m.insert_in(p, format!("v{p}-{i}").as_bytes()).unwrap());
            }
        }
        for _ in 0..50 {
            for a in &addrs {
                let _ = m.read(*a).unwrap();
            }
        }
        let scanned = Backoff::wait_for(
            || m.metrics().is_some_and(|mm| mm.scan_steps.get() >= 50),
            2_000,
        );
        assert!(scanned, "verifier pool made no scan progress");
        assert!(v.stop().is_none());
        m.verify_now().unwrap();
    }

    #[test]
    fn parallel_verify_now_matches_sequential() {
        let m = mem(8);
        let pages: Vec<u64> = (0..8).map(|_| m.allocate_page()).collect();
        for &p in &pages {
            for i in 0..4 {
                m.insert_in(p, format!("{p}:{i}").as_bytes()).unwrap();
            }
        }
        let r = m.verify_now_parallel(4).unwrap();
        assert_eq!(r.pages_processed, 8);
        assert_eq!(r.epochs, vec![1; 8]);
        // Second parallel pass over (mostly untouched) pages.
        let r = m.verify_now_parallel(8).unwrap();
        assert_eq!(r.epochs, vec![2; 8]);
    }

    #[test]
    fn parallel_verify_detects_tampering() {
        let m = mem(4);
        let p = m.allocate_page();
        let a = m.insert_in(p, b"honest").unwrap();
        crate::tamper::overwrite_cell(&m, a, b"forged").unwrap();
        assert!(m.verify_now_parallel(4).is_err());
        assert!(m.poisoned().is_some());
    }

    #[test]
    fn concurrent_verify_now_calls_are_safe() {
        let m = mem(4);
        let p = m.allocate_page();
        let addrs: Vec<_> = (0..10)
            .map(|i| m.insert_in(p, format!("x{i}").as_bytes()).unwrap())
            .collect();
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    for _ in 0..5 {
                        m.verify_now_parallel(2).unwrap();
                    }
                });
            }
            s.spawn(|| {
                for _ in 0..100 {
                    for a in &addrs {
                        let _ = m.read(*a);
                    }
                }
            });
        });
        assert!(m.poisoned().is_none());
    }
}
