//! Thread-local digest deltas and per-worker timestamp blocks.
//!
//! The RS/WS digests are XOR-folds, which commute and associate: the
//! multiset equality `h(RS) = h(WS)` that Algorithm 2 checks is
//! order-independent, so a worker may accumulate its folds privately and
//! merge them into [`PartitionState`] later — once per morsel instead of
//! once per protected op. This is what turns the morsel-parallel scan
//! path shared-nothing: the hot loop touches only its page latch and its
//! own [`DeltaSlot`], never a partition mutex.
//!
//! Two invariants make the deferral sound (see DESIGN.md §14):
//!
//! 1. **Fold-before-unlatch.** An op folds into its slot *before*
//!    releasing the page lock, and captures the page's `scan_epoch` under
//!    that same lock. The verification scan processes a page under its
//!    page lock too, so any op that observed `scan_epoch == epoch`
//!    happened-before the scan of that page — and the epoch close drains
//!    every registered slot after the no-pending-pages check, so all
//!    `cur`-destined elements are present when `h(RS) = h(WS)` is tested.
//! 2. **Routing stability.** A bucket is keyed by the captured
//!    `scan_epoch`, and [`PartitionState::pair_for`] routes by
//!    `scan_epoch > epoch`. An epoch close promotes `next` to `cur`
//!    exactly as it bumps `epoch`, so a deferred merge lands in the same
//!    accumulator the direct fold would have reached.
//!
//! Timestamps are drawn in blocks ([`TsAlloc`], 1024 at a time) from the
//! enclave's global counter so the counter's cache line stops
//! ping-ponging between workers. Blocks are disjoint, so tuple
//! `(addr, ts)` uniqueness — all the replay argument needs — is
//! preserved; an abandoned block remainder is harmless because those
//! timestamps are never folded into any digest and never re-issued.

use crate::digest::SetDigest;
use crate::rsws::PartitionState;
use parking_lot::Mutex;
use veridb_common::obs::Metrics;
use veridb_enclave::Enclave;

/// Timestamps drawn from the global counter per block refill.
pub(crate) const TS_BLOCK: u64 = 1024;

/// Private RS/WS accumulators for one `(partition, scan_epoch)` key.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct DeltaBucket {
    /// XOR accumulator destined for the partition's `h(RS)`.
    pub rs: SetDigest,
    /// XOR accumulator destined for the partition's `h(WS)`.
    pub ws: SetDigest,
    /// Metadata-digest accumulators (zero unless `verify_metadata`).
    pub meta_rs: SetDigest,
    /// See [`Self::meta_rs`].
    pub meta_ws: SetDigest,
    /// Protected ops folded here (feeds `ops_since_close` on merge).
    pub ops: u64,
}

/// One worker's pending digest folds, keyed by `(partition, scan_epoch)`.
///
/// The slot's mutex is effectively uncontended — only the owning worker
/// folds into it, and only a merge or an epoch close drains it — but it
/// is what makes the drained folds visible across threads. A handful of
/// live keys is typical (one partition per page the morsel spans, times
/// at most two scan epochs), so a linear-scanned `Vec` beats a map.
#[derive(Debug, Default)]
pub(crate) struct DeltaSlot {
    buckets: Mutex<Vec<((usize, u64), DeltaBucket)>>,
}

impl DeltaSlot {
    /// Fold one op's digest contributions into the `(pi, se)` bucket.
    pub fn fold(
        &self,
        pi: usize,
        se: u64,
        rs: &SetDigest,
        ws: &SetDigest,
        meta: Option<(&SetDigest, &SetDigest)>,
        ops: u64,
    ) {
        let mut buckets = self.buckets.lock();
        let key = (pi, se);
        let idx = match buckets.iter().position(|(k, _)| *k == key) {
            Some(i) => i,
            None => {
                buckets.push((key, DeltaBucket::default()));
                buckets.len() - 1
            }
        };
        let b = &mut buckets[idx].1;
        b.rs.fold(rs);
        b.ws.fold(ws);
        if let Some((mrs, mws)) = meta {
            b.meta_rs.fold(mrs);
            b.meta_ws.fold(mws);
        }
        b.ops += ops;
    }

    /// Remove and return every bucket belonging to partition `pi`, as
    /// `(scan_epoch, bucket)`. The slot lock is released before return.
    pub fn drain_partition(&self, pi: usize) -> Vec<(u64, DeltaBucket)> {
        let mut buckets = self.buckets.lock();
        let mut out = Vec::new();
        buckets.retain(|&((p, se), b)| {
            if p == pi {
                out.push((se, b));
                false
            } else {
                true
            }
        });
        out
    }

    /// Partition indices with pending buckets, sorted and deduplicated.
    pub fn partitions(&self) -> Vec<usize> {
        let buckets = self.buckets.lock();
        let mut v: Vec<usize> = buckets.iter().map(|((p, _), _)| *p).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Whether no folds are pending.
    pub fn is_empty(&self) -> bool {
        self.buckets.lock().is_empty()
    }
}

/// Apply one drained bucket to a partition, exactly as the direct folds
/// would have: metadata pair first, then the record pair, both routed by
/// the captured `scan_epoch`.
pub(crate) fn apply_bucket(part: &mut PartitionState, se: u64, b: &DeltaBucket) {
    if !(b.meta_rs.is_zero() && b.meta_ws.is_zero()) {
        let mp = part.meta_pair_for(se);
        mp.rs.fold(&b.meta_rs);
        mp.ws.fold(&b.meta_ws);
    }
    let pair = part.pair_for(se);
    pair.rs.fold(&b.rs);
    pair.ws.fold(&b.ws);
    part.ops_since_close += b.ops;
}

/// Per-worker timestamp allocator: refills in blocks of [`TS_BLOCK`]
/// from the enclave's global counter, hands out consecutive runs.
#[derive(Debug, Default)]
pub(crate) struct TsAlloc {
    /// Next unissued timestamp of the current block.
    next: u64,
    /// One past the last timestamp of the current block.
    end: u64,
}

impl TsAlloc {
    /// Draw `n` consecutive timestamps, refilling from the global counter
    /// when the current block cannot satisfy the run. The skipped
    /// remainder of an abandoned block is never folded and never
    /// re-issued, so global timestamp uniqueness holds.
    pub fn take(&mut self, n: u64, enclave: &Enclave, metrics: Option<&Metrics>) -> u64 {
        if self.end - self.next < n {
            let block = n.max(TS_BLOCK);
            self.next = enclave.next_timestamp_block(block);
            self.end = self.next + block;
            if let Some(m) = metrics {
                m.ts_blocks_allocated.inc();
            }
        }
        let t = self.next;
        self.next += n;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn d(b: u8) -> SetDigest {
        SetDigest([b; 32])
    }

    fn test_enclave() -> Enclave {
        Enclave::create("delta-test", 1 << 22, [6u8; 32])
    }

    #[test]
    fn slot_folds_accumulate_per_key() {
        let slot = DeltaSlot::default();
        slot.fold(0, 0, &d(1), &d(2), None, 1);
        slot.fold(0, 0, &d(4), &d(8), None, 2);
        slot.fold(1, 0, &d(16), &d(32), None, 1);
        assert_eq!(slot.partitions(), vec![0, 1]);
        let b0 = slot.drain_partition(0);
        assert_eq!(b0.len(), 1);
        assert_eq!(b0[0].0, 0);
        assert_eq!(b0[0].1.rs, d(1 ^ 4));
        assert_eq!(b0[0].1.ws, d(2 ^ 8));
        assert_eq!(b0[0].1.ops, 3);
        assert!(!slot.is_empty());
        let b1 = slot.drain_partition(1);
        assert_eq!(b1[0].1.rs, d(16));
        assert!(slot.is_empty());
    }

    #[test]
    fn buckets_key_on_scan_epoch() {
        let slot = DeltaSlot::default();
        slot.fold(3, 0, &d(1), &d(1), None, 1);
        slot.fold(3, 1, &d(2), &d(2), None, 1);
        let drained = slot.drain_partition(3);
        assert_eq!(drained.len(), 2, "distinct scan epochs stay separate");
    }

    #[test]
    fn apply_bucket_routes_like_pair_for() {
        // se == epoch → cur; se == epoch + 1 → next; metadata folds only
        // when the bucket carries any.
        let mut part = PartitionState::new();
        let mut b = DeltaBucket::default();
        b.rs.fold(&d(1));
        b.ws.fold(&d(2));
        b.ops = 5;
        apply_bucket(&mut part, 0, &b);
        assert_eq!(part.cur.rs, d(1));
        assert_eq!(part.cur.ws, d(2));
        assert!(part.next.rs.is_zero());
        assert_eq!(part.ops_since_close, 5);

        let mut b2 = DeltaBucket::default();
        b2.ws.fold(&d(4));
        b2.meta_rs.fold(&d(8));
        b2.meta_ws.fold(&d(8));
        apply_bucket(&mut part, 1, &b2);
        assert_eq!(part.next.ws, d(4));
        assert_eq!(part.meta_next.rs, d(8));
        assert!(part.meta_cur.rs.is_zero());
    }

    #[test]
    fn deferred_merge_lands_where_direct_fold_would_after_close() {
        // An op captured se = 1 (its page already scanned). Folded
        // directly before the close it reaches `next`, which the close
        // promotes to `cur`. Merged *after* the close (epoch now 1,
        // se == epoch) it must land in `cur` — the same accumulator.
        let mut direct = PartitionState::new();
        direct.pair_for(1).rs.fold(&d(7));
        direct.pair_for(1).ws.fold(&d(9));
        direct.close_epoch();

        let mut deferred = PartitionState::new();
        deferred.close_epoch();
        let mut b = DeltaBucket::default();
        b.rs.fold(&d(7));
        b.ws.fold(&d(9));
        apply_bucket(&mut deferred, 1, &b);

        assert_eq!(direct.cur, deferred.cur);
        assert_eq!(direct.next, deferred.next);
    }

    #[test]
    fn ts_alloc_issues_disjoint_monotone_runs() {
        let enclave = test_enclave();
        let mut a = TsAlloc::default();
        let mut b = TsAlloc::default();
        let ra = a.take(3, &enclave, None); // block refill for a
        let rb = b.take(3, &enclave, None); // block refill for b
        let ra2 = a.take(2, &enclave, None); // continues a's block
        assert_eq!(ra2, ra + 3);
        // Blocks are disjoint: every timestamp either side hands out is
        // unique across allocators.
        let hand_a: Vec<u64> = (ra..ra + 5).collect();
        let hand_b: Vec<u64> = (rb..rb + 3).collect();
        for t in &hand_a {
            assert!(!hand_b.contains(t), "overlap at {t}");
        }
    }

    #[test]
    fn ts_alloc_oversized_run_gets_dedicated_block() {
        let enclave = test_enclave();
        let mut a = TsAlloc::default();
        let base = a.take(TS_BLOCK + 10, &enclave, None);
        let nxt = a.take(1, &enclave, None);
        // The oversized run consumed its whole dedicated block; the next
        // take refills.
        assert!(nxt >= base + TS_BLOCK + 10);
    }

    // Satellite regression: random interleaved protected-op folds applied
    // serially to a partition vs. sharded across N worker slots (in a
    // seeded interleaving) and then merged must produce byte-identical
    // digest pairs — the commutativity the shared-nothing path rests on.
    proptest! {
        #[test]
        fn sharded_delta_merge_matches_serial_fold(
            ops in proptest::collection::vec(
                (0usize..4, 0u64..2, any::<[u8; 32]>(), any::<[u8; 32]>(), any::<bool>()),
                1..64,
            ),
            workers in 1usize..5,
        ) {
            let mut serial: Vec<PartitionState> =
                (0..4).map(|_| PartitionState::new()).collect();
            let slots: Vec<DeltaSlot> =
                (0..workers).map(|_| DeltaSlot::default()).collect();

            for (i, (pi, se, rs, ws, with_meta)) in ops.iter().enumerate() {
                let rs = SetDigest(*rs);
                let ws = SetDigest(*ws);
                // Serial reference: direct fold under the partition lock.
                let part = &mut serial[*pi];
                if *with_meta {
                    let mp = part.meta_pair_for(*se);
                    mp.rs.fold(&rs);
                    mp.ws.fold(&ws);
                }
                let pair = part.pair_for(*se);
                pair.rs.fold(&rs);
                pair.ws.fold(&ws);
                part.ops_since_close += 1;
                // Sharded: the same op lands in worker (i mod workers)'s
                // thread-local slot.
                slots[i % workers].fold(
                    *pi,
                    *se,
                    &rs,
                    &ws,
                    with_meta.then_some((&rs, &ws)),
                    1,
                );
            }

            let mut merged: Vec<PartitionState> =
                (0..4).map(|_| PartitionState::new()).collect();
            // Merge in an order unrelated to execution order.
            for slot in slots.iter().rev() {
                for pi in slot.partitions() {
                    for (se, b) in slot.drain_partition(pi) {
                        apply_bucket(&mut merged[pi], se, &b);
                    }
                }
            }

            for (s, m) in serial.iter().zip(&merged) {
                prop_assert_eq!(s.cur, m.cur);
                prop_assert_eq!(s.next, m.next);
                prop_assert_eq!(s.meta_cur, m.meta_cur);
                prop_assert_eq!(s.meta_next, m.meta_next);
                prop_assert_eq!(s.ops_since_close, m.ops_since_close);
            }
        }
    }
}
