//! Write-read consistent memory (§4.1 of the VeriDB paper).
//!
//! This crate is the foundation of VeriDB's verifiability: a region of
//! *untrusted* memory whose integrity is enforced by an offline memory
//! checker running inside the (simulated) enclave.
//!
//! # Protocol
//!
//! The checker is Blum et al.'s offline memory checking, in the
//! timestamped, non-quiescent form used by Concerto:
//!
//! - Every memory **cell** stores `(data, ts)` where `ts` is a timestamp
//!   drawn from the enclave's strictly increasing counter.
//! - The enclave keeps two XOR-aggregated digests per partition:
//!   `h(RS)` over all reads and `h(WS)` over all writes, where each
//!   element's contribution is `PRF_k(addr ‖ kind ‖ ts ‖ data)`.
//! - A protected **Read** folds the observed `(addr, data, ts)` into
//!   `h(RS)`, then *virtually writes back* the same data with a fresh
//!   timestamp, folding `(addr, data, ts')` into `h(WS)` (Algorithm 1).
//! - A protected **Write** folds the overwritten `(addr, old, ts)` into
//!   `h(RS)` and the new `(addr, new, ts')` into `h(WS)`.
//! - **Verification** (Algorithm 2) scans memory page by page, folding each
//!   live cell into the closing epoch's `h(RS)` and the opening epoch's
//!   `h(WS)`; at the end of a pass `h(RS) = h(WS)` must hold for the closed
//!   epoch, or the untrusted memory was modified behind the enclave's back.
//!
//! The timestamps are essential and *not* optional bookkeeping: without
//! them, a host that reverts a cell to an earlier value produces a read
//! that XOR-cancels against the earlier epoch's write and evades detection.
//! The paper's abridged Algorithm 1 omits them for space; Concerto and Blum
//! (both cited by the paper as the actual protocol) require them, and the
//! attack test in [`tamper`] demonstrates the replay being caught.
//!
//! # Paper optimizations implemented here (§4.3)
//!
//! - **Metadata exclusion**: slot-directory maintenance can be excluded
//!   from the digests (`verify_metadata = false`), halving digest updates.
//! - **Compaction during verification**: deletes leave holes; the
//!   verification scan compacts pages as a side task.
//! - **Touched-page tracking**: the enclave remembers which pages were
//!   touched since their last scan and carries an in-enclave cached digest
//!   for untouched pages instead of re-reading them.
//! - **Multiple RSWSs**: pages are partitioned across N digest pairs, each
//!   with its own lock, removing the global contention point.

pub mod cache;
pub mod delta;
pub mod digest;
pub mod memory;
pub mod page;
pub mod prf;
pub mod rsws;
pub mod tamper;
pub mod verifier;

pub use cache::CellCache;
pub use digest::SetDigest;
pub use memory::{CellAddr, DeltaHandle, MemConfig, ReadBatch, VerifiedMemory, VerifyReport};
pub use page::{RawPage, SlotId, PAGE_HEADER_BYTES};
pub use prf::{PrfEngine, SipHash24};
pub use rsws::{PartitionState, RswsPair};
pub use verifier::BackgroundVerifier;
