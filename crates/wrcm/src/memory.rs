//! The write-read consistent memory itself.
//!
//! [`VerifiedMemory`] is the meeting point of the two worlds:
//!
//! - **Untrusted state**: the [`RawPage`]s (and a free-space hint map).
//!   The host may mutate these arbitrarily — see [`crate::tamper`].
//! - **Enclave state**: per-partition [`PartitionState`] (digest pairs and
//!   per-page metadata), the PRF key, and the timestamp counter. These are
//!   only reachable through the protected operations below, which stand in
//!   for the SGX ECall surface of the paper's Algorithm 1/3.
//!
//! Every protected operation folds its reads into `h(RS)` and its writes
//! into `h(WS)`; the deferred verifier ([`crate::verifier`]) closes epochs
//! by scanning pages and checking `h(RS) = h(WS)` per partition.
//!
//! Locking protocol: **cache shard → page mutex → partition mutex →
//! delta slot**, everywhere; the scan path takes no shard locks (it
//! starts at the page mutex). Shard locks are reader-writer: read-only
//! hits and the clean batched-scan fast path take them in shared mode,
//! anything that mutates cached state takes them exclusively. Shard
//! locks, when two are needed (cross-page moves), are taken in
//! shard-index order; partition mutexes, when two are needed
//! (cross-partition moves), are taken in index order. The shared-nothing
//! scan path ([`Self::read_page_batch_delta`]) touches only its page
//! latch and its own [`DeltaHandle`] slot — never a partition mutex;
//! deltas merge under `partition → slot`, and the epoch close drains
//! every registered slot in that same order.

use crate::cache::{CellCache, Shard};
use crate::delta::{self, DeltaSlot, TsAlloc};
use crate::digest::SetDigest;
use crate::page::{RawPage, SlotId};
use crate::prf::{PrfEngine, KIND_DATA, KIND_GROUP, KIND_META};
use crate::rsws::{PageMeta, PageScanState, PartitionState};
use crossbeam::channel::Sender;
use crossbeam::queue::SegQueue;
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use veridb_common::obs::Metrics;
use veridb_common::{Error, Result, VeriDbConfig};
use veridb_enclave::Enclave;

/// Address of one cell in verified memory: `(page, slot)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellAddr {
    /// Page id.
    pub page: u64,
    /// Slot within the page.
    pub slot: SlotId,
}

impl CellAddr {
    /// The flat protocol address fed to the PRF. Page ids stay below
    /// 2^48 so this never collides.
    pub fn proto(&self) -> u64 {
        (self.page << 16) | self.slot as u64
    }
}

impl std::fmt::Display for CellAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.page, self.slot)
    }
}

/// The subset of [`VeriDbConfig`] the memory layer consumes.
#[derive(Debug, Clone)]
pub struct MemConfig {
    /// Page size in bytes.
    pub page_size: usize,
    /// Number of RSWS partitions.
    pub partitions: usize,
    /// Maintain RS/WS digests at all (off = the evaluation's Baseline).
    pub verify_rsws: bool,
    /// Fold slot-directory maintenance into (separate) metadata digests.
    pub verify_metadata: bool,
    /// Background scan cadence (one page per N ops); `None` = manual only.
    pub verify_every_ops: Option<u64>,
    /// Skip re-reading untouched pages during scans (use cached digests).
    pub track_touched_pages: bool,
    /// Compact pages during the verification scan instead of eagerly on
    /// every delete.
    pub compact_during_verification: bool,
    /// PRF backend.
    pub prf: veridb_common::PrfBackend,
    /// Update the `veridb-obs` metric registry on protected operations.
    /// Off = the hot path pays only this branch.
    pub metrics: bool,
    /// Concurrent verifiers for synchronous verification passes
    /// ([`VerifiedMemory::verify_now`]); each verifier claims disjoint
    /// partitions (§3.3's "multiple verifiers"). Clamped to `>= 1`.
    pub workers: usize,
    /// Capacity in bytes of the enclave-resident verified cell cache
    /// ([`crate::cache`]); `0` disables it. Counts against the EPC budget.
    pub cell_cache_bytes: usize,
}

impl MemConfig {
    /// Extract the memory-layer knobs from a full VeriDB config.
    pub fn from_config(cfg: &VeriDbConfig) -> Self {
        MemConfig {
            page_size: cfg.page_size,
            partitions: cfg.rsws_partitions,
            verify_rsws: cfg.verify_rsws,
            verify_metadata: cfg.verify_metadata,
            verify_every_ops: cfg.verify_every_ops,
            track_touched_pages: cfg.track_touched_pages,
            compact_during_verification: cfg.compact_during_verification,
            prf: cfg.prf,
            metrics: cfg.metrics,
            workers: cfg.workers,
            cell_cache_bytes: cfg.cell_cache_bytes,
        }
    }
}

/// Summary of a full verification pass ([`VerifiedMemory::verify_now`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Pages processed (full reads + cached-digest carries).
    pub pages_processed: u64,
    /// Pages whose cells were actually re-read (touched since last scan).
    pub pages_read: u64,
    /// Epoch number of each partition after the pass.
    pub epochs: Vec<u64>,
    /// Logical state fingerprint: XOR of `sha256("cell-fp" ‖ payload)`
    /// over every live cell. Keyless and timestamp-free by design, so it
    /// is *not* a tamper defense (the PRF digests are) — it is an
    /// equality witness between two verified memories that should hold
    /// the same records, e.g. the live state at seal time and the state a
    /// crash recovery rebuilt by replay.
    pub fingerprint: [u8; 32],
}

/// Reusable scratch buffer for [`VerifiedMemory::read_page_batch`]: cell
/// payloads are packed back-to-back into one flat allocation instead of
/// one fresh `Vec<u8>` per cell, and the buffer's capacity survives across
/// batches. Entries appear in request order; requested slots that are dead
/// (tombstoned or out of range) are skipped, not errors — callers detect
/// them by comparing the returned slot ids against their request.
#[derive(Debug, Default)]
pub struct ReadBatch {
    buf: Vec<u8>,
    /// `(slot, start, end)` of each cell actually read, into `buf`.
    cells: Vec<(SlotId, u32, u32)>,
}

impl ReadBatch {
    /// Empty scratch buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop all entries, keeping the allocations.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.cells.clear();
    }

    /// Number of cells read into the batch.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the batch holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The `i`-th cell read, as `(slot, payload)`.
    pub fn get(&self, i: usize) -> Option<(SlotId, &[u8])> {
        let &(slot, start, end) = self.cells.get(i)?;
        Some((slot, &self.buf[start as usize..end as usize]))
    }

    /// Iterate the cells in request order.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &[u8])> + '_ {
        self.cells
            .iter()
            .map(|&(slot, start, end)| (slot, &self.buf[start as usize..end as usize]))
    }

    fn push(&mut self, slot: SlotId, data: &[u8]) {
        let start = self.buf.len() as u32;
        self.buf.extend_from_slice(data);
        self.cells.push((slot, start, self.buf.len() as u32));
    }
}

/// Registry entry for one page: the untrusted bytes plus the scan state
/// protected ops and the verifier coordinate through without the
/// partition mutex.
#[derive(Clone)]
struct PageEntry {
    raw: Arc<Mutex<RawPage>>,
    scan: Arc<PageScanState>,
}

/// Write-read consistent memory: untrusted pages + enclave digest state.
pub struct VerifiedMemory {
    enclave: Enclave,
    cfg: MemConfig,
    prf: PrfEngine,
    /// Enclave-resident partition states (digests + page metadata).
    parts: Vec<Mutex<PartitionState>>,
    /// Untrusted memory: the pages themselves, each with its shared scan
    /// state alongside.
    pages: RwLock<HashMap<u64, PageEntry>>,
    next_page_id: AtomicU64,
    /// Ids of released (empty) pages available for reuse. Pages stay
    /// registered — deregistering would strand their enclave metadata and
    /// tombstone digests — they are simply handed out again by
    /// [`Self::allocate_page`] before fresh ids are minted. Lock-free so
    /// release/allocate never serialize against each other; the per-page
    /// `freed` flag keeps double releases from pushing duplicate ids.
    free_pages: SegQueue<u64>,
    /// `veridb-obs` registry (shared with the enclave); `None` when the
    /// config turns metrics off, so the hot path pays a single branch.
    metrics: Option<Arc<Metrics>>,
    /// Operation counter driving the background-verifier cadence.
    ops: AtomicU64,
    /// Tick channel to the background verifier, if one is attached.
    ticker: RwLock<Option<Sender<()>>>,
    /// Round-robin scan cursor (partition index) for the incremental
    /// background scanner. A plain atomic: the wrap at `usize::MAX` skews
    /// the round-robin once per 2^64 steps, which is harmless.
    scan_cursor: AtomicUsize,
    /// Live thread-local delta slots ([`DeltaHandle`]); the epoch close
    /// drains these after its no-pending-pages check so every deferred
    /// fold destined for the closing epoch is reconciled.
    delta_slots: Mutex<Vec<Arc<DeltaSlot>>>,
    /// Per-partition pass locks: a partition's scan pass (page processing
    /// up to and including the epoch close) is exclusive, so concurrent
    /// verifiers (§3.3's "multiple verifiers … for disjoint sections")
    /// never double-close an epoch.
    scan_locks: Vec<Mutex<()>>,
    /// First verification failure observed, if any. Results must not be
    /// endorsed once this is set.
    poisoned: Mutex<Option<Error>>,
    /// Enclave-resident verified cell cache ([`crate::cache`]); `None`
    /// when the configured capacity is zero, so the disabled hot path pays
    /// a single branch. Lock order: cache shard → page → partition.
    cache: Option<CellCache>,
}

impl VerifiedMemory {
    /// Create a verified memory bound to `enclave`.
    pub fn new(enclave: Enclave, cfg: MemConfig) -> Arc<Self> {
        let prf = PrfEngine::new(cfg.prf, enclave.derive_key("rsws-prf"));
        let nparts = cfg.partitions.max(1);
        let parts = (0..nparts)
            .map(|_| Mutex::new(PartitionState::new()))
            .collect();
        let scan_locks = (0..nparts).map(|_| Mutex::new(())).collect();
        let metrics = cfg.metrics.then(|| Arc::clone(enclave.metrics()));
        let cache = CellCache::new(cfg.cell_cache_bytes);
        Arc::new(VerifiedMemory {
            enclave,
            cfg,
            prf,
            parts,
            pages: RwLock::new(HashMap::new()),
            next_page_id: AtomicU64::new(1),
            free_pages: SegQueue::new(),
            metrics,
            ops: AtomicU64::new(0),
            ticker: RwLock::new(None),
            scan_cursor: AtomicUsize::new(0),
            delta_slots: Mutex::new(Vec::new()),
            scan_locks,
            poisoned: Mutex::new(None),
            cache,
        })
    }

    /// Create from a full VeriDB configuration.
    pub fn from_config(enclave: Enclave, cfg: &VeriDbConfig) -> Arc<Self> {
        Self::new(enclave, MemConfig::from_config(cfg))
    }

    /// The enclave backing this memory.
    pub fn enclave(&self) -> &Enclave {
        &self.enclave
    }

    /// The memory-layer configuration.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Number of RSWS partitions.
    pub fn partition_count(&self) -> usize {
        self.parts.len()
    }

    /// Number of registered pages.
    pub fn page_count(&self) -> usize {
        self.pages.read().len()
    }

    /// Ids of all registered pages (snapshot).
    pub fn page_ids(&self) -> Vec<u64> {
        self.pages.read().keys().copied().collect()
    }

    /// The first verification failure observed, if any.
    pub fn poisoned(&self) -> Option<Error> {
        self.poisoned.lock().clone()
    }

    /// The `veridb-obs` registry this memory updates, if metrics are on.
    pub fn metrics(&self) -> Option<&Arc<Metrics>> {
        self.metrics.as_ref()
    }

    /// Live verification lag: `(epoch, ops_since_last_close)` for each
    /// partition. One partition-lock acquisition each — a diagnostics
    /// call, not a hot-path one.
    pub fn verification_lag(&self) -> Vec<(u64, u64)> {
        self.parts
            .iter()
            .map(|p| {
                let part = p.lock();
                (part.epoch, part.ops_since_close)
            })
            .collect()
    }

    /// Pages currently parked on the free list.
    pub fn free_page_count(&self) -> usize {
        self.free_pages.len()
    }

    #[inline]
    fn met(&self) -> Option<&Metrics> {
        self.metrics.as_deref()
    }

    /// Attach the tick channel of a background verifier.
    pub fn set_ticker(&self, tx: Sender<()>) {
        *self.ticker.write() = Some(tx);
    }

    fn part_index(&self, page: u64) -> usize {
        (page % self.parts.len() as u64) as usize
    }

    fn get_page(&self, page: u64) -> Result<Arc<Mutex<RawPage>>> {
        self.pages
            .read()
            .get(&page)
            .map(|e| Arc::clone(&e.raw))
            .ok_or(Error::PageNotFound(page))
    }

    fn get_entry(&self, page: u64) -> Result<PageEntry> {
        self.pages
            .read()
            .get(&page)
            .cloned()
            .ok_or(Error::PageNotFound(page))
    }

    /// Lock partition `pi`, charging blocked time to
    /// `wrcm.part_lock_wait_ns` when the fast path misses.
    fn lock_part(&self, pi: usize) -> parking_lot::MutexGuard<'_, PartitionState> {
        if let Some(part) = self.parts[pi].try_lock() {
            return part;
        }
        let started = std::time::Instant::now();
        let part = self.parts[pi].lock();
        if let Some(m) = self.met() {
            m.part_lock_wait_ns.add(started.elapsed().as_nanos() as u64);
        }
        part
    }

    /// Count one operation toward the verifier cadence; emit a tick when
    /// the threshold is crossed.
    fn op_tick(&self) {
        self.op_tick_n(1);
    }

    /// Count `n` operations at once (batched paths pay one atomic update
    /// per batch, not per cell). Emits one tick per threshold crossing.
    fn op_tick_n(&self, n: u64) {
        let Some(every) = self.cfg.verify_every_ops else {
            return;
        };
        if n == 0 {
            return;
        }
        let after = self.ops.fetch_add(n, Ordering::Relaxed) + n;
        let crossings = after / every - (after - n) / every;
        if crossings > 0 {
            if let Some(tx) = self.ticker.read().as_ref() {
                for _ in 0..crossings {
                    let _ = tx.try_send(());
                }
            }
        }
    }

    // ---- page lifecycle ---------------------------------------------------

    /// Register a fresh, empty page (the storage layer's `Register`
    /// interface, §4.2), or hand back a previously released one. Returns
    /// its id.
    pub fn allocate_page(&self) -> u64 {
        while let Some(id) = self.free_pages.pop() {
            // A released page is empty but still registered (its enclave
            // metadata and tombstone digests stay live), so reuse is just
            // handing the id back out.
            let Ok(entry) = self.get_entry(id) else {
                continue;
            };
            entry.scan.unmark_freed();
            if let Some(m) = self.met() {
                m.pages_reused.inc();
            }
            return id;
        }
        let id = self.next_page_id.fetch_add(1, Ordering::Relaxed);
        let raw = Arc::new(Mutex::new(RawPage::new(id, self.cfg.page_size)));
        let scan = Arc::new(PageScanState::new(0));
        self.pages.write().insert(
            id,
            PageEntry {
                raw,
                scan: Arc::clone(&scan),
            },
        );
        if self.cfg.verify_rsws {
            let pi = self.part_index(id);
            let mut part = self.parts[pi].lock();
            // ~64 bytes of enclave-resident metadata per page (scan epoch,
            // touched bit, cached digests) — the §4.3 in-enclave tracking
            // structure, accounted against the EPC budget.
            let epc = self.enclave.epc().allocate(64).ok();
            scan.set_scan_epoch(part.epoch);
            part.pages.insert(id, PageMeta::with_scan(scan, epc));
        }
        if let Some(m) = self.met() {
            m.pages_allocated.inc();
        }
        id
    }

    /// Return an **empty** page to the free list so a later
    /// [`Self::allocate_page`] reuses it instead of minting a new id.
    /// Scratch-page consumers (e.g. spill buffers) call this after
    /// deleting their cells; without it, every spilling query would grow
    /// [`Self::page_count`] forever.
    ///
    /// The page stays registered and keeps participating in verification
    /// scans — deregistering would strand its outstanding tombstone
    /// digests and unbalance the metadata sets. Fails with
    /// `InvalidArgument` if live cells remain; releasing an already-free
    /// page is a no-op.
    pub fn release_page(&self, page_id: u64) -> Result<()> {
        let entry = self.get_entry(page_id)?;
        let page = entry.raw.lock();
        if page.iter_live().next().is_some() {
            return Err(Error::InvalidArgument(format!(
                "release_page({page_id}): page has live cells"
            )));
        }
        drop(page);
        // The freed CAS is the dedup guard: only the releaser that wins it
        // pushes the id, so a double release never double-lists the page.
        if entry.scan.try_mark_freed() {
            self.free_pages.push(page_id);
            if let Some(m) = self.met() {
                m.pages_released.inc();
            }
        }
        Ok(())
    }

    /// Free-space hint for allocation decisions (untrusted metadata; an
    /// adversarial answer can only cause routine `PageFull` errors, never
    /// an integrity violation).
    pub fn page_free_space(&self, page: u64) -> Result<usize> {
        let p = self.get_page(page)?;
        let g = p.lock();
        Ok(g.contiguous_free()
            .saturating_sub(crate::page::SLOT_ENTRY_BYTES + crate::page::CELL_HEADER_BYTES))
    }

    // ---- enclave-resident cell cache (see crate::cache) --------------------

    /// The cell cache, if enabled.
    pub fn cell_cache(&self) -> Option<&CellCache> {
        self.cache.as_ref()
    }

    /// Refresh the cache's hit-ratio gauge (cheap; called on misses and
    /// drains so hits stay a single counter bump).
    fn cache_gauges(&self, cache: &CellCache) {
        if let Some(m) = self.met() {
            m.cache_hit_ratio_pct.set(cache.hit_ratio_pct());
            m.cache_resident_bytes.set(cache.resident_bytes() as u64);
        }
    }

    /// Write a dirty payload back to the host copy: a normal protected
    /// write, whose RS fold consumes the outstanding element the host copy
    /// carries. Called with the covering shard lock held. A failure means
    /// the host copy no longer matches the outstanding element (tampering
    /// or forged page state); the error propagates, and the unconsumed
    /// element unbalances the digests at the next epoch close regardless.
    fn cache_write_back(&self, addr: CellAddr, data: &[u8]) -> Result<()> {
        if let Some(m) = self.met() {
            m.cache_writebacks.inc();
        }
        self.write_uncached(addr, data)
    }

    /// Pin a freshly verified payload in `shard`, evicting (and writing
    /// back dirty) entries as needed. Oversized payloads are simply not
    /// cached. The shard lock is held by the caller.
    fn cache_fill(
        &self,
        cache: &CellCache,
        shard: &mut Shard,
        addr: CellAddr,
        data: &[u8],
    ) -> Result<()> {
        let cost = CellCache::entry_cost(data.len());
        if cost > shard.budget() {
            return Ok(());
        }
        let before = shard.bytes();
        let victims = shard.make_room(cost);
        if !victims.is_empty() {
            if let Some(m) = self.met() {
                m.cache_evictions.add(victims.len() as u64);
            }
            for (vaddr, ventry) in &victims {
                if ventry.dirty {
                    self.cache_write_back(*vaddr, &ventry.data)?;
                }
            }
        }
        // Each pinned entry charges the simulated EPC; if the budget is
        // exhausted under strict accounting, skip pinning rather than fail
        // the (already completed) verified read.
        let epc = match self.enclave.epc().allocate(cost) {
            Ok(g) => Some(g),
            Err(_) => {
                cache.adjust_resident(before, shard.bytes());
                return Ok(());
            }
        };
        shard.insert(addr, data, epc);
        cache.adjust_resident(before, shard.bytes());
        self.cache_gauges(cache);
        Ok(())
    }

    /// Write back every dirty entry and drop the whole cache contents.
    /// Called by [`Self::verify_now`] / [`Self::verify_now_parallel`] so a
    /// synchronous verification pass reflects all absorbed writes, and by
    /// tests. No-op when the cache is disabled.
    pub fn drain_cell_cache(&self) -> Result<()> {
        let Some(cache) = &self.cache else {
            return Ok(());
        };
        for si in 0..cache.shard_count() {
            let mut failure = None;
            {
                let mut shard = cache.shard_by_index(si);
                let before = shard.bytes();
                for (addr, entry) in shard.take_all() {
                    if failure.is_some() {
                        continue; // discard the rest; we're poisoning anyway
                    }
                    if entry.dirty {
                        if let Err(e) = self.cache_write_back(addr, &entry.data) {
                            failure = Some(e);
                        }
                    }
                }
                cache.adjust_resident(before, shard.bytes());
            }
            if let Some(e) = failure {
                self.record_failure(&e);
                return Err(e);
            }
        }
        self.cache_gauges(cache);
        Ok(())
    }

    /// Discard every cache entry without write-back (poison path: the
    /// memory failed verification, so no further folds should be issued).
    fn clear_cell_cache(&self) {
        let Some(cache) = &self.cache else {
            return;
        };
        for si in 0..cache.shard_count() {
            let mut shard = cache.shard_by_index(si);
            let before = shard.bytes();
            drop(shard.take_all());
            cache.adjust_resident(before, 0);
        }
        self.cache_gauges(cache);
    }

    // ---- shared-nothing delta handles (see crate::delta, DESIGN.md §14) ----

    /// Create a worker-thread handle for shared-nothing verified
    /// execution: digest folds issued through it accumulate in a private
    /// slot and its timestamps come from private blocks, so the hot scan
    /// path stops contending on the partition mutexes and the global
    /// counter. The slot is registered so an epoch close can drain it;
    /// dropping the handle merges any remainder and deregisters it.
    pub fn delta_handle(self: &Arc<Self>) -> DeltaHandle {
        let slot = Arc::new(DeltaSlot::default());
        self.delta_slots.lock().push(Arc::clone(&slot));
        DeltaHandle {
            mem: Arc::clone(self),
            slot,
            ts: TsAlloc::default(),
        }
    }

    /// Merge every pending bucket of `slot` into its partition state.
    fn merge_slot(&self, slot: &DeltaSlot) {
        for pi in slot.partitions() {
            let mut part = self.lock_part(pi);
            for (se, b) in slot.drain_partition(pi) {
                delta::apply_bucket(&mut part, se, &b);
            }
            if let Some(m) = self.met() {
                m.delta_merges.inc();
            }
        }
    }

    /// Draw `n` consecutive timestamps: from the handle's thread-local
    /// block when a delta is engaged, from the shared counter otherwise.
    fn take_ts(&self, delta: &mut Option<&mut DeltaHandle>, n: u64) -> u64 {
        match delta {
            Some(d) => d.ts.take(n, &self.enclave, self.met()),
            None if n == 1 => self.enclave.next_timestamp(),
            None => self.enclave.next_timestamp_block(n),
        }
    }

    // ---- protected operations (Algorithm 1 / Algorithm 3 primitives) ------

    /// Protected read: returns the cell's data, folding the read into
    /// `h(RS)` and the virtual write-back (fresh timestamp) into `h(WS)`.
    ///
    /// With the cell cache enabled, a hit returns the pinned payload with
    /// no PRF, no folds, and no page lock; a miss runs the verified read
    /// below and pins the result.
    pub fn read(&self, addr: CellAddr) -> Result<Vec<u8>> {
        let Some(cache) = &self.cache else {
            return self.read_uncached(addr);
        };
        {
            // Hot hit path: shared shard lock only, so concurrent readers
            // of the same shard never serialize.
            let shard = cache.shard_read(addr.page);
            if let Some(data) = shard.get(addr) {
                cache.count_hit();
                if let Some(m) = self.met() {
                    m.cache_hits.inc();
                }
                drop(shard);
                self.op_tick();
                return Ok(data);
            }
        }
        let mut shard = cache.shard(addr.page);
        // Double-check under the exclusive lock: a racing miss may have
        // filled the entry while we upgraded.
        if let Some(data) = shard.get(addr) {
            cache.count_hit();
            if let Some(m) = self.met() {
                m.cache_hits.inc();
            }
            drop(shard);
            self.op_tick();
            return Ok(data);
        }
        let data = self.read_uncached(addr)?;
        cache.count_miss();
        if let Some(m) = self.met() {
            m.cache_misses.inc();
        }
        self.cache_fill(cache, &mut shard, addr, &data)?;
        Ok(data)
    }

    /// Protected read bypassing the cell cache (the raw Algorithm 1 path).
    fn read_uncached(&self, addr: CellAddr) -> Result<Vec<u8>> {
        let entry = self.get_entry(addr.page)?;
        let mut page = entry.raw.lock();

        if !self.cfg.verify_rsws {
            let (data, _) = page.read(addr.slot)?;
            let out = data.to_vec();
            drop(page);
            if let Some(m) = self.met() {
                m.protected_reads.inc();
            }
            self.op_tick();
            return Ok(out);
        }

        // A point read of a coalesced cell dissolves its scan group first,
        // restoring per-cell elements (see DESIGN.md §9).
        self.ensure_singleton(&mut page, addr.page, &entry.scan, addr.slot)?;

        let (data, ts_old) = {
            let (d, t) = page.read(addr.slot)?;
            (d.to_vec(), t)
        };
        let ts_new = self.enclave.next_timestamp();
        // PRF tags depend only on (addr, kind, data, ts) — never on the
        // epoch — so they are computed here, under the page lock alone.
        // Only pair selection and the XOR fold need the partition mutex
        // (see DESIGN.md §9).
        let rs_tag = self.prf.tag(addr.proto(), KIND_DATA, &data, ts_old);
        let ws_tag = self.prf.tag(addr.proto(), KIND_DATA, &data, ts_new);
        let meta_tags = if self.cfg.verify_metadata {
            // Algorithm 3's Get reads the record pointer first.
            let entry = page.slot_entry_bytes(addr.slot);
            let mts_old = page.meta_ts(addr.slot);
            let mts_new = self.enclave.next_timestamp();
            let maddr = addr.proto();
            let mrs = self.prf.tag(maddr, KIND_META, &entry, mts_old);
            let mws = self.prf.tag(maddr, KIND_META, &entry, mts_new);
            page.set_meta_ts(addr.slot, mts_new);
            self.enclave.cost().charge_prf(2);
            Some((mrs, mws))
        } else {
            None
        };
        page.set_ts(addr.slot, ts_new)?;

        {
            // Capture the routing epoch under the page lock (the scan
            // advances it under this same lock), then hold the partition
            // mutex only for the XOR folds themselves.
            let se = entry.scan.touch_and_capture();
            let mut part = self.lock_part(self.part_index(addr.page));
            if let Some((mrs, mws)) = &meta_tags {
                let mp = part.meta_pair_for(se);
                mp.rs.fold(mrs);
                mp.ws.fold(mws);
            }
            let pair = part.pair_for(se);
            pair.rs.fold(&rs_tag);
            pair.ws.fold(&ws_tag);
            part.ops_since_close += 1;
        }
        self.enclave.cost().charge_prf(2);
        self.enclave.cost().charge_verified_read();
        if let Some(m) = self.met() {
            m.protected_reads.inc();
            m.singleton_elements.inc();
        }
        drop(page);
        self.op_tick();
        Ok(data)
    }

    /// Protected overwrite of an existing cell.
    ///
    /// With the cell cache enabled, a write whose payload fits the pinned
    /// entry's capacity is absorbed in trusted memory (the entry goes
    /// dirty; the WS fold is deferred to eviction/drain). Larger payloads
    /// and misses take the host path below.
    pub fn write(&self, addr: CellAddr, data: &[u8]) -> Result<()> {
        let Some(cache) = &self.cache else {
            return self.write_uncached(addr, data);
        };
        let mut shard = cache.shard(addr.page);
        if shard.write_hit(addr, data) {
            cache.count_hit();
            if let Some(m) = self.met() {
                m.cache_hits.inc();
            }
            drop(shard);
            self.op_tick();
            return Ok(());
        }
        self.write_uncached(addr, data)?;
        // A growing write to a pinned cell went through the host path; the
        // old entry (possibly dirty — its content is superseded by this
        // write) is replaced by the new payload, clean, with the new
        // capacity. Plain misses do not allocate (read-fill only).
        if shard.contains(addr) {
            let before = shard.bytes();
            shard.remove(addr);
            cache.adjust_resident(before, shard.bytes());
            self.cache_fill(cache, &mut shard, addr, data)?;
        }
        Ok(())
    }

    /// Protected overwrite bypassing the cell cache.
    fn write_uncached(&self, addr: CellAddr, data: &[u8]) -> Result<()> {
        let entry = self.get_entry(addr.page)?;
        let mut page = entry.raw.lock();
        let ts_new = self.enclave.next_timestamp();

        if !self.cfg.verify_rsws {
            page.write(addr.slot, data, ts_new)?;
            drop(page);
            if let Some(m) = self.met() {
                m.protected_writes.inc();
            }
            self.op_tick();
            return Ok(());
        }

        self.ensure_singleton(&mut page, addr.page, &entry.scan, addr.slot)?;

        // Consume the old cell in place: the rs tag is computed from the
        // borrowed bytes, so no copy of the old payload is ever made.
        let rs_tag = {
            let (old, ts_old) = page.read(addr.slot)?;
            self.prf.tag(addr.proto(), KIND_DATA, old, ts_old)
        };
        let entry_old = page.slot_entry_bytes(addr.slot);
        let mts_old = page.meta_ts(addr.slot);
        // Mutate first: a PageFull on a growing write must leave the
        // digests untouched.
        page.write(addr.slot, data, ts_new)?;
        let ws_tag = self.prf.tag(addr.proto(), KIND_DATA, data, ts_new);
        let meta_tags = if self.cfg.verify_metadata {
            let entry_new = page.slot_entry_bytes(addr.slot);
            let mts_new = self.enclave.next_timestamp();
            let maddr = addr.proto();
            let mrs = self.prf.tag(maddr, KIND_META, &entry_old, mts_old);
            let mws = self.prf.tag(maddr, KIND_META, &entry_new, mts_new);
            page.set_meta_ts(addr.slot, mts_new);
            self.enclave.cost().charge_prf(2);
            Some((mrs, mws))
        } else {
            None
        };

        {
            let se = entry.scan.touch_and_capture();
            let mut part = self.lock_part(self.part_index(addr.page));
            if let Some((mrs, mws)) = &meta_tags {
                let mp = part.meta_pair_for(se);
                mp.rs.fold(mrs);
                mp.ws.fold(mws);
            }
            let pair = part.pair_for(se);
            pair.rs.fold(&rs_tag);
            pair.ws.fold(&ws_tag);
            part.ops_since_close += 1;
        }
        self.enclave.cost().charge_prf(2);
        self.enclave.cost().charge_verified_write();
        if let Some(m) = self.met() {
            m.protected_writes.inc();
            m.singleton_elements.inc();
        }
        drop(page);
        self.op_tick();
        Ok(())
    }

    /// Protected insert into a specific page. Fails with `PageFull` when
    /// the page cannot hold the cell (the caller allocates another page).
    pub fn insert_in(&self, page_id: u64, data: &[u8]) -> Result<CellAddr> {
        let entry = self.get_entry(page_id)?;
        let mut page = entry.raw.lock();
        let ts = self.enclave.next_timestamp();

        // If contiguous space is short but holes would cover it, compact
        // on demand (lazy mode defers this to the scan, but an insert that
        // would otherwise spill to a fresh page still prefers reclaiming).
        let needed = data.len() + crate::page::CELL_HEADER_BYTES + crate::page::SLOT_ENTRY_BYTES;
        if page.contiguous_free() < needed && page.free_after_compaction() >= needed {
            self.compact_locked(&mut page, page_id, &entry.scan)?;
        }

        let slot_count_before = page.slot_count();
        let slot = page.insert(data, ts)?;
        let addr = CellAddr {
            page: page_id,
            slot,
        };

        if !self.cfg.verify_rsws {
            drop(page);
            if let Some(m) = self.met() {
                m.protected_inserts.inc();
            }
            self.op_tick();
            return Ok(addr);
        }

        let ws_tag = self.prf.tag(addr.proto(), KIND_DATA, data, ts);
        let meta_tags = if self.cfg.verify_metadata {
            let entry_new = page.slot_entry_bytes(slot);
            let reused_slot = slot < slot_count_before;
            let mts_old = page.meta_ts(slot);
            let mts_new = self.enclave.next_timestamp();
            let maddr = addr.proto();
            // A reused slot consumes the tombstone entry (0,0).
            let mrs = reused_slot.then(|| {
                self.enclave.cost().charge_prf(1);
                self.prf.tag(maddr, KIND_META, &[0, 0, 0, 0], mts_old)
            });
            let mws = self.prf.tag(maddr, KIND_META, &entry_new, mts_new);
            page.set_meta_ts(slot, mts_new);
            self.enclave.cost().charge_prf(1);
            Some((mrs, mws))
        } else {
            None
        };

        {
            let se = entry.scan.touch_and_capture();
            let mut part = self.lock_part(self.part_index(page_id));
            if let Some((mrs, mws)) = &meta_tags {
                let mp = part.meta_pair_for(se);
                if let Some(mrs) = mrs {
                    mp.rs.fold(mrs);
                }
                mp.ws.fold(mws);
            }
            let pair = part.pair_for(se);
            pair.ws.fold(&ws_tag);
            part.ops_since_close += 1;
        }
        self.enclave.cost().charge_prf(1);
        self.enclave.cost().charge_verified_write();
        if let Some(m) = self.met() {
            m.protected_inserts.inc();
        }
        drop(page);
        self.op_tick();
        Ok(addr)
    }

    /// Protected delete. In eager-compaction mode (the pre-§4.3 baseline
    /// behaviour) the page is compacted immediately, paying a verified
    /// read+write per relocated record; in lazy mode the hole waits for
    /// the verification scan.
    pub fn delete(&self, addr: CellAddr) -> Result<()> {
        let Some(cache) = &self.cache else {
            return self.delete_uncached(addr);
        };
        // Invalidate under the shard lock: the dirty payload (if any) dies
        // with the cell — the host-path RS fold below consumes the
        // outstanding element, which the host copy still carries.
        let mut shard = cache.shard(addr.page);
        if shard.contains(addr) {
            let before = shard.bytes();
            shard.remove(addr);
            cache.adjust_resident(before, shard.bytes());
        }
        self.delete_uncached(addr)
    }

    /// Protected delete bypassing the cell cache.
    fn delete_uncached(&self, addr: CellAddr) -> Result<()> {
        let entry = self.get_entry(addr.page)?;
        let mut page = entry.raw.lock();

        if !self.cfg.verify_rsws {
            page.delete(addr.slot)?;
            drop(page);
            if let Some(m) = self.met() {
                m.protected_deletes.inc();
            }
            self.op_tick();
            return Ok(());
        }

        self.ensure_singleton(&mut page, addr.page, &entry.scan, addr.slot)?;

        // The rs tag consumes the dying cell; computed from the borrowed
        // bytes before the tombstone lands, so nothing is copied.
        let rs_tag = {
            let (old, ts_old) = page.read(addr.slot)?;
            self.prf.tag(addr.proto(), KIND_DATA, old, ts_old)
        };
        let entry_old = page.slot_entry_bytes(addr.slot);
        let mts_old = page.meta_ts(addr.slot);
        page.delete(addr.slot)?;
        let meta_tags = if self.cfg.verify_metadata {
            let mts_new = self.enclave.next_timestamp();
            let maddr = addr.proto();
            let mrs = self.prf.tag(maddr, KIND_META, &entry_old, mts_old);
            let mws = self.prf.tag(maddr, KIND_META, &[0, 0, 0, 0], mts_new);
            page.set_meta_ts(addr.slot, mts_new);
            self.enclave.cost().charge_prf(2);
            Some((mrs, mws))
        } else {
            None
        };

        {
            let se = entry.scan.touch_and_capture();
            let mut part = self.lock_part(self.part_index(addr.page));
            if let Some((mrs, mws)) = &meta_tags {
                let mp = part.meta_pair_for(se);
                mp.rs.fold(mrs);
                mp.ws.fold(mws);
            }
            let pair = part.pair_for(se);
            pair.rs.fold(&rs_tag);
            part.ops_since_close += 1;
        }
        self.enclave.cost().charge_prf(1);
        self.enclave.cost().charge_verified_write();
        if let Some(m) = self.met() {
            m.protected_deletes.inc();
            m.singleton_elements.inc();
        }

        if !self.cfg.compact_during_verification && page.needs_compaction() {
            // Eager space reclamation: every surviving record is read and
            // re-written (fresh timestamp) — the §4.3 cost this design
            // later optimizes away.
            self.compact_verified_locked(&mut page, addr.page, &entry.scan)?;
        }
        drop(page);
        self.op_tick();
        Ok(())
    }

    /// Protected, atomic move of a cell to another page (the `Move`
    /// interface of §4.2, used by space management and index
    /// reorganization).
    pub fn move_cell(&self, from: CellAddr, to_page: u64) -> Result<CellAddr> {
        if from.page == to_page {
            // Same-page "move" is a no-op at the protocol level.
            return Ok(from);
        }
        let Some(cache) = &self.cache else {
            return self.move_cell_uncached(from, to_page);
        };
        // Shards in index order (both held across the move so no fill can
        // race it); a dirty source entry is written back first so the host
        // copy the move reads is current, then invalidated.
        let (mut src_shard, _dst_shard) = cache.shard_pair(from.page, to_page);
        if src_shard.contains(from) {
            let before = src_shard.bytes();
            if let Some(entry) = src_shard.remove(from) {
                if entry.dirty {
                    self.cache_write_back(from, &entry.data)?;
                }
            }
            cache.adjust_resident(before, src_shard.bytes());
        }
        self.move_cell_uncached(from, to_page)
    }

    /// Protected move bypassing the cell cache.
    fn move_cell_uncached(&self, from: CellAddr, to_page: u64) -> Result<CellAddr> {
        // Lock pages in id order to avoid deadlocks.
        let ea = self.get_entry(from.page)?;
        let eb = self.get_entry(to_page)?;
        let (mut src, mut dst) = if from.page < to_page {
            let s = ea.raw.lock();
            let d = eb.raw.lock();
            (s, d)
        } else {
            let d = eb.raw.lock();
            let s = ea.raw.lock();
            (s, d)
        };

        if self.cfg.verify_rsws {
            self.ensure_singleton(&mut src, from.page, &ea.scan, from.slot)?;
        }

        let (data, ts_old) = {
            let (d, t) = src.read(from.slot)?;
            (d.to_vec(), t)
        };
        let ts_new = self.enclave.next_timestamp();
        let dst_slot_count_before = dst.slot_count();
        // Insert first so a full destination leaves the source untouched.
        let slot = dst.insert(&data, ts_new)?;
        let to = CellAddr {
            page: to_page,
            slot,
        };
        let src_entry_old = src.slot_entry_bytes(from.slot);
        let src_mts_old = src.meta_ts(from.slot);
        src.delete(from.slot)?;

        if !self.cfg.verify_rsws {
            if let Some(m) = self.met() {
                m.protected_moves.inc();
            }
            self.op_tick();
            return Ok(to);
        }

        // All tags are computed under the page locks alone; the partition
        // mutexes below only route and fold.
        let src_rs = self.prf.tag(from.proto(), KIND_DATA, &data, ts_old);
        let dst_ws = self.prf.tag(to.proto(), KIND_DATA, &data, ts_new);
        let src_meta = if self.cfg.verify_metadata {
            let mts_new = self.enclave.next_timestamp();
            let maddr = from.proto();
            let mrs = self.prf.tag(maddr, KIND_META, &src_entry_old, src_mts_old);
            let mws = self.prf.tag(maddr, KIND_META, &[0, 0, 0, 0], mts_new);
            src.set_meta_ts(from.slot, mts_new);
            self.enclave.cost().charge_prf(2);
            Some((mrs, mws))
        } else {
            None
        };
        let dst_meta = if self.cfg.verify_metadata {
            let reused = slot < dst_slot_count_before;
            let mts_old = dst.meta_ts(slot);
            let mts_new = self.enclave.next_timestamp();
            let entry_new = dst.slot_entry_bytes(slot);
            let maddr = to.proto();
            let mrs = reused.then(|| {
                self.enclave.cost().charge_prf(1);
                self.prf.tag(maddr, KIND_META, &[0, 0, 0, 0], mts_old)
            });
            let mws = self.prf.tag(maddr, KIND_META, &entry_new, mts_new);
            dst.set_meta_ts(slot, mts_new);
            self.enclave.cost().charge_prf(1);
            Some((mrs, mws))
        } else {
            None
        };

        // Source-side folds (consume the old cell).
        {
            let se = ea.scan.touch_and_capture();
            let mut part = self.lock_part(self.part_index(from.page));
            if let Some((mrs, mws)) = &src_meta {
                let mp = part.meta_pair_for(se);
                mp.rs.fold(mrs);
                mp.ws.fold(mws);
            }
            part.pair_for(se).rs.fold(&src_rs);
            part.ops_since_close += 1;
        }
        // Destination-side folds (produce the new cell).
        {
            let se = eb.scan.touch_and_capture();
            let mut part = self.lock_part(self.part_index(to_page));
            if let Some((mrs, mws)) = &dst_meta {
                let mp = part.meta_pair_for(se);
                if let Some(mrs) = mrs {
                    mp.rs.fold(mrs);
                }
                mp.ws.fold(mws);
            }
            part.pair_for(se).ws.fold(&dst_ws);
            part.ops_since_close += 1;
        }
        self.enclave.cost().charge_prf(2);
        self.enclave.cost().charge_verified_write();
        if let Some(m) = self.met() {
            m.protected_moves.inc();
            m.singleton_elements.inc();
        }
        self.op_tick();
        Ok(to)
    }

    // ---- coalesced scan groups --------------------------------------------
    //
    // A batched read re-inserts the whole batch as ONE multiset element
    // (`KIND_GROUP`): a single PRF image over the length-prefixed
    // concatenation of the members' payloads, bound to the page address and
    // one fresh timestamp. Steady-state sequential scans therefore cost two
    // PRF evaluations per page instead of two per cell. Group membership
    // lives in the untrusted page ([`RawPage::groups`]); any host lie about
    // it changes what the next consume folds into `h(RS)` and is caught at
    // epoch close. Single-cell operations dissolve the covering group first
    // (`ensure_singleton`), restoring per-cell elements.

    /// PRF image of a scan-group element: the members' payloads as stored
    /// in `page` right now, length-prefixed and concatenated into
    /// `scratch`, tagged under the page's protocol address and `ts`.
    fn group_tag_from_page(
        &self,
        page: &RawPage,
        page_id: u64,
        slots: &[SlotId],
        ts: u64,
        scratch: &mut Vec<u8>,
    ) -> Result<SetDigest> {
        scratch.clear();
        scratch.extend_from_slice(&(slots.len() as u32).to_le_bytes());
        for &slot in slots {
            let (data, _) = page.read(slot)?;
            scratch.extend_from_slice(&slot.to_le_bytes());
            scratch.extend_from_slice(&(data.len() as u32).to_le_bytes());
            scratch.extend_from_slice(data);
        }
        let addr = CellAddr {
            page: page_id,
            slot: 0,
        }
        .proto();
        Ok(self.prf.tag(addr, KIND_GROUP, scratch, ts))
    }

    /// Dissolve the scan group covering `slot`, if any: consume the group
    /// element into `rs_acc` and re-insert every member as a singleton with
    /// a fresh timestamp into `ws_acc`. The caller folds both accumulators
    /// under the partition lock. Returns the number of PRF evaluations.
    fn degroup_for(
        &self,
        page: &mut RawPage,
        page_id: u64,
        slot: SlotId,
        rs_acc: &mut SetDigest,
        ws_acc: &mut SetDigest,
    ) -> Result<u64> {
        let Some(group) = page.take_group_of(slot) else {
            return Ok(0);
        };
        if let Some(m) = self.met() {
            m.groups_dissolved.inc();
            m.group_elements.inc();
        }
        let mut scratch = Vec::new();
        rs_acc.fold(&self.group_tag_from_page(
            page,
            page_id,
            &group.slots,
            group.ts,
            &mut scratch,
        )?);
        let n = group.slots.len() as u64;
        let ts_base = self.enclave.next_timestamp_block(n);
        for (i, &s) in group.slots.iter().enumerate() {
            let ts_new = ts_base + i as u64;
            {
                let (data, _) = page.read(s)?;
                let addr = CellAddr {
                    page: page_id,
                    slot: s,
                }
                .proto();
                ws_acc.fold(&self.prf.tag(addr, KIND_DATA, data, ts_new));
            }
            page.set_ts(s, ts_new)?;
        }
        Ok(1 + n)
    }

    /// Make `slot`'s outstanding element a per-cell singleton, dissolving
    /// and folding the covering scan group if one exists. No-op (and no
    /// locks beyond the held page lock) for ungrouped slots.
    fn ensure_singleton(
        &self,
        page: &mut RawPage,
        page_id: u64,
        scan: &PageScanState,
        slot: SlotId,
    ) -> Result<()> {
        if page.group_of(slot).is_none() {
            return Ok(());
        }
        let mut rs = SetDigest::ZERO;
        let mut ws = SetDigest::ZERO;
        let prfs = self.degroup_for(page, page_id, slot, &mut rs, &mut ws)?;
        {
            let se = scan.touch_and_capture();
            let mut part = self.lock_part(self.part_index(page_id));
            let pair = part.pair_for(se);
            pair.rs.fold(&rs);
            pair.ws.fold(&ws);
        }
        self.enclave.cost().charge_prf(prfs);
        Ok(())
    }

    // ---- batched protected operations -------------------------------------

    /// Batched protected read: read up to `slots.len()` live cells of one
    /// page into `out`, consuming each cell's outstanding element into
    /// `h(RS)` and re-inserting the whole batch into `h(WS)` as **one
    /// coalesced scan-group element** — a single PRF image over the
    /// members' concatenated payloads (see DESIGN.md §9). The fixed costs
    /// are paid once per batch instead of once per cell:
    ///
    /// - the page is looked up and locked once;
    /// - payloads land in `out`'s flat scratch buffer (no per-cell `Vec`);
    /// - all PRF tags are computed under the page lock alone and
    ///   pre-combined (XOR) into one RS and one WS contribution, so the
    ///   partition mutex is held for a single epoch lookup plus two
    ///   32-byte folds;
    /// - a repeat of the same batch (the steady state of a sequential
    ///   scan) consumes the previous group element and writes a fresh
    ///   one: **two** PRF evaluations for the page, not two per cell.
    ///
    /// Requested slots that are dead are skipped (nothing is folded for
    /// them, which is digest-neutral); callers detect skips by comparing
    /// `out`'s slot ids against the request. Duplicate slots are read and
    /// folded once — a group element covers each member exactly once.
    pub fn read_page_batch(
        &self,
        page_id: u64,
        slots: &[SlotId],
        out: &mut ReadBatch,
    ) -> Result<()> {
        self.read_page_batch_inner(page_id, slots, out, None)
    }

    /// Shared-nothing variant of [`Self::read_page_batch`]: the batch's
    /// RS/WS contributions accumulate in `delta`'s thread-local slot and
    /// its timestamps come from the handle's private block, so the hot
    /// loop never touches the partition mutex or the global counter. The
    /// folds land in partition state when the handle merges (morsel
    /// completion / drop) or when an epoch close drains the slot —
    /// byte-identical to the serial fold either way, because XOR commutes.
    pub fn read_page_batch_delta(
        &self,
        page_id: u64,
        slots: &[SlotId],
        out: &mut ReadBatch,
        delta: &mut DeltaHandle,
    ) -> Result<()> {
        self.read_page_batch_inner(page_id, slots, out, Some(delta))
    }

    fn read_page_batch_inner(
        &self,
        page_id: u64,
        slots: &[SlotId],
        out: &mut ReadBatch,
        delta: Option<&mut DeltaHandle>,
    ) -> Result<()> {
        let Some(cache) = &self.cache else {
            return self.read_page_batch_uncached(page_id, slots, out, delta);
        };
        {
            // Shared-mode fast path for hot read-only morsels: if none of
            // the requested slots is pinned dirty, the batch needs no
            // cache mutation at all — hold the shard lock in read mode so
            // concurrent scans of the same shard proceed in parallel.
            let shard = cache.shard_read(page_id);
            let any_dirty = slots.iter().any(|&slot| {
                shard.is_dirty(CellAddr {
                    page: page_id,
                    slot,
                })
            });
            if !any_dirty {
                return self.read_page_batch_uncached(page_id, slots, out, delta);
            }
        }
        // Coherence with coalesced scan groups: flush dirty pinned cells
        // among the requested slots first (the entries stay pinned, now
        // clean), so the group element the batch forms covers the current
        // payloads. Clean entries already match the host bytes. The
        // exclusive guard is re-acquired, so the dirty set is re-examined
        // from scratch (a racing writer may have changed it).
        let shard = &mut *cache.shard(page_id);
        let before = shard.bytes();
        for &slot in slots {
            let addr = CellAddr {
                page: page_id,
                slot,
            };
            if let Some(data) = shard.take_dirty_data(addr) {
                self.cache_write_back(addr, &data)?;
            }
        }
        cache.adjust_resident(before, shard.bytes());
        self.read_page_batch_uncached(page_id, slots, out, delta)
    }

    /// Batched protected read bypassing the cell cache (the caller holds
    /// the covering shard lock when the cache is enabled). With `delta`,
    /// folds go to the thread-local slot *before the page lock is
    /// released* — the invariant the epoch close's slot drain relies on.
    fn read_page_batch_uncached(
        &self,
        page_id: u64,
        slots: &[SlotId],
        out: &mut ReadBatch,
        mut delta: Option<&mut DeltaHandle>,
    ) -> Result<()> {
        out.clear();
        let entry = self.get_entry(page_id)?;
        let mut page = entry.raw.lock();

        if !self.cfg.verify_rsws {
            for &slot in slots {
                if let Ok((data, _)) = page.read(slot) {
                    out.push(slot, data);
                }
            }
            drop(page);
            if let Some(m) = self.met() {
                m.batched_read_cells.add(out.len() as u64);
            }
            self.op_tick_n(slots.len() as u64);
            return Ok(());
        }

        // Pass 1: copy live payloads into the flat buffer (each slot at
        // most once), remembering each cell's old timestamp.
        let mut old_ts: Vec<u64> = Vec::with_capacity(slots.len());
        for &slot in slots {
            if out.cells.iter().any(|c| c.0 == slot) {
                continue;
            }
            if let Ok((data, ts)) = page.read(slot) {
                out.push(slot, data);
                old_ts.push(ts);
            }
        }
        let n = out.len() as u64;
        if n == 0 {
            drop(page);
            self.op_tick_n(slots.len() as u64);
            return Ok(());
        }

        // Pass 2: consume every requested cell's outstanding element into
        // the RS accumulator. Tags depend only on (addr, kind, data, ts) —
        // never on the epoch — so no partition lock is needed here.
        let mut rs_acc = SetDigest::ZERO;
        let mut ws_acc = SetDigest::ZERO;
        let mut prf_count = 0u64;
        let mut scratch = Vec::new();
        let mut req: Vec<SlotId> = out.cells.iter().map(|c| c.0).collect();
        req.sort_unstable();

        // Scan groups wholly inside the request are consumed wholesale;
        // groups straddling the request boundary dissolve, their outside
        // members re-inserted as singletons with fresh timestamps.
        let mut via_group: Vec<SlotId> = Vec::new();
        while let Some(gidx) = (0..page.groups().len()).find(|&i| {
            page.groups()[i]
                .slots
                .iter()
                .any(|s| req.binary_search(s).is_ok())
        }) {
            let group = page.take_group(gidx);
            rs_acc.fold(&self.group_tag_from_page(
                &page,
                page_id,
                &group.slots,
                group.ts,
                &mut scratch,
            )?);
            prf_count += 1;
            if let Some(m) = self.met() {
                m.group_elements.inc();
            }
            let outside: Vec<SlotId> = group
                .slots
                .iter()
                .copied()
                .filter(|s| req.binary_search(s).is_err())
                .collect();
            if !outside.is_empty() {
                // The group straddled the request boundary: it dissolves,
                // its outside members restored as singletons.
                if let Some(m) = self.met() {
                    m.groups_dissolved.inc();
                }
                let ts_base = self.take_ts(&mut delta, outside.len() as u64);
                for (i, &s) in outside.iter().enumerate() {
                    let ts_new = ts_base + i as u64;
                    {
                        let (data, _) = page.read(s)?;
                        let addr = CellAddr {
                            page: page_id,
                            slot: s,
                        }
                        .proto();
                        ws_acc.fold(&self.prf.tag(addr, KIND_DATA, data, ts_new));
                    }
                    page.set_ts(s, ts_new)?;
                    prf_count += 1;
                }
            }
            via_group.extend(group.slots.iter().filter(|s| req.binary_search(s).is_ok()));
        }
        via_group.sort_unstable();
        let mut singleton_folds = 0u64;
        for (i, (slot, data)) in out.iter().enumerate() {
            if via_group.binary_search(&slot).is_ok() {
                continue;
            }
            let addr = CellAddr {
                page: page_id,
                slot,
            }
            .proto();
            rs_acc.fold(&self.prf.tag(addr, KIND_DATA, data, old_ts[i]));
            prf_count += 1;
            singleton_folds += 1;
        }
        let mut meta_acc = None;
        if self.cfg.verify_metadata {
            let mts_base = self.take_ts(&mut delta, n);
            let mut meta_rs = SetDigest::ZERO;
            let mut meta_ws = SetDigest::ZERO;
            for i in 0..out.len() {
                let slot = out.cells[i].0;
                let addr = CellAddr {
                    page: page_id,
                    slot,
                }
                .proto();
                let entry = page.slot_entry_bytes(slot);
                let mts_new = mts_base + i as u64;
                meta_rs.fold(&self.prf.tag(addr, KIND_META, &entry, page.meta_ts(slot)));
                meta_ws.fold(&self.prf.tag(addr, KIND_META, &entry, mts_new));
                page.set_meta_ts(slot, mts_new);
            }
            self.enclave.cost().charge_prf(2 * n);
            meta_acc = Some((meta_rs, meta_ws));
        }
        // Re-insert: the whole batch becomes one scan-group element under
        // a single fresh timestamp.
        let group_ts = self.take_ts(&mut delta, 1);
        let members: Vec<SlotId> = out.cells.iter().map(|c| c.0).collect();
        ws_acc.fold(&self.group_tag_from_page(&page, page_id, &members, group_ts, &mut scratch)?);
        prf_count += 1;
        for &s in &members {
            page.set_ts(s, group_ts)?;
        }
        page.add_group(members, group_ts);

        // One fold destination for the whole batch: the thread-local
        // delta slot on the shared-nothing path, the partition mutex
        // otherwise. Either way the routing epoch is captured under the
        // page lock, and on the delta path the fold lands in the slot
        // before the page lock is released (fold-before-unlatch).
        {
            let se = entry.scan.touch_and_capture();
            match delta {
                Some(d) => {
                    d.slot.fold(
                        self.part_index(page_id),
                        se,
                        &rs_acc,
                        &ws_acc,
                        meta_acc.as_ref().map(|t| (&t.0, &t.1)),
                        n,
                    );
                }
                None => {
                    let mut part = self.lock_part(self.part_index(page_id));
                    if let Some((meta_rs, meta_ws)) = &meta_acc {
                        let mp = part.meta_pair_for(se);
                        mp.rs.fold(meta_rs);
                        mp.ws.fold(meta_ws);
                    }
                    let pair = part.pair_for(se);
                    pair.rs.fold(&rs_acc);
                    pair.ws.fold(&ws_acc);
                    part.ops_since_close += n;
                }
            }
        }
        self.enclave.cost().charge_prf(prf_count);
        self.enclave.cost().charge_verified_reads(n);
        if let Some(m) = self.met() {
            m.batched_read_cells.add(n);
            m.singleton_elements.add(singleton_folds);
            m.groups_formed.inc();
        }
        drop(page);
        self.op_tick_n(slots.len() as u64);
        Ok(())
    }

    /// Batched protected overwrite of existing cells of one page: the
    /// write-side counterpart of [`Self::read_page_batch`] (one page lock,
    /// one timestamp block, tags outside the partition lock, one fold).
    ///
    /// On a mid-batch failure (dead slot, `PageFull` on a growing write)
    /// the already-applied prefix is folded before the error returns, so
    /// the digests stay consistent with the cells actually mutated; the
    /// failing cell itself is untouched. Callers may retry or relocate
    /// the remainder.
    pub fn write_page_batch(&self, page_id: u64, writes: &[(SlotId, &[u8])]) -> Result<()> {
        let Some(cache) = &self.cache else {
            return self.write_page_batch_uncached(page_id, writes);
        };
        // Batched writes supersede any pinned copies of the target slots;
        // drop them (dirty content included — the host-path RS folds below
        // consume the outstanding elements the host copies still carry).
        let shard = &mut *cache.shard(page_id);
        let before = shard.bytes();
        for &(slot, _) in writes {
            shard.remove(CellAddr {
                page: page_id,
                slot,
            });
        }
        cache.adjust_resident(before, shard.bytes());
        self.write_page_batch_uncached(page_id, writes)
    }

    /// Batched protected write bypassing the cell cache.
    fn write_page_batch_uncached(&self, page_id: u64, writes: &[(SlotId, &[u8])]) -> Result<()> {
        let entry = self.get_entry(page_id)?;
        let mut page = entry.raw.lock();
        let n = writes.len() as u64;
        let ts_base = self.enclave.next_timestamp_block(n);

        if !self.cfg.verify_rsws {
            for (i, &(slot, data)) in writes.iter().enumerate() {
                page.write(slot, data, ts_base + i as u64)?;
            }
            drop(page);
            if let Some(m) = self.met() {
                m.batched_write_cells.add(n);
            }
            self.op_tick_n(n);
            return Ok(());
        }

        let mut rs_acc = SetDigest::ZERO;
        let mut ws_acc = SetDigest::ZERO;
        let mut meta_rs = SetDigest::ZERO;
        let mut meta_ws = SetDigest::ZERO;
        let mut applied = 0u64;
        let mut degroup_prfs = 0u64;
        let mut failure = None;
        for (i, &(slot, data)) in writes.iter().enumerate() {
            let addr = CellAddr {
                page: page_id,
                slot,
            }
            .proto();
            // A write target covered by a scan group dissolves it first;
            // its contributions ride in the same accumulators (and are
            // folded even if a later cell fails).
            match self.degroup_for(&mut page, page_id, slot, &mut rs_acc, &mut ws_acc) {
                Ok(n) => degroup_prfs += n,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
            // Consume the old cell in place (no copy), then mutate; a
            // failure before the mutation leaves this cell out of the
            // accumulators entirely.
            let rs_tag = match page.read(slot) {
                Ok((old, ts_old)) => self.prf.tag(addr, KIND_DATA, old, ts_old),
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            };
            let entry_old = page.slot_entry_bytes(slot);
            let mts_old = page.meta_ts(slot);
            if let Err(e) = page.write(slot, data, ts_base + i as u64) {
                failure = Some(e);
                break;
            }
            rs_acc.fold(&rs_tag);
            ws_acc.fold(&self.prf.tag(addr, KIND_DATA, data, ts_base + i as u64));
            if self.cfg.verify_metadata {
                let entry_new = page.slot_entry_bytes(slot);
                let mts_new = self.enclave.next_timestamp();
                meta_rs.fold(&self.prf.tag(addr, KIND_META, &entry_old, mts_old));
                meta_ws.fold(&self.prf.tag(addr, KIND_META, &entry_new, mts_new));
                page.set_meta_ts(slot, mts_new);
            }
            applied += 1;
        }

        if applied > 0 || degroup_prfs > 0 {
            let se = entry.scan.touch_and_capture();
            let mut part = self.lock_part(self.part_index(page_id));
            if self.cfg.verify_metadata {
                let mp = part.meta_pair_for(se);
                mp.rs.fold(&meta_rs);
                mp.ws.fold(&meta_ws);
            }
            let pair = part.pair_for(se);
            pair.rs.fold(&rs_acc);
            pair.ws.fold(&ws_acc);
            part.ops_since_close += applied;
        }
        let charged = degroup_prfs
            + if self.cfg.verify_metadata {
                4 * applied
            } else {
                2 * applied
            };
        self.enclave.cost().charge_prf(charged);
        self.enclave.cost().charge_verified_writes(applied);
        if let Some(m) = self.met() {
            m.batched_write_cells.add(applied);
            m.singleton_elements.add(applied);
        }
        drop(page);
        self.op_tick_n(applied.max(1));
        match failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    // ---- compaction helpers -----------------------------------------------

    /// Compact a locked page, folding the metadata updates (offset changes)
    /// if metadata verification is on. Record data and timestamps do not
    /// change, so the record digests are untouched — this is the "free"
    /// compaction of §4.3.
    fn compact_locked(&self, page: &mut RawPage, page_id: u64, scan: &PageScanState) -> Result<()> {
        if !self.cfg.verify_rsws || !self.cfg.verify_metadata {
            page.compact();
            return Ok(());
        }
        let live = page.live_slot_ids();
        let old_entries: Vec<(SlotId, [u8; 4], u64)> = live
            .iter()
            .map(|&s| (s, page.slot_entry_bytes(s), page.meta_ts(s)))
            .collect();
        page.compact();
        // Tag every directory change under the page lock, pre-combined
        // into one rs/ws contribution each; the partition lock then folds
        // twice regardless of how many slots moved.
        let n = old_entries.len() as u64;
        let mts_base = self.enclave.next_timestamp_block(n);
        let mut meta_rs = SetDigest::ZERO;
        let mut meta_ws = SetDigest::ZERO;
        for (i, (slot, old_entry, mts_old)) in old_entries.into_iter().enumerate() {
            let entry_new = page.slot_entry_bytes(slot);
            let mts_new = mts_base + i as u64;
            let maddr = CellAddr {
                page: page_id,
                slot,
            }
            .proto();
            meta_rs.fold(&self.prf.tag(maddr, KIND_META, &old_entry, mts_old));
            meta_ws.fold(&self.prf.tag(maddr, KIND_META, &entry_new, mts_new));
            page.set_meta_ts(slot, mts_new);
        }
        self.enclave.cost().charge_prf(2 * n);
        let se = scan.touch_and_capture();
        let mut part = self.lock_part(self.part_index(page_id));
        let mp = part.meta_pair_for(se);
        mp.rs.fold(&meta_rs);
        mp.ws.fold(&meta_ws);
        Ok(())
    }

    /// Eager-mode compaction: verified read + re-timestamped write of every
    /// surviving record (the expensive behaviour §4.3 optimizes away).
    fn compact_verified_locked(
        &self,
        page: &mut RawPage,
        page_id: u64,
        scan: &PageScanState,
    ) -> Result<()> {
        let mut rs_acc = SetDigest::ZERO;
        let mut ws_acc = SetDigest::ZERO;
        // Eager compaction consumes every record as a singleton, so any
        // scan groups dissolve first, through the same accumulators.
        while let Some(slot) = page.groups().first().map(|g| g.slots[0]) {
            let prfs = self.degroup_for(page, page_id, slot, &mut rs_acc, &mut ws_acc)?;
            self.enclave.cost().charge_prf(prfs);
        }
        let live = page.live_slot_ids();
        let n = live.len() as u64;
        let ts_base = self.enclave.next_timestamp_block(n);
        // Tag each surviving record under the page lock, combining the
        // whole page's contribution so the partition fold is O(1).
        for (i, slot) in live.iter().enumerate() {
            let ts_new = ts_base + i as u64;
            {
                let (data, ts_old) = page.read(*slot)?;
                let addr = CellAddr {
                    page: page_id,
                    slot: *slot,
                }
                .proto();
                rs_acc.fold(&self.prf.tag(addr, KIND_DATA, data, ts_old));
                ws_acc.fold(&self.prf.tag(addr, KIND_DATA, data, ts_new));
            }
            page.set_ts(*slot, ts_new)?;
        }
        self.enclave.cost().charge_prf(2 * n);
        self.compact_locked(page, page_id, scan)?;
        let se = scan.touch_and_capture();
        let mut part = self.lock_part(self.part_index(page_id));
        let pair = part.pair_for(se);
        pair.rs.fold(&rs_acc);
        pair.ws.fold(&ws_acc);
        Ok(())
    }

    // ---- verification (Algorithm 2, non-quiescent) --------------------------

    fn record_failure(&self, e: &Error) {
        let first = {
            let mut p = self.poisoned.lock();
            if p.is_none() {
                *p = Some(e.clone());
                if let Some(m) = self.met() {
                    m.poison_events.inc();
                }
                true
            } else {
                false
            }
        };
        if first {
            // Tamper-induced poison discards the cache without write-back:
            // the memory failed verification, so no further folds should
            // be issued on its behalf. (Never called with a shard lock
            // held — write-back failures inside cached paths propagate and
            // are caught at the next epoch close instead.)
            self.clear_cell_cache();
        }
    }

    /// Process one page of partition `pi` for the in-flight pass: fold its
    /// contribution into `cur.rs` (closing the epoch's reads) and into
    /// `next.ws` (opening the next epoch's writes). Untouched pages use the
    /// cached digest (§4.3); touched pages are re-read, and compacted as a
    /// side task (§4.3).
    fn process_page(&self, pi: usize, page_id: u64) -> Result<()> {
        let entry = self.get_entry(page_id)?;
        let mut page = entry.raw.lock();

        // Compaction side-task, before computing the contribution.
        if self.cfg.compact_during_verification && page.needs_compaction() {
            self.compact_locked(&mut page, page_id, &entry.scan)?;
        }

        // Short partition lock: read the page's cached digests. Dropping
        // the lock before the (expensive) contribution computation is safe
        // because the caller holds this partition's pass lock — no other
        // verifier can process it — and we hold the page lock, so every
        // protected op on this page (the writers of its scan state and the
        // delta-path folders) is blocked until we are done.
        let (touched, cached, cached_meta, cached_fp) = {
            let part = self.parts[pi].lock();
            let part_epoch = part.epoch;
            if !part.pages.contains_key(&page_id) {
                return Err(Error::PageNotFound(page_id));
            }
            if entry.scan.scan_epoch() != part_epoch {
                return Ok(()); // already processed in this pass
            }
            let meta = &part.pages[&page_id];
            (
                entry.scan.touched(),
                meta.cached,
                meta.cached_meta,
                meta.cached_fp,
            )
        };

        let (c_data, c_meta, c_fp, was_read) = if touched || !self.cfg.track_touched_pages {
            let mut c = SetDigest::ZERO;
            let mut n = 0u64;
            // Grouped cells contribute through their group element; a
            // group the host has corrupted beyond recomputation simply
            // contributes nothing, which the epoch close then flags.
            let mut scratch = Vec::new();
            let mut in_group: HashSet<SlotId> = HashSet::new();
            for group in page.groups() {
                if let Ok(tag) =
                    self.group_tag_from_page(&page, page_id, &group.slots, group.ts, &mut scratch)
                {
                    c.fold(&tag);
                    n += 1;
                }
                in_group.extend(group.slots.iter().copied());
            }
            let mut fp = [0u8; 32];
            for (slot, data, ts) in page.iter_live() {
                // Every live cell contributes to the logical fingerprint,
                // grouped or not — the fingerprint witnesses *contents*,
                // the digests witness integrity.
                let h = veridb_enclave::mac::sha256(&[b"cell-fp", data]);
                for (a, b) in fp.iter_mut().zip(h.iter()) {
                    *a ^= b;
                }
                if in_group.contains(&slot) {
                    continue;
                }
                let addr = CellAddr {
                    page: page_id,
                    slot,
                }
                .proto();
                c.fold(&self.prf.tag(addr, KIND_DATA, data, ts));
                n += 1;
            }
            let mut cm = SetDigest::ZERO;
            if self.cfg.verify_metadata {
                for slot in 0..page.slot_count() {
                    let addr = CellAddr {
                        page: page_id,
                        slot,
                    }
                    .proto();
                    let entry = page.slot_entry_bytes(slot);
                    cm.fold(&self.prf.tag(addr, KIND_META, &entry, page.meta_ts(slot)));
                    n += 1;
                }
            }
            self.enclave.cost().charge_prf(n);
            self.enclave.cost().charge_page_scan();
            (c, cm, fp, true)
        } else {
            (cached, cached_meta, cached_fp, false)
        };

        // Re-acquire the partition lock only for the folds and the state
        // flip; the page's state is unchanged since the read above (see
        // the safety note there). The scan-state flip happens with both
        // the page lock and the partition lock held, so an op's
        // touch_and_capture (page lock) can never interleave with it.
        let mut part = self.parts[pi].lock();
        part.cur.rs.fold(&c_data);
        part.next.ws.fold(&c_data);
        if self.cfg.verify_metadata {
            part.meta_cur.rs.fold(&c_meta);
            part.meta_next.ws.fold(&c_meta);
        }
        let epoch = part.epoch;
        let meta = part.pages.get_mut(&page_id).expect("checked above");
        meta.cached = c_data;
        meta.cached_meta = c_meta;
        meta.cached_fp = c_fp;
        entry.scan.clear_touched();
        entry.scan.set_scan_epoch(epoch + 1);
        let _ = was_read;
        Ok(())
    }

    /// Try to close partition `pi`'s epoch; no-op if pages are pending.
    fn try_close_epoch(&self, pi: usize) -> Result<bool> {
        let mut part = self.parts[pi].lock();
        if part.next_pending_page().is_some() {
            return Ok(false);
        }
        // Reconcile every live thread-local delta before the consistency
        // check: any fold destined for the closing epoch is already in its
        // slot (ops fold before releasing the page lock, and every page of
        // this partition was processed under its page lock), so draining
        // here completes `cur` exactly as the serial fold would have.
        // Lock order: partition → slot registry → slot.
        let slots: Vec<Arc<DeltaSlot>> = self.delta_slots.lock().clone();
        for slot in &slots {
            for (se, b) in slot.drain_partition(pi) {
                delta::apply_bucket(&mut part, se, &b);
                if let Some(m) = self.met() {
                    m.delta_merges.inc();
                }
            }
        }
        let epoch = part.epoch;
        let lag = part.ops_since_close;
        if !part.close_epoch() {
            drop(part);
            let e = Error::VerificationFailed {
                partition: pi,
                epoch,
            };
            self.record_failure(&e);
            return Err(e);
        }
        drop(part);
        if let Some(m) = self.met() {
            m.epoch_closes.inc();
            // Idle partitions close with zero accumulated ops constantly;
            // sampling only busy closes keeps the lag distribution about
            // actual verification debt.
            if lag > 0 {
                m.verification_lag_ops.record(lag);
            }
        }
        Ok(true)
    }

    /// One unit of background-verifier work: scan a single page, closing
    /// partition epochs as passes complete. Returns `true` if a page was
    /// processed. Safe to call from multiple verifier threads (§3.3's
    /// "multiple verifiers"); work distribution is round-robin.
    pub fn scan_step(&self) -> Result<bool> {
        // Only time the step when someone will read the number.
        let t0 = self.met().map(|_| std::time::Instant::now());
        let result = self.scan_step_inner();
        if let (Some(m), Some(t0)) = (self.met(), t0) {
            m.scan_steps.inc();
            m.scan_step_ns.record(t0.elapsed().as_nanos() as u64);
        }
        result
    }

    fn scan_step_inner(&self) -> Result<bool> {
        let pi = self.scan_cursor.fetch_add(1, Ordering::Relaxed) % self.parts.len();
        for offset in 0..self.parts.len() {
            let pi = (pi + offset) % self.parts.len();
            let _pass = self.scan_locks[pi].lock();
            let pending = { self.parts[pi].lock().next_pending_page() };
            if let Some(page_id) = pending {
                self.process_page(pi, page_id)?;
                return Ok(true);
            }
            self.try_close_epoch(pi)?;
        }
        Ok(false)
    }

    /// Run one complete pass over a single partition: process every
    /// pending page, then close the epoch. Holds the partition's pass
    /// lock throughout, so concurrent passes never double-close.
    fn run_partition_pass(&self, pi: usize) -> Result<(u64, u64)> {
        let _pass = self.scan_locks[pi].lock();
        let mut pages_processed = 0u64;
        let mut pages_read = 0u64;
        loop {
            let pending = { self.parts[pi].lock().next_pending_page() };
            match pending {
                Some(page_id) => {
                    let before = self.enclave.cost().snapshot().pages_scanned;
                    self.process_page(pi, page_id)?;
                    let after = self.enclave.cost().snapshot().pages_scanned;
                    pages_processed += 1;
                    pages_read += after - before;
                }
                None => break,
            }
        }
        self.try_close_epoch(pi)?;
        Ok((pages_processed, pages_read))
    }

    /// Run one complete verification pass over every partition,
    /// synchronously, with the configured number of concurrent verifiers
    /// (`MemConfig::workers`). Returns a report, or the first verification
    /// failure.
    pub fn verify_now(&self) -> Result<VerifyReport> {
        self.verify_now_parallel(self.cfg.workers.max(1))
    }

    /// Verify with `threads` concurrent verifiers over disjoint
    /// partitions — the paper's §3.3 deployment option ("multiple
    /// verifiers may be employed to verify different (disjoint) sections
    /// of the memory for performance purposes").
    pub fn verify_now_parallel(&self, threads: usize) -> Result<VerifyReport> {
        // Drain the cell cache first: every absorbed write is folded into
        // the digests before the pass, so the verified state reflects the
        // latest writes and `h(RS) = h(WS)` balances with an empty cache.
        self.drain_cell_cache()?;
        let threads = threads.clamp(1, self.parts.len());
        let totals = Mutex::new((0u64, 0u64));
        let first_err: Mutex<Option<Error>> = Mutex::new(None);
        let next = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let pi = next.fetch_add(1, Ordering::Relaxed) as usize;
                    if pi >= self.parts.len() {
                        return;
                    }
                    match self.run_partition_pass(pi) {
                        Ok((p, r)) => {
                            let mut t = totals.lock();
                            t.0 += p;
                            t.1 += r;
                        }
                        Err(e) => {
                            let mut slot = first_err.lock();
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                        }
                    }
                });
            }
        });
        if let Some(e) = first_err.into_inner() {
            return Err(e);
        }
        let (pages_processed, pages_read) = totals.into_inner();
        let mut epochs = Vec::with_capacity(self.parts.len());
        let mut fingerprint = [0u8; 32];
        for p in self.parts.iter() {
            let part = p.lock();
            epochs.push(part.epoch);
            // Every page was just processed (or carried a still-valid
            // cached value), so XOR-ing the per-page fingerprints yields
            // the whole memory's.
            for meta in part.pages.values() {
                for (a, b) in fingerprint.iter_mut().zip(meta.cached_fp.iter()) {
                    *a ^= b;
                }
            }
        }
        Ok(VerifyReport {
            pages_processed,
            pages_read,
            epochs,
            fingerprint,
        })
    }

    // ---- tampering surface (attack tests) -----------------------------------

    /// Run `f` with direct mutable access to a page's raw state, bypassing
    /// every protection — this is the adversarial host's power. Test-only
    /// by convention; hidden from docs.
    #[doc(hidden)]
    pub fn with_page_mut<R>(&self, page: u64, f: impl FnOnce(&mut RawPage) -> R) -> Result<R> {
        let p = self.get_page(page)?;
        let mut g = p.lock();
        Ok(f(&mut g))
    }
}

impl std::fmt::Debug for VerifiedMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifiedMemory")
            .field("pages", &self.page_count())
            .field("partitions", &self.parts.len())
            .field("poisoned", &self.poisoned.lock().is_some())
            .finish()
    }
}

/// A worker's handle for shared-nothing verified execution
/// ([`VerifiedMemory::delta_handle`]): a private digest-delta slot plus a
/// private timestamp-block allocator. One per worker per morsel is the
/// intended granularity — allocate at morsel claim, drop (= merge) at
/// morsel completion. The handle is `Send`, so it can ride inside a
/// scan/cursor that migrates between pool threads.
pub struct DeltaHandle {
    mem: Arc<VerifiedMemory>,
    pub(crate) slot: Arc<DeltaSlot>,
    pub(crate) ts: TsAlloc,
}

impl DeltaHandle {
    /// Merge all accumulated folds into their partitions now. The handle
    /// stays usable; remaining block timestamps stay reserved.
    pub fn merge(&mut self) {
        self.mem.merge_slot(&self.slot);
    }

    /// Whether any folds are pending (un-merged).
    pub fn is_pending(&self) -> bool {
        !self.slot.is_empty()
    }
}

impl Drop for DeltaHandle {
    fn drop(&mut self) {
        // Merge the remainder, then deregister the slot. An epoch close
        // that raced us may have drained it already — merge_slot on an
        // empty slot is a no-op per partition list, so this is safe either
        // way. Abandoned timestamps in the block remainder were never
        // folded and are never re-issued, so no digest references them.
        self.mem.merge_slot(&self.slot);
        self.mem
            .delta_slots
            .lock()
            .retain(|s| !Arc::ptr_eq(s, &self.slot));
    }
}

impl std::fmt::Debug for DeltaHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeltaHandle")
            .field("pending", &self.is_pending())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridb_common::PrfBackend;

    fn cfg() -> MemConfig {
        MemConfig {
            page_size: 1024,
            partitions: 4,
            verify_rsws: true,
            verify_metadata: false,
            verify_every_ops: None,
            track_touched_pages: true,
            compact_during_verification: true,
            prf: PrfBackend::HmacSha256,
            metrics: true,
            workers: 1,
            // The digest/PRF-accounting tests below assert exact fold and
            // element counts of the raw protocol; cache-specific tests
            // enable the cache explicitly.
            cell_cache_bytes: 0,
        }
    }

    fn mem_with(f: impl FnOnce(&mut MemConfig)) -> Arc<VerifiedMemory> {
        let mut c = cfg();
        f(&mut c);
        let enclave = Enclave::create("mem-test", 1 << 22, [3u8; 32]);
        VerifiedMemory::new(enclave, c)
    }

    fn mem() -> Arc<VerifiedMemory> {
        mem_with(|_| {})
    }

    #[test]
    fn insert_read_write_delete_cycle_verifies() {
        let m = mem();
        let p = m.allocate_page();
        let a = m.insert_in(p, b"one").unwrap();
        let b = m.insert_in(p, b"two").unwrap();
        assert_eq!(m.read(a).unwrap(), b"one");
        m.write(b, b"two-updated").unwrap();
        assert_eq!(m.read(b).unwrap(), b"two-updated");
        m.delete(a).unwrap();
        assert!(matches!(m.read(a), Err(Error::SlotNotFound { .. })));
        let report = m.verify_now().unwrap();
        assert!(report.pages_processed >= 1);
        // Multiple epochs in a row stay consistent.
        for _ in 0..3 {
            m.read(b).unwrap();
            m.verify_now().unwrap();
        }
    }

    #[test]
    fn released_pages_are_reused_not_reminted() {
        let m = mem();
        let p = m.allocate_page();
        let a = m.insert_in(p, b"scratch").unwrap();

        // A page with live cells refuses to be released.
        assert!(matches!(m.release_page(p), Err(Error::InvalidArgument(_))));

        m.delete(a).unwrap();
        m.release_page(p).unwrap();
        m.release_page(p).unwrap(); // double release is a no-op
        assert_eq!(m.free_page_count(), 1);
        let before = m.page_count();

        // The next allocation hands the same id back out and the page is
        // fully usable again.
        let p2 = m.allocate_page();
        assert_eq!(p2, p);
        assert_eq!(m.page_count(), before);
        assert_eq!(m.free_page_count(), 0);
        let b = m.insert_in(p2, b"recycled").unwrap();
        assert_eq!(m.read(b).unwrap(), b"recycled");
        m.verify_now().unwrap();
    }

    #[test]
    fn verification_lag_accumulates_and_resets_on_close() {
        let m = mem();
        let p = m.allocate_page();
        let a = m.insert_in(p, b"x").unwrap();
        for _ in 0..5 {
            m.read(a).unwrap();
        }
        let lag_before: u64 = m.verification_lag().iter().map(|&(_, ops)| ops).sum();
        assert!(lag_before >= 6); // insert + 5 reads
        m.verify_now().unwrap();
        let lag_after: u64 = m.verification_lag().iter().map(|&(_, ops)| ops).sum();
        assert_eq!(lag_after, 0);
        let snap = m.enclave().metrics_snapshot();
        assert!(snap.epoch_closes >= 1);
        assert!(snap.verification_lag_ops.sum >= lag_before);
        assert!(snap.protected_reads >= 5);
        assert!(snap.protected_inserts >= 1);
    }

    #[test]
    fn metrics_switch_off_leaves_registry_untouched() {
        let m = mem_with(|c| c.metrics = false);
        assert!(m.metrics().is_none());
        let p = m.allocate_page();
        let a = m.insert_in(p, b"quiet").unwrap();
        m.read(a).unwrap();
        m.verify_now().unwrap();
        let snap = m.enclave().metrics_snapshot();
        assert_eq!(snap.protected_reads, 0);
        assert_eq!(snap.epoch_closes, 0);
        // The always-on cost substrate still reports through the merge.
        assert!(snap.prf_evals > 0);
    }

    #[test]
    fn metadata_mode_full_cycle_verifies() {
        let m = mem_with(|c| c.verify_metadata = true);
        let p = m.allocate_page();
        let a = m.insert_in(p, b"alpha").unwrap();
        let b = m.insert_in(p, b"beta").unwrap();
        m.read(a).unwrap();
        m.write(a, b"alpha-longer-payload-forcing-relocation")
            .unwrap();
        m.delete(b).unwrap();
        // Reuse the tombstoned slot.
        let c2 = m.insert_in(p, b"gamma").unwrap();
        assert_eq!(c2.slot, b.slot);
        m.verify_now().unwrap();
        m.read(c2).unwrap();
        m.verify_now().unwrap();
    }

    #[test]
    fn eager_compaction_mode_verifies() {
        let m = mem_with(|c| c.compact_during_verification = false);
        let p = m.allocate_page();
        let mut addrs = Vec::new();
        for i in 0..12 {
            addrs.push(m.insert_in(p, format!("record-{i:02}").as_bytes()).unwrap());
        }
        // Delete every other record: each delete eagerly compacts.
        for a in addrs.iter().step_by(2) {
            m.delete(*a).unwrap();
        }
        for a in addrs.iter().skip(1).step_by(2) {
            assert!(m.read(*a).unwrap().starts_with(b"record-"));
        }
        m.verify_now().unwrap();
    }

    #[test]
    fn eager_compaction_with_metadata_verifies() {
        let m = mem_with(|c| {
            c.compact_during_verification = false;
            c.verify_metadata = true;
        });
        let p = m.allocate_page();
        let mut addrs = Vec::new();
        for i in 0..10 {
            addrs.push(m.insert_in(p, format!("rec-{i}").as_bytes()).unwrap());
        }
        for a in addrs.iter().step_by(2) {
            m.delete(*a).unwrap();
        }
        m.verify_now().unwrap();
    }

    #[test]
    fn spill_across_pages_with_on_demand_compaction() {
        let m = mem();
        let p = m.allocate_page();
        let mut addrs = Vec::new();
        loop {
            match m.insert_in(p, &[0xAB; 100]) {
                Ok(a) => addrs.push(a),
                Err(Error::PageFull { .. }) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        // Free up holes, then insert again: on-demand compaction kicks in.
        let n = addrs.len();
        assert!(n >= 4);
        m.delete(addrs[0]).unwrap();
        m.delete(addrs[2]).unwrap();
        let re = m.insert_in(p, &[0xCD; 150]).unwrap();
        assert_eq!(m.read(re).unwrap(), vec![0xCD; 150]);
        m.verify_now().unwrap();
    }

    #[test]
    fn move_cell_across_pages_and_partitions() {
        let m = mem();
        let p1 = m.allocate_page();
        let p2 = m.allocate_page(); // different partition (ids 1 and 2 mod 4)
        let a = m.insert_in(p1, b"wanderer").unwrap();
        let b = m.move_cell(a, p2).unwrap();
        assert_eq!(b.page, p2);
        assert_eq!(m.read(b).unwrap(), b"wanderer");
        assert!(matches!(m.read(a), Err(Error::SlotNotFound { .. })));
        m.verify_now().unwrap();
    }

    #[test]
    fn move_cell_with_metadata_verifies() {
        let m = mem_with(|c| c.verify_metadata = true);
        let p1 = m.allocate_page();
        let p2 = m.allocate_page();
        let a = m.insert_in(p1, b"payload").unwrap();
        let b = m.move_cell(a, p2).unwrap();
        m.read(b).unwrap();
        m.verify_now().unwrap();
    }

    #[test]
    fn baseline_mode_skips_all_digest_work() {
        let m = mem_with(|c| c.verify_rsws = false);
        let p = m.allocate_page();
        let a = m.insert_in(p, b"x").unwrap();
        m.read(a).unwrap();
        m.write(a, b"y").unwrap();
        m.delete(a).unwrap();
        let costs = m.enclave().cost().snapshot();
        assert_eq!(costs.prf_evals, 0);
        // verify_now over empty enclave state trivially passes.
        m.verify_now().unwrap();
    }

    #[test]
    fn page_full_reported_for_oversized_cell() {
        let m = mem();
        let p = m.allocate_page();
        let huge = vec![0u8; 2000];
        assert!(matches!(m.insert_in(p, &huge), Err(Error::PageFull { .. })));
        // Failed insert must not corrupt the digests.
        m.verify_now().unwrap();
    }

    #[test]
    fn failed_growing_write_leaves_digests_consistent() {
        let m = mem();
        let p = m.allocate_page();
        let a = m.insert_in(p, b"small").unwrap();
        // Fill the page so the grow cannot relocate.
        while m.insert_in(p, &[0xEE; 90]).is_ok() {}
        let grown = vec![0u8; 500];
        assert!(m.write(a, &grown).is_err());
        assert_eq!(m.read(a).unwrap(), b"small");
        m.verify_now().unwrap();
    }

    #[test]
    fn many_pages_across_partitions_verify() {
        let m = mem();
        let mut addrs = Vec::new();
        for i in 0..16 {
            let p = m.allocate_page();
            for j in 0..5 {
                addrs.push(m.insert_in(p, format!("{i}-{j}").as_bytes()).unwrap());
            }
        }
        for a in &addrs {
            m.read(*a).unwrap();
        }
        let report = m.verify_now().unwrap();
        assert_eq!(report.pages_processed, 16);
        assert_eq!(report.epochs, vec![1, 1, 1, 1]);
    }

    #[test]
    fn untouched_pages_use_cached_digest() {
        let m = mem();
        let p1 = m.allocate_page();
        let p2 = m.allocate_page();
        let a = m.insert_in(p1, b"hot").unwrap();
        let _b = m.insert_in(p2, b"cold").unwrap();
        m.verify_now().unwrap();
        // Touch only p1.
        m.read(a).unwrap();
        let report = m.verify_now().unwrap();
        assert_eq!(report.pages_processed, 2);
        assert_eq!(report.pages_read, 1, "cold page must use its cache");
    }

    #[test]
    fn track_touched_disabled_reads_everything() {
        let m = mem_with(|c| c.track_touched_pages = false);
        let p1 = m.allocate_page();
        let p2 = m.allocate_page();
        m.insert_in(p1, b"a").unwrap();
        m.insert_in(p2, b"b").unwrap();
        m.verify_now().unwrap();
        let report = m.verify_now().unwrap();
        assert_eq!(report.pages_read, 2, "full-scan mode re-reads all pages");
    }

    #[test]
    fn scan_step_interleaved_with_ops() {
        let m = mem();
        let p = m.allocate_page();
        let a = m.insert_in(p, b"interleaved").unwrap();
        // Drive scan steps manually, interleaving reads.
        for _ in 0..40 {
            m.read(a).unwrap();
            m.scan_step().unwrap();
        }
        m.verify_now().unwrap();
    }

    #[test]
    fn concurrent_ops_with_concurrent_scans_stay_consistent() {
        let m = mem_with(|c| c.partitions = 8);
        let pages: Vec<u64> = (0..8).map(|_| m.allocate_page()).collect();
        let mut addrs = Vec::new();
        for &p in &pages {
            for j in 0..4 {
                addrs.push(m.insert_in(p, format!("seed-{p}-{j}").as_bytes()).unwrap());
            }
        }
        let stop = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..4 {
            let m = Arc::clone(&m);
            let addrs = addrs.clone();
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut i = t;
                while stop.load(Ordering::Relaxed) == 0 {
                    let a = addrs[i % addrs.len()];
                    let _ = m.read(a);
                    let _ = m.write(a, format!("w{t}-{i}").as_bytes());
                    i += 7;
                }
            }));
        }
        // Scanner thread races the workers.
        let scanner = {
            let m = Arc::clone(&m);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while stop.load(Ordering::Relaxed) == 0 {
                    m.scan_step().unwrap();
                }
            })
        };
        // Let the race run until the workers have pushed a meaningful
        // amount of traffic through (bounded backoff, not a fixed sleep).
        let _ = veridb_common::backoff::Backoff::wait_for(
            || {
                m.metrics()
                    .is_some_and(|mm| mm.protected_reads.get() >= 5_000)
            },
            2_000,
        );
        stop.store(1, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        scanner.join().unwrap();
        m.verify_now().unwrap();
        assert!(m.poisoned().is_none());
    }

    // ---- batched operations ------------------------------------------------

    #[test]
    fn read_page_batch_matches_single_reads() {
        let m = mem();
        let p = m.allocate_page();
        let addrs: Vec<CellAddr> = (0..8)
            .map(|i| m.insert_in(p, format!("cell-{i}").as_bytes()).unwrap())
            .collect();
        let slots: Vec<_> = addrs.iter().map(|a| a.slot).collect();
        let mut batch = ReadBatch::new();
        m.read_page_batch(p, &slots, &mut batch).unwrap();
        assert_eq!(batch.len(), addrs.len());
        for (i, (slot, data)) in batch.iter().enumerate() {
            assert_eq!(slot, addrs[i].slot);
            assert_eq!(data, format!("cell-{i}").as_bytes());
        }
        // The batch folded reads + write-backs exactly like single reads
        // would: interleave both paths and the digests must still balance.
        for a in &addrs {
            m.read(*a).unwrap();
        }
        m.read_page_batch(p, &slots, &mut batch).unwrap();
        m.verify_now().unwrap();
        m.read_page_batch(p, &slots, &mut batch).unwrap();
        m.verify_now().unwrap();
    }

    #[test]
    fn read_page_batch_skips_dead_slots() {
        let m = mem();
        let p = m.allocate_page();
        let addrs: Vec<CellAddr> = (0..6)
            .map(|i| m.insert_in(p, format!("v{i}").as_bytes()).unwrap())
            .collect();
        m.delete(addrs[2]).unwrap();
        m.delete(addrs[4]).unwrap();
        let slots: Vec<_> = addrs.iter().map(|a| a.slot).collect();
        let mut batch = ReadBatch::new();
        m.read_page_batch(p, &slots, &mut batch).unwrap();
        let got: Vec<SlotId> = batch.iter().map(|(s, _)| s).collect();
        let want: Vec<SlotId> = [0usize, 1, 3, 5].iter().map(|&i| addrs[i].slot).collect();
        assert_eq!(got, want, "dead slots are skipped, order preserved");
        // Nothing was folded for the dead slots: digests still balance.
        m.verify_now().unwrap();
        // An all-dead request is an empty (but successful) batch.
        m.read_page_batch(p, &[addrs[2].slot, addrs[4].slot], &mut batch)
            .unwrap();
        assert!(batch.is_empty());
        m.verify_now().unwrap();
    }

    #[test]
    fn read_page_batch_with_metadata_verifies() {
        let m = mem_with(|c| c.verify_metadata = true);
        let p = m.allocate_page();
        let addrs: Vec<CellAddr> = (0..5)
            .map(|i| m.insert_in(p, format!("m{i}").as_bytes()).unwrap())
            .collect();
        let slots: Vec<_> = addrs.iter().map(|a| a.slot).collect();
        let mut batch = ReadBatch::new();
        for _ in 0..3 {
            m.read_page_batch(p, &slots, &mut batch).unwrap();
            assert_eq!(batch.len(), 5);
        }
        m.verify_now().unwrap();
    }

    #[test]
    fn read_page_batch_unknown_page_fails_cleanly() {
        let m = mem();
        let mut batch = ReadBatch::new();
        assert!(matches!(
            m.read_page_batch(999, &[0], &mut batch),
            Err(Error::PageNotFound(999))
        ));
        m.verify_now().unwrap();
    }

    #[test]
    fn write_page_batch_applies_all_and_verifies() {
        let m = mem_with(|c| c.verify_metadata = true);
        let p = m.allocate_page();
        let addrs: Vec<CellAddr> = (0..6)
            .map(|i| m.insert_in(p, format!("old-{i}").as_bytes()).unwrap())
            .collect();
        let payloads: Vec<Vec<u8>> = (0..6).map(|i| format!("new-{i}").into_bytes()).collect();
        let writes: Vec<(SlotId, &[u8])> = addrs
            .iter()
            .zip(&payloads)
            .map(|(a, d)| (a.slot, d.as_slice()))
            .collect();
        m.write_page_batch(p, &writes).unwrap();
        for (i, a) in addrs.iter().enumerate() {
            assert_eq!(m.read(*a).unwrap(), format!("new-{i}").as_bytes());
        }
        m.verify_now().unwrap();
    }

    #[test]
    fn write_page_batch_partial_failure_keeps_digests_consistent() {
        let m = mem();
        let p = m.allocate_page();
        let a = m.insert_in(p, b"first").unwrap();
        let b = m.insert_in(p, b"second").unwrap();
        // Fill the page so a growing write cannot relocate.
        while m.insert_in(p, &[0xEE; 90]).is_ok() {}
        let grown = vec![0u8; 600];
        let writes: Vec<(SlotId, &[u8])> =
            vec![(a.slot, b"first-2"), (b.slot, &grown), (a.slot, b"never")];
        // The second write fails; the first was applied, the third never ran.
        assert!(m.write_page_batch(p, &writes).is_err());
        assert_eq!(m.read(a).unwrap(), b"first-2");
        assert_eq!(m.read(b).unwrap(), b"second");
        // The folded prefix matches the mutated cells exactly.
        m.verify_now().unwrap();
    }

    #[test]
    fn repeated_batch_reads_cost_two_prfs_per_round() {
        // Steady-state sequential scanning is the whole point of the
        // coalesced group element: after the first batch established the
        // group, every repeat is one consume + one re-insert, independent
        // of how many cells the batch covers.
        let m = mem();
        let p = m.allocate_page();
        let slots: Vec<SlotId> = (0..16)
            .map(|i| {
                m.insert_in(p, format!("cell-{i:02}").as_bytes())
                    .unwrap()
                    .slot
            })
            .collect();
        let mut batch = ReadBatch::new();
        m.read_page_batch(p, &slots, &mut batch).unwrap();
        let before = m.enclave.cost().snapshot();
        for _ in 0..4 {
            m.read_page_batch(p, &slots, &mut batch).unwrap();
            assert_eq!(batch.len(), 16);
        }
        let spent = m.enclave.cost().snapshot().since(&before);
        assert_eq!(spent.prf_evals, 8, "2 PRFs per repeated batch, not 2*16");
        m.verify_now().unwrap();
    }

    #[test]
    fn point_ops_dissolve_group_and_verify() {
        let m = mem();
        let p = m.allocate_page();
        let addrs: Vec<CellAddr> = (0..6)
            .map(|i| m.insert_in(p, format!("g{i}").as_bytes()).unwrap())
            .collect();
        let slots: Vec<_> = addrs.iter().map(|a| a.slot).collect();
        let mut batch = ReadBatch::new();
        m.read_page_batch(p, &slots, &mut batch).unwrap();
        // Each point primitive must first break the covering group back
        // into singletons, otherwise its RS consume would not match the
        // outstanding group element.
        assert_eq!(m.read(addrs[0]).unwrap(), b"g0");
        m.write(addrs[1], b"g1-updated").unwrap();
        m.delete(addrs[2]).unwrap();
        m.verify_now().unwrap();
        // And the survivors are still readable through both paths.
        m.read_page_batch(p, &[addrs[3].slot, addrs[4].slot], &mut batch)
            .unwrap();
        assert_eq!(m.read(addrs[5]).unwrap(), b"g5");
        m.verify_now().unwrap();
    }

    #[test]
    fn overlapping_and_partial_batches_verify() {
        let m = mem();
        let p = m.allocate_page();
        let slots: Vec<SlotId> = (0..8)
            .map(|i| m.insert_in(p, format!("ov{i}").as_bytes()).unwrap().slot)
            .collect();
        let mut batch = ReadBatch::new();
        // Establish a group over the first half, then request a window
        // straddling grouped and ungrouped cells: the old group dissolves
        // (outside members re-singletonized) and a new group forms.
        m.read_page_batch(p, &slots[0..4], &mut batch).unwrap();
        m.read_page_batch(p, &slots[2..6], &mut batch).unwrap();
        assert_eq!(batch.len(), 4);
        // A strict subset of the current group also dissolves it.
        m.read_page_batch(p, &slots[3..4], &mut batch).unwrap();
        assert_eq!(batch.len(), 1);
        m.verify_now().unwrap();
    }

    #[test]
    fn duplicate_slots_in_batch_are_deduped() {
        let m = mem();
        let p = m.allocate_page();
        let a = m.insert_in(p, b"once").unwrap();
        let b = m.insert_in(p, b"twice").unwrap();
        let mut batch = ReadBatch::new();
        m.read_page_batch(p, &[a.slot, b.slot, a.slot, a.slot], &mut batch)
            .unwrap();
        assert_eq!(batch.len(), 2, "each cell appears once in the result");
        m.verify_now().unwrap();
    }

    #[test]
    fn groups_survive_compaction() {
        let m = mem();
        let p = m.allocate_page();
        let addrs: Vec<CellAddr> = (0..7)
            .map(|_| m.insert_in(p, &[0x42; 100]).unwrap())
            .collect();
        // Group the tail cells, then punch holes in front of them.
        let grouped: Vec<SlotId> = addrs[3..].iter().map(|a| a.slot).collect();
        let mut batch = ReadBatch::new();
        m.read_page_batch(p, &grouped, &mut batch).unwrap();
        m.delete(addrs[0]).unwrap();
        m.delete(addrs[1]).unwrap();
        m.delete(addrs[2]).unwrap();
        // Force an on-demand compaction; slot ids, data, and timestamps
        // are preserved, so the group element stays recomputable.
        let big = m.insert_in(p, &[0x77; 300]).unwrap();
        assert_eq!(m.read(big).unwrap(), vec![0x77; 300]);
        m.read_page_batch(p, &grouped, &mut batch).unwrap();
        assert_eq!(batch.len(), grouped.len());
        m.verify_now().unwrap();
    }

    #[test]
    fn move_cell_out_of_group_verifies() {
        let m = mem();
        let src = m.allocate_page();
        let dst = m.allocate_page();
        let addrs: Vec<CellAddr> = (0..4)
            .map(|i| m.insert_in(src, format!("mv{i}").as_bytes()).unwrap())
            .collect();
        let slots: Vec<_> = addrs.iter().map(|a| a.slot).collect();
        let mut batch = ReadBatch::new();
        m.read_page_batch(src, &slots, &mut batch).unwrap();
        let moved = m.move_cell(addrs[1], dst).unwrap();
        assert_eq!(m.read(moved).unwrap(), b"mv1");
        m.verify_now().unwrap();
    }

    #[test]
    fn batch_write_over_group_verifies() {
        let m = mem();
        let p = m.allocate_page();
        let addrs: Vec<CellAddr> = (0..5)
            .map(|i| m.insert_in(p, format!("bw{i}").as_bytes()).unwrap())
            .collect();
        let slots: Vec<_> = addrs.iter().map(|a| a.slot).collect();
        let mut batch = ReadBatch::new();
        m.read_page_batch(p, &slots, &mut batch).unwrap();
        let writes: Vec<(SlotId, &[u8])> =
            vec![(addrs[1].slot, b"bw1-new"), (addrs[3].slot, b"bw3-new")];
        m.write_page_batch(p, &writes).unwrap();
        assert_eq!(m.read(addrs[1]).unwrap(), b"bw1-new");
        assert_eq!(m.read(addrs[0]).unwrap(), b"bw0");
        m.verify_now().unwrap();
    }

    #[test]
    fn grouped_batches_verify_with_metadata_mode() {
        let m = mem_with(|c| c.verify_metadata = true);
        let p = m.allocate_page();
        let slots: Vec<SlotId> = (0..6)
            .map(|i| m.insert_in(p, format!("md{i}").as_bytes()).unwrap().slot)
            .collect();
        let mut batch = ReadBatch::new();
        for _ in 0..3 {
            m.read_page_batch(p, &slots, &mut batch).unwrap();
        }
        m.write(
            CellAddr {
                page: p,
                slot: slots[2],
            },
            b"md2-upd",
        )
        .unwrap();
        m.verify_now().unwrap();
    }

    /// Writers, batched readers, and a verifier pool all racing: the
    /// epoch digests must still balance at the end, and no verification
    /// alarm may fire on an honest history.
    #[test]
    fn threaded_stress_batched_readers_writers_and_verifier_pool() {
        let m = mem_with(|c| {
            c.partitions = 8;
            c.verify_every_ops = Some(25);
        });
        let v = crate::verifier::BackgroundVerifier::spawn_pool(Arc::clone(&m), 2);
        let pages: Vec<u64> = (0..8).map(|_| m.allocate_page()).collect();
        let mut by_page: Vec<(u64, Vec<CellAddr>)> = Vec::new();
        for &p in &pages {
            let addrs = (0..6)
                .map(|j| m.insert_in(p, format!("seed-{p}-{j}").as_bytes()).unwrap())
                .collect();
            by_page.push((p, addrs));
        }
        let stop = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        // Writers: single-cell and batched overwrites.
        for t in 0..2 {
            let m = Arc::clone(&m);
            let by_page = by_page.clone();
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut i = t;
                while stop.load(Ordering::Relaxed) == 0 {
                    let (page, addrs) = &by_page[i % by_page.len()];
                    if i % 2 == 0 {
                        let data = format!("w{t}-{i}");
                        let writes: Vec<(SlotId, &[u8])> =
                            addrs.iter().map(|a| (a.slot, data.as_bytes())).collect();
                        let _ = m.write_page_batch(*page, &writes);
                    } else {
                        let _ = m.write(addrs[i % addrs.len()], format!("s{t}-{i}").as_bytes());
                    }
                    i += 3;
                }
            }));
        }
        // Batched readers.
        for t in 0..2 {
            let m = Arc::clone(&m);
            let by_page = by_page.clone();
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut batch = ReadBatch::new();
                let mut i = t;
                while stop.load(Ordering::Relaxed) == 0 {
                    let (page, addrs) = &by_page[i % by_page.len()];
                    let slots: Vec<_> = addrs.iter().map(|a| a.slot).collect();
                    m.read_page_batch(*page, &slots, &mut batch).unwrap();
                    assert_eq!(batch.len(), slots.len());
                    i += 5;
                }
            }));
        }
        // Run the batched race until the readers have covered enough cells.
        let _ = veridb_common::backoff::Backoff::wait_for(
            || {
                m.metrics()
                    .is_some_and(|mm| mm.batched_read_cells.get() >= 5_000)
            },
            2_000,
        );
        stop.store(1, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert!(v.stop().is_none(), "honest run must not alarm");
        m.verify_now().unwrap();
        assert!(m.poisoned().is_none());
    }

    // ---- shared-nothing delta handles --------------------------------------

    #[test]
    fn delta_batched_reads_match_direct_folds_and_verify() {
        let m = mem();
        let p = m.allocate_page();
        let slots: Vec<SlotId> = (0..8)
            .map(|i| m.insert_in(p, format!("d{i}").as_bytes()).unwrap().slot)
            .collect();
        let mut batch = ReadBatch::new();
        let mut h = m.delta_handle();
        for _ in 0..3 {
            m.read_page_batch_delta(p, &slots, &mut batch, &mut h)
                .unwrap();
            assert_eq!(batch.len(), 8);
        }
        assert!(h.is_pending());
        h.merge();
        assert!(!h.is_pending());
        // Interleave with the shared path and a point read: the merged
        // folds must be indistinguishable from direct ones.
        m.read_page_batch(p, &slots, &mut batch).unwrap();
        m.read(CellAddr {
            page: p,
            slot: slots[0],
        })
        .unwrap();
        m.verify_now().unwrap();
    }

    #[test]
    fn dropping_delta_handle_merges_remainder() {
        let m = mem();
        let p = m.allocate_page();
        let slots: Vec<SlotId> = (0..4)
            .map(|i| m.insert_in(p, format!("r{i}").as_bytes()).unwrap().slot)
            .collect();
        let mut batch = ReadBatch::new();
        {
            let mut h = m.delta_handle();
            m.read_page_batch_delta(p, &slots, &mut batch, &mut h)
                .unwrap();
            assert!(h.is_pending());
            // Dropped without an explicit merge: Drop must fold the
            // remainder in, or the close below cannot balance.
        }
        m.verify_now().unwrap();
    }

    #[test]
    fn epoch_close_drains_live_delta_slots() {
        let m = mem();
        let p = m.allocate_page();
        let slots: Vec<SlotId> = (0..4)
            .map(|i| m.insert_in(p, format!("e{i}").as_bytes()).unwrap().slot)
            .collect();
        let mut batch = ReadBatch::new();
        let mut h = m.delta_handle();
        m.read_page_batch_delta(p, &slots, &mut batch, &mut h)
            .unwrap();
        assert!(h.is_pending());
        // The handle is live and unmerged: the close must drain its
        // registered slot or `h(RS) ≠ h(WS)`.
        m.verify_now().unwrap();
        assert!(!h.is_pending(), "close drained the slot");
        // The handle keeps working after a drain.
        m.read_page_batch_delta(p, &slots, &mut batch, &mut h)
            .unwrap();
        drop(h);
        m.verify_now().unwrap();
    }

    #[test]
    fn tamper_under_delta_reader_is_detected() {
        let m = mem();
        let p = m.allocate_page();
        let addrs: Vec<CellAddr> = (0..4)
            .map(|i| m.insert_in(p, format!("t{i}").as_bytes()).unwrap())
            .collect();
        let slots: Vec<_> = addrs.iter().map(|a| a.slot).collect();
        let mut batch = ReadBatch::new();
        let mut h = m.delta_handle();
        m.read_page_batch_delta(p, &slots, &mut batch, &mut h)
            .unwrap();
        crate::tamper::overwrite_cell(&m, addrs[2], b"ev").unwrap();
        drop(h);
        assert!(m.verify_now().is_err(), "forged cell must break the close");
        assert!(m.poisoned().is_some());
    }

    #[test]
    fn delta_counters_record_merges_and_blocks() {
        let m = mem();
        let p = m.allocate_page();
        let slots: Vec<SlotId> = (0..6)
            .map(|i| m.insert_in(p, format!("c{i}").as_bytes()).unwrap().slot)
            .collect();
        let mut batch = ReadBatch::new();
        let mut h = m.delta_handle();
        m.read_page_batch_delta(p, &slots, &mut batch, &mut h)
            .unwrap();
        h.merge();
        let met = m.metrics().unwrap();
        assert!(met.delta_merges.get() >= 1, "merge must be counted");
        assert!(
            met.ts_blocks_allocated.get() >= 1,
            "delta timestamps come from blocks"
        );
        m.verify_now().unwrap();
    }

    /// Per-worker delta handles racing the verification scanner: the
    /// shared-nothing path must produce the same always-balancing epochs
    /// the serial fold does (the tentpole's correctness claim).
    #[test]
    fn threaded_delta_readers_race_scan_and_stay_consistent() {
        let m = mem_with(|c| c.partitions = 8);
        let pages: Vec<u64> = (0..8).map(|_| m.allocate_page()).collect();
        let mut by_page: Vec<(u64, Vec<SlotId>)> = Vec::new();
        for &p in &pages {
            let slots = (0..6)
                .map(|j| {
                    m.insert_in(p, format!("sn-{p}-{j}").as_bytes())
                        .unwrap()
                        .slot
                })
                .collect();
            by_page.push((p, slots));
        }
        let stop = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..4 {
            let m = Arc::clone(&m);
            let by_page = by_page.clone();
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut h = m.delta_handle();
                let mut batch = ReadBatch::new();
                let mut i = t;
                while stop.load(Ordering::Relaxed) == 0 {
                    let (page, slots) = &by_page[i % by_page.len()];
                    m.read_page_batch_delta(*page, slots, &mut batch, &mut h)
                        .unwrap();
                    assert_eq!(batch.len(), slots.len());
                    if i % 17 == 0 {
                        h.merge(); // periodic morsel-completion merge
                    }
                    i += 5;
                }
            }));
        }
        let scanner = {
            let m = Arc::clone(&m);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while stop.load(Ordering::Relaxed) == 0 {
                    m.scan_step().unwrap();
                }
            })
        };
        let _ = veridb_common::backoff::Backoff::wait_for(
            || {
                m.metrics()
                    .is_some_and(|mm| mm.batched_read_cells.get() >= 5_000)
            },
            2_000,
        );
        stop.store(1, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        scanner.join().unwrap();
        m.verify_now().unwrap();
        assert!(m.poisoned().is_none());
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;
    use veridb_common::PrfBackend;

    /// Like the main test `cfg()`, but with the cell cache sized to
    /// `cache_bytes`.
    fn mem_cached(cache_bytes: usize) -> Arc<VerifiedMemory> {
        let enclave = Enclave::create("cache-test", 1 << 22, [21u8; 32]);
        VerifiedMemory::new(
            enclave,
            MemConfig {
                page_size: 1024,
                partitions: 4,
                verify_rsws: true,
                verify_metadata: false,
                verify_every_ops: None,
                track_touched_pages: true,
                compact_during_verification: true,
                prf: PrfBackend::HmacSha256,
                metrics: true,
                workers: 1,
                cell_cache_bytes: cache_bytes,
            },
        )
    }

    #[test]
    fn repeated_reads_hit_and_skip_protocol_work() {
        let m = mem_cached(1 << 20);
        let p = m.allocate_page();
        let a = m.insert_in(p, b"hot cell").unwrap();
        for _ in 0..10 {
            assert_eq!(m.read(a).unwrap(), b"hot cell");
        }
        let met = m.metrics().unwrap();
        // One miss (the fill), nine hits; only the fill ran the protocol.
        assert_eq!(met.protected_reads.get(), 1);
        assert_eq!(met.cache_misses.get(), 1);
        assert_eq!(met.cache_hits.get(), 9);
        let cache = m.cell_cache().unwrap();
        assert_eq!(cache.hit_stats(), (9, 1));
        assert_eq!(cache.hit_ratio_pct(), 90);
        assert!(cache.resident_bytes() > 0);
        m.verify_now().unwrap();
        assert!(m.poisoned().is_none());
    }

    #[test]
    fn absorbed_writes_are_served_and_flushed_on_drain() {
        let m = mem_cached(1 << 20);
        let p = m.allocate_page();
        let a = m.insert_in(p, b"original!").unwrap();
        assert_eq!(m.read(a).unwrap(), b"original!");
        // Fits the pinned capacity: absorbed in trusted memory, no
        // protected write.
        m.write(a, b"absorbed").unwrap();
        assert_eq!(m.read(a).unwrap(), b"absorbed");
        let met = m.metrics().unwrap();
        assert_eq!(met.protected_writes.get(), 0);
        m.drain_cell_cache().unwrap();
        assert!(m.cell_cache().unwrap().is_empty());
        assert_eq!(met.cache_writebacks.get(), 1);
        // The host copy now holds the absorbed payload; a fresh (miss)
        // read and a verification pass both agree.
        assert_eq!(m.read(a).unwrap(), b"absorbed");
        m.verify_now().unwrap();
        assert!(m.poisoned().is_none());
    }

    #[test]
    fn cached_reads_return_pinned_data_and_tamper_is_caught_at_scan() {
        let m = mem_cached(1 << 20);
        let p = m.allocate_page();
        let a = m.insert_in(p, b"honest value").unwrap();
        assert_eq!(m.read(a).unwrap(), b"honest value");
        crate::tamper::overwrite_cell(&m, a, b"forged val!!").unwrap();
        // The pinned copy is authoritative: the hit never sees the forgery.
        assert_eq!(m.read(a).unwrap(), b"honest value");
        // But the host copy no longer cancels its outstanding WS element,
        // so the next scan flags the partition.
        assert!(m.verify_now().is_err());
        assert!(m.poisoned().is_some());
        // Poisoning discarded the cache without folding anything back.
        assert!(m.cell_cache().unwrap().is_empty());
    }

    #[test]
    fn tamper_under_dirty_cached_cell_is_caught_at_drain() {
        let m = mem_cached(1 << 20);
        let p = m.allocate_page();
        let a = m.insert_in(p, b"honest value").unwrap();
        assert_eq!(m.read(a).unwrap(), b"honest value");
        m.write(a, b"dirty update").unwrap();
        crate::tamper::overwrite_cell(&m, a, b"forged val!!").unwrap();
        // The drain's write-back consumes the *forged* host bytes into RS,
        // which cannot cancel the honest outstanding element.
        assert!(m.verify_now().is_err());
        assert!(m.poisoned().is_some());
    }

    #[test]
    fn evicted_then_reread_tamper_is_caught_at_scan() {
        // Tiny budget: one minimal entry per shard, so the second fill on
        // the same page evicts the first.
        let m = mem_cached(1);
        let p = m.allocate_page();
        let a = m.insert_in(p, b"a").unwrap();
        let b = m.insert_in(p, b"b").unwrap();
        assert_eq!(m.read(a).unwrap(), b"a");
        assert_eq!(m.read(b).unwrap(), b"b"); // evicts `a` (clean, fold-free)
        assert_eq!(m.metrics().unwrap().cache_evictions.get(), 1);
        crate::tamper::overwrite_cell(&m, a, b"x").unwrap();
        // The re-read misses and folds the forged bytes into RS; the
        // outstanding element from the clean release stays uncancelled.
        assert_eq!(m.read(a).unwrap(), b"x");
        assert!(m.verify_now().is_err());
        assert!(m.poisoned().is_some());
    }

    #[test]
    fn parallel_drain_leaves_digests_balanced() {
        let m = mem_cached(1 << 20);
        let pages: Vec<u64> = (0..4).map(|_| m.allocate_page()).collect();
        let mut addrs = Vec::new();
        for &p in &pages {
            for i in 0..8 {
                addrs.push(m.insert_in(p, format!("v{p}-{i}").as_bytes()).unwrap());
            }
        }
        for a in &addrs {
            m.read(*a).unwrap();
        }
        for (i, a) in addrs.iter().enumerate() {
            m.write(*a, format!("w{i:06}").as_bytes()).unwrap();
        }
        m.verify_now_parallel(4).unwrap();
        assert!(m.cell_cache().unwrap().is_empty());
        // A second pass over the drained state must still balance.
        m.verify_now_parallel(2).unwrap();
        for (i, a) in addrs.iter().enumerate() {
            assert_eq!(m.read(*a).unwrap(), format!("w{i:06}").as_bytes());
        }
        assert!(m.poisoned().is_none());
    }

    #[test]
    fn delete_and_move_invalidate_pinned_entries() {
        let m = mem_cached(1 << 20);
        let p = m.allocate_page();
        let a = m.insert_in(p, b"doomed").unwrap();
        let b = m.insert_in(p, b"mover").unwrap();
        m.read(a).unwrap();
        m.read(b).unwrap();
        m.delete(a).unwrap();
        assert!(matches!(m.read(a), Err(Error::SlotNotFound { .. })));
        m.write(b, b"moved").unwrap(); // absorbed (dirty)
        let q = m.allocate_page();
        let nb = m.move_cell(b, q).unwrap();
        assert_eq!(m.read(nb).unwrap(), b"moved");
        m.verify_now().unwrap();
        assert!(m.poisoned().is_none());
    }

    #[test]
    fn batched_reads_see_absorbed_writes() {
        let m = mem_cached(1 << 20);
        let p = m.allocate_page();
        let addrs: Vec<CellAddr> = (0..6)
            .map(|i| m.insert_in(p, format!("cell-{i}").as_bytes()).unwrap())
            .collect();
        for a in &addrs {
            m.read(*a).unwrap();
        }
        m.write(addrs[2], b"fresh!").unwrap(); // absorbed
        let slots: Vec<SlotId> = addrs.iter().map(|a| a.slot).collect();
        let mut batch = ReadBatch::new();
        m.read_page_batch(p, &slots, &mut batch).unwrap();
        assert_eq!(batch.get(2).unwrap().1, b"fresh!");
        assert_eq!(batch.get(0).unwrap().1, b"cell-0");
        m.verify_now().unwrap();
        assert!(m.poisoned().is_none());
    }

    #[test]
    fn shrinking_absorbed_writes_survive_compaction() {
        // Regression: a dirty shrink flushed by a batch read leaves the
        // entry pinned; compaction then trims the host cell to the shorter
        // payload, so the entry's absorb ceiling must shrink with it or a
        // later write-back no longer fits in place.
        let m = mem_cached(1 << 20);
        let p = m.allocate_page();
        let a = m.insert_in(p, b"a-long-initial-payload").unwrap();
        let b = m.insert_in(p, b"middle-hole").unwrap();
        let c = m.insert_in(p, b"tail-keeps-the-hole-interior").unwrap();
        m.read(a).unwrap();
        m.write(a, b"tiny").unwrap(); // absorbed, shrinking
        let mut batch = ReadBatch::new();
        m.read_page_batch(p, &[a.slot], &mut batch).unwrap(); // flush, stays pinned
        m.delete(b).unwrap(); // interior hole → the scan's side-task compacts
        while m.scan_step().unwrap() {} // full pass; does NOT drain the cache
                                        // Other traffic consumes the space compaction reclaimed.
        while m.insert_in(p, &[0x66; 48]).is_ok() {}
        // The host cell now holds (and has capacity for) only 4 bytes and
        // the page is full: a fill-sized write must take the host path and
        // report `PageFull` honestly (the caller relocates), not be
        // absorbed against capacity the host no longer has — which would
        // turn the deferred write-back into a verification failure on
        // honest data.
        match m.write(a, b"a-long-initial-payload") {
            Ok(()) | Err(Error::PageFull { .. }) => {}
            other => panic!("unexpected write outcome: {other:?}"),
        }
        m.verify_now().unwrap();
        assert_eq!(m.read(c).unwrap(), b"tail-keeps-the-hole-interior");
        assert!(m.poisoned().is_none());
    }

    #[test]
    fn honest_cached_workload_with_background_verifier() {
        let m = mem_cached(64 * 1024);
        let v = crate::verifier::BackgroundVerifier::spawn(Arc::clone(&m));
        let p = m.allocate_page();
        let addrs: Vec<CellAddr> = (0..16)
            .map(|i| m.insert_in(p, format!("k{i}").as_bytes()).unwrap())
            .collect();
        for round in 0..200 {
            for a in &addrs {
                let _ = m.read(*a).unwrap();
            }
            m.write(
                addrs[round % addrs.len()],
                format!("r{round:04}").as_bytes(),
            )
            .unwrap();
        }
        m.drain_cell_cache().unwrap();
        assert!(v.stop().is_none(), "honest cached run must not alarm");
        m.verify_now().unwrap();
        assert!(m.poisoned().is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use veridb_common::PrfBackend;

    #[derive(Debug, Clone)]
    enum Op {
        Insert(Vec<u8>),
        Read(usize),
        Write(usize, Vec<u8>),
        Delete(usize),
        Verify,
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => prop::collection::vec(any::<u8>(), 0..40).prop_map(Op::Insert),
            3 => any::<usize>().prop_map(Op::Read),
            2 => (any::<usize>(), prop::collection::vec(any::<u8>(), 0..40))
                .prop_map(|(i, d)| Op::Write(i, d)),
            1 => any::<usize>().prop_map(Op::Delete),
            1 => Just(Op::Verify),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// Any honest op sequence, with verification passes interleaved at
        /// arbitrary points, never fails verification, and every read
        /// returns what the model expects.
        #[test]
        fn honest_histories_always_verify(
            ops in prop::collection::vec(arb_op(), 0..80),
            verify_metadata in any::<bool>(),
            // Exercise the model with the cell cache off, tiny (constant
            // eviction/write-back churn), and comfortable.
            cell_cache_bytes in prop_oneof![Just(0usize), Just(600), Just(1 << 16)],
        ) {
            let enclave = Enclave::create("prop-test", 1 << 22, [4u8; 32]);
            let m = VerifiedMemory::new(enclave, MemConfig {
                page_size: 1024,
                partitions: 2,
                verify_rsws: true,
                verify_metadata,
                verify_every_ops: None,
                track_touched_pages: true,
                compact_during_verification: true,
                prf: PrfBackend::SipHash,
                metrics: true,
                workers: 1,
                cell_cache_bytes,
            });
            let mut pages = vec![m.allocate_page()];
            let mut model: Vec<(CellAddr, Vec<u8>)> = Vec::new();
            for op in ops {
                match op {
                    Op::Insert(data) => {
                        let mut placed = None;
                        for &p in &pages {
                            if let Ok(a) = m.insert_in(p, &data) {
                                placed = Some(a);
                                break;
                            }
                        }
                        let addr = match placed {
                            Some(a) => a,
                            None => {
                                let p = m.allocate_page();
                                pages.push(p);
                                m.insert_in(p, &data).unwrap()
                            }
                        };
                        model.push((addr, data));
                    }
                    Op::Read(i) => {
                        if !model.is_empty() {
                            let (addr, expect) = &model[i % model.len()];
                            let got = m.read(*addr).unwrap();
                            prop_assert_eq!(&got, expect);
                        }
                    }
                    Op::Write(i, data) => {
                        if !model.is_empty() {
                            let idx = i % model.len();
                            let addr = model[idx].0;
                            if m.write(addr, &data).is_ok() {
                                model[idx].1 = data;
                            }
                        }
                    }
                    Op::Delete(i) => {
                        if !model.is_empty() {
                            let idx = i % model.len();
                            let (addr, _) = model.remove(idx);
                            m.delete(addr).unwrap();
                        }
                    }
                    Op::Verify => {
                        m.verify_now().unwrap();
                    }
                }
            }
            m.verify_now().unwrap();
            for (addr, expect) in &model {
                prop_assert_eq!(&m.read(*addr).unwrap(), expect);
            }
            m.verify_now().unwrap();
        }
    }
}
