//! The write-read consistent memory itself.
//!
//! [`VerifiedMemory`] is the meeting point of the two worlds:
//!
//! - **Untrusted state**: the [`RawPage`]s (and a free-space hint map).
//!   The host may mutate these arbitrarily — see [`crate::tamper`].
//! - **Enclave state**: per-partition [`PartitionState`] (digest pairs and
//!   per-page metadata), the PRF key, and the timestamp counter. These are
//!   only reachable through the protected operations below, which stand in
//!   for the SGX ECall surface of the paper's Algorithm 1/3.
//!
//! Every protected operation folds its reads into `h(RS)` and its writes
//! into `h(WS)`; the deferred verifier ([`crate::verifier`]) closes epochs
//! by scanning pages and checking `h(RS) = h(WS)` per partition.
//!
//! Locking protocol: **page mutex → partition mutex**, everywhere,
//! including the scan path; partition mutexes, when two are needed
//! (cross-partition moves), are taken in index order.

use crate::digest::SetDigest;
use crate::page::{RawPage, SlotId};
use crate::prf::{PrfEngine, KIND_DATA, KIND_META};
use crate::rsws::{PageMeta, PartitionState};
use crossbeam::channel::Sender;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use veridb_common::{Error, Result, VeriDbConfig};
use veridb_enclave::Enclave;

/// Address of one cell in verified memory: `(page, slot)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellAddr {
    /// Page id.
    pub page: u64,
    /// Slot within the page.
    pub slot: SlotId,
}

impl CellAddr {
    /// The flat protocol address fed to the PRF. Page ids stay below
    /// 2^48 so this never collides.
    pub fn proto(&self) -> u64 {
        (self.page << 16) | self.slot as u64
    }
}

impl std::fmt::Display for CellAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.page, self.slot)
    }
}

/// The subset of [`VeriDbConfig`] the memory layer consumes.
#[derive(Debug, Clone)]
pub struct MemConfig {
    /// Page size in bytes.
    pub page_size: usize,
    /// Number of RSWS partitions.
    pub partitions: usize,
    /// Maintain RS/WS digests at all (off = the evaluation's Baseline).
    pub verify_rsws: bool,
    /// Fold slot-directory maintenance into (separate) metadata digests.
    pub verify_metadata: bool,
    /// Background scan cadence (one page per N ops); `None` = manual only.
    pub verify_every_ops: Option<u64>,
    /// Skip re-reading untouched pages during scans (use cached digests).
    pub track_touched_pages: bool,
    /// Compact pages during the verification scan instead of eagerly on
    /// every delete.
    pub compact_during_verification: bool,
    /// PRF backend.
    pub prf: veridb_common::PrfBackend,
}

impl MemConfig {
    /// Extract the memory-layer knobs from a full VeriDB config.
    pub fn from_config(cfg: &VeriDbConfig) -> Self {
        MemConfig {
            page_size: cfg.page_size,
            partitions: cfg.rsws_partitions,
            verify_rsws: cfg.verify_rsws,
            verify_metadata: cfg.verify_metadata,
            verify_every_ops: cfg.verify_every_ops,
            track_touched_pages: cfg.track_touched_pages,
            compact_during_verification: cfg.compact_during_verification,
            prf: cfg.prf,
        }
    }
}

/// Summary of a full verification pass ([`VerifiedMemory::verify_now`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Pages processed (full reads + cached-digest carries).
    pub pages_processed: u64,
    /// Pages whose cells were actually re-read (touched since last scan).
    pub pages_read: u64,
    /// Epoch number of each partition after the pass.
    pub epochs: Vec<u64>,
}

/// Write-read consistent memory: untrusted pages + enclave digest state.
pub struct VerifiedMemory {
    enclave: Enclave,
    cfg: MemConfig,
    prf: PrfEngine,
    /// Enclave-resident partition states (digests + page metadata).
    parts: Vec<Mutex<PartitionState>>,
    /// Untrusted memory: the pages themselves.
    pages: RwLock<HashMap<u64, Arc<Mutex<RawPage>>>>,
    next_page_id: AtomicU64,
    /// Operation counter driving the background-verifier cadence.
    ops: AtomicU64,
    /// Tick channel to the background verifier, if one is attached.
    ticker: RwLock<Option<Sender<()>>>,
    /// Round-robin scan cursor (partition index) for the incremental
    /// background scanner.
    scan_cursor: Mutex<usize>,
    /// Per-partition pass locks: a partition's scan pass (page processing
    /// up to and including the epoch close) is exclusive, so concurrent
    /// verifiers (§3.3's "multiple verifiers … for disjoint sections")
    /// never double-close an epoch.
    scan_locks: Vec<Mutex<()>>,
    /// First verification failure observed, if any. Results must not be
    /// endorsed once this is set.
    poisoned: Mutex<Option<Error>>,
}

impl VerifiedMemory {
    /// Create a verified memory bound to `enclave`.
    pub fn new(enclave: Enclave, cfg: MemConfig) -> Arc<Self> {
        let prf = PrfEngine::new(cfg.prf, enclave.derive_key("rsws-prf"));
        let nparts = cfg.partitions.max(1);
        let parts = (0..nparts).map(|_| Mutex::new(PartitionState::new())).collect();
        let scan_locks = (0..nparts).map(|_| Mutex::new(())).collect();
        Arc::new(VerifiedMemory {
            enclave,
            cfg,
            prf,
            parts,
            pages: RwLock::new(HashMap::new()),
            next_page_id: AtomicU64::new(1),
            ops: AtomicU64::new(0),
            ticker: RwLock::new(None),
            scan_cursor: Mutex::new(0),
            scan_locks,
            poisoned: Mutex::new(None),
        })
    }

    /// Create from a full VeriDB configuration.
    pub fn from_config(enclave: Enclave, cfg: &VeriDbConfig) -> Arc<Self> {
        Self::new(enclave, MemConfig::from_config(cfg))
    }

    /// The enclave backing this memory.
    pub fn enclave(&self) -> &Enclave {
        &self.enclave
    }

    /// The memory-layer configuration.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Number of RSWS partitions.
    pub fn partition_count(&self) -> usize {
        self.parts.len()
    }

    /// Number of registered pages.
    pub fn page_count(&self) -> usize {
        self.pages.read().len()
    }

    /// Ids of all registered pages (snapshot).
    pub fn page_ids(&self) -> Vec<u64> {
        self.pages.read().keys().copied().collect()
    }

    /// The first verification failure observed, if any.
    pub fn poisoned(&self) -> Option<Error> {
        self.poisoned.lock().clone()
    }

    /// Attach the tick channel of a background verifier.
    pub fn set_ticker(&self, tx: Sender<()>) {
        *self.ticker.write() = Some(tx);
    }

    fn part_index(&self, page: u64) -> usize {
        (page % self.parts.len() as u64) as usize
    }

    fn get_page(&self, page: u64) -> Result<Arc<Mutex<RawPage>>> {
        self.pages
            .read()
            .get(&page)
            .cloned()
            .ok_or(Error::PageNotFound(page))
    }

    /// Count one operation toward the verifier cadence; emit a tick when
    /// the threshold is crossed.
    fn op_tick(&self) {
        let Some(every) = self.cfg.verify_every_ops else { return };
        let n = self.ops.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(every) {
            if let Some(tx) = self.ticker.read().as_ref() {
                let _ = tx.try_send(());
            }
        }
    }

    // ---- page lifecycle ---------------------------------------------------

    /// Register a fresh, empty page (the storage layer's `Register`
    /// interface, §4.2). Returns its id.
    pub fn allocate_page(&self) -> u64 {
        let id = self.next_page_id.fetch_add(1, Ordering::Relaxed);
        let page = RawPage::new(id, self.cfg.page_size);
        self.pages.write().insert(id, Arc::new(Mutex::new(page)));
        if self.cfg.verify_rsws {
            let pi = self.part_index(id);
            let mut part = self.parts[pi].lock();
            // ~64 bytes of enclave-resident metadata per page (scan epoch,
            // touched bit, cached digests) — the §4.3 in-enclave tracking
            // structure, accounted against the EPC budget.
            let epc = self.enclave.epc().allocate(64).ok();
            let epoch = part.epoch;
            part.pages.insert(id, PageMeta::new(epoch, epc));
        }
        id
    }

    /// Free-space hint for allocation decisions (untrusted metadata; an
    /// adversarial answer can only cause routine `PageFull` errors, never
    /// an integrity violation).
    pub fn page_free_space(&self, page: u64) -> Result<usize> {
        let p = self.get_page(page)?;
        let g = p.lock();
        Ok(g.contiguous_free().saturating_sub(crate::page::SLOT_ENTRY_BYTES
            + crate::page::CELL_HEADER_BYTES))
    }

    // ---- protected operations (Algorithm 1 / Algorithm 3 primitives) ------

    /// Protected read: returns the cell's data, folding the read into
    /// `h(RS)` and the virtual write-back (fresh timestamp) into `h(WS)`.
    pub fn read(&self, addr: CellAddr) -> Result<Vec<u8>> {
        let page_arc = self.get_page(addr.page)?;
        let mut page = page_arc.lock();

        if !self.cfg.verify_rsws {
            let (data, _) = page.read(addr.slot)?;
            let out = data.to_vec();
            drop(page);
            self.op_tick();
            return Ok(out);
        }

        let (data, ts_old) = {
            let (d, t) = page.read(addr.slot)?;
            (d.to_vec(), t)
        };
        let ts_new = self.enclave.next_timestamp();
        let entry = page.slot_entry_bytes(addr.slot);
        let mts_old = page.meta_ts(addr.slot);

        {
            let mut part = self.parts[self.part_index(addr.page)].lock();
            let se = {
                let meta = part
                    .pages
                    .get_mut(&addr.page)
                    .ok_or(Error::PageNotFound(addr.page))?;
                meta.touched = true;
                meta.scan_epoch
            };
            if self.cfg.verify_metadata {
                // Algorithm 3's Get reads the record pointer first.
                let mts_new = self.enclave.next_timestamp();
                let maddr = addr.proto();
                let mp = part.meta_pair_for(se);
                mp.rs.fold(&self.prf.tag(maddr, KIND_META, &entry, mts_old));
                mp.ws.fold(&self.prf.tag(maddr, KIND_META, &entry, mts_new));
                page.set_meta_ts(addr.slot, mts_new);
                self.enclave.cost().charge_prf(2);
            }
            let pair = part.pair_for(se);
            pair.rs.fold(&self.prf.tag(addr.proto(), KIND_DATA, &data, ts_old));
            pair.ws.fold(&self.prf.tag(addr.proto(), KIND_DATA, &data, ts_new));
        }
        page.set_ts(addr.slot, ts_new)?;
        self.enclave.cost().charge_prf(2);
        self.enclave.cost().charge_verified_read();
        drop(page);
        self.op_tick();
        Ok(data)
    }

    /// Protected overwrite of an existing cell.
    pub fn write(&self, addr: CellAddr, data: &[u8]) -> Result<()> {
        let page_arc = self.get_page(addr.page)?;
        let mut page = page_arc.lock();
        let ts_new = self.enclave.next_timestamp();

        if !self.cfg.verify_rsws {
            page.write(addr.slot, data, ts_new)?;
            drop(page);
            self.op_tick();
            return Ok(());
        }

        let (old, ts_old) = {
            let (d, t) = page.read(addr.slot)?;
            (d.to_vec(), t)
        };
        let entry_old = page.slot_entry_bytes(addr.slot);
        let mts_old = page.meta_ts(addr.slot);
        // Mutate first: a PageFull on a growing write must leave the
        // digests untouched.
        page.write(addr.slot, data, ts_new)?;
        let entry_new = page.slot_entry_bytes(addr.slot);

        {
            let mut part = self.parts[self.part_index(addr.page)].lock();
            let se = {
                let meta = part
                    .pages
                    .get_mut(&addr.page)
                    .ok_or(Error::PageNotFound(addr.page))?;
                meta.touched = true;
                meta.scan_epoch
            };
            if self.cfg.verify_metadata {
                let mts_new = self.enclave.next_timestamp();
                let maddr = addr.proto();
                let mp = part.meta_pair_for(se);
                mp.rs.fold(&self.prf.tag(maddr, KIND_META, &entry_old, mts_old));
                mp.ws.fold(&self.prf.tag(maddr, KIND_META, &entry_new, mts_new));
                page.set_meta_ts(addr.slot, mts_new);
                self.enclave.cost().charge_prf(2);
            }
            let pair = part.pair_for(se);
            pair.rs.fold(&self.prf.tag(addr.proto(), KIND_DATA, &old, ts_old));
            pair.ws.fold(&self.prf.tag(addr.proto(), KIND_DATA, data, ts_new));
        }
        self.enclave.cost().charge_prf(2);
        self.enclave.cost().charge_verified_write();
        drop(page);
        self.op_tick();
        Ok(())
    }

    /// Protected insert into a specific page. Fails with `PageFull` when
    /// the page cannot hold the cell (the caller allocates another page).
    pub fn insert_in(&self, page_id: u64, data: &[u8]) -> Result<CellAddr> {
        let page_arc = self.get_page(page_id)?;
        let mut page = page_arc.lock();
        let ts = self.enclave.next_timestamp();

        // If contiguous space is short but holes would cover it, compact
        // on demand (lazy mode defers this to the scan, but an insert that
        // would otherwise spill to a fresh page still prefers reclaiming).
        let needed = data.len()
            + crate::page::CELL_HEADER_BYTES
            + crate::page::SLOT_ENTRY_BYTES;
        if page.contiguous_free() < needed && page.free_after_compaction() >= needed {
            self.compact_locked(&mut page, page_id)?;
        }

        let slot_count_before = page.slot_count();
        let slot = page.insert(data, ts)?;
        let addr = CellAddr { page: page_id, slot };

        if !self.cfg.verify_rsws {
            drop(page);
            self.op_tick();
            return Ok(addr);
        }

        let entry_new = page.slot_entry_bytes(slot);
        let reused_slot = slot < slot_count_before;
        let mts_old = page.meta_ts(slot);

        {
            let mut part = self.parts[self.part_index(page_id)].lock();
            let se = {
                let meta = part
                    .pages
                    .get_mut(&page_id)
                    .ok_or(Error::PageNotFound(page_id))?;
                meta.touched = true;
                meta.scan_epoch
            };
            if self.cfg.verify_metadata {
                let mts_new = self.enclave.next_timestamp();
                let maddr = addr.proto();
                let mp = part.meta_pair_for(se);
                if reused_slot {
                    // The tombstone entry (0,0) is consumed.
                    mp.rs.fold(&self.prf.tag(maddr, KIND_META, &[0, 0, 0, 0], mts_old));
                    self.enclave.cost().charge_prf(1);
                }
                mp.ws.fold(&self.prf.tag(maddr, KIND_META, &entry_new, mts_new));
                page.set_meta_ts(slot, mts_new);
                self.enclave.cost().charge_prf(1);
            }
            let pair = part.pair_for(se);
            pair.ws.fold(&self.prf.tag(addr.proto(), KIND_DATA, data, ts));
        }
        self.enclave.cost().charge_prf(1);
        self.enclave.cost().charge_verified_write();
        drop(page);
        self.op_tick();
        Ok(addr)
    }

    /// Protected delete. In eager-compaction mode (the pre-§4.3 baseline
    /// behaviour) the page is compacted immediately, paying a verified
    /// read+write per relocated record; in lazy mode the hole waits for
    /// the verification scan.
    pub fn delete(&self, addr: CellAddr) -> Result<()> {
        let page_arc = self.get_page(addr.page)?;
        let mut page = page_arc.lock();

        if !self.cfg.verify_rsws {
            page.delete(addr.slot)?;
            drop(page);
            self.op_tick();
            return Ok(());
        }

        let (old, ts_old) = {
            let (d, t) = page.read(addr.slot)?;
            (d.to_vec(), t)
        };
        let entry_old = page.slot_entry_bytes(addr.slot);
        let mts_old = page.meta_ts(addr.slot);
        page.delete(addr.slot)?;

        {
            let mut part = self.parts[self.part_index(addr.page)].lock();
            let se = {
                let meta = part
                    .pages
                    .get_mut(&addr.page)
                    .ok_or(Error::PageNotFound(addr.page))?;
                meta.touched = true;
                meta.scan_epoch
            };
            if self.cfg.verify_metadata {
                let mts_new = self.enclave.next_timestamp();
                let maddr = addr.proto();
                let mp = part.meta_pair_for(se);
                mp.rs.fold(&self.prf.tag(maddr, KIND_META, &entry_old, mts_old));
                mp.ws.fold(&self.prf.tag(maddr, KIND_META, &[0, 0, 0, 0], mts_new));
                page.set_meta_ts(addr.slot, mts_new);
                self.enclave.cost().charge_prf(2);
            }
            let pair = part.pair_for(se);
            pair.rs.fold(&self.prf.tag(addr.proto(), KIND_DATA, &old, ts_old));
        }
        self.enclave.cost().charge_prf(1);
        self.enclave.cost().charge_verified_write();

        if !self.cfg.compact_during_verification && page.needs_compaction() {
            // Eager space reclamation: every surviving record is read and
            // re-written (fresh timestamp) — the §4.3 cost this design
            // later optimizes away.
            self.compact_verified_locked(&mut page, addr.page)?;
        }
        drop(page);
        self.op_tick();
        Ok(())
    }

    /// Protected, atomic move of a cell to another page (the `Move`
    /// interface of §4.2, used by space management and index
    /// reorganization).
    pub fn move_cell(&self, from: CellAddr, to_page: u64) -> Result<CellAddr> {
        if from.page == to_page {
            // Same-page "move" is a no-op at the protocol level.
            return Ok(from);
        }
        // Lock pages in id order to avoid deadlocks.
        let a = self.get_page(from.page)?;
        let b = self.get_page(to_page)?;
        let (mut src, mut dst) = if from.page < to_page {
            let s = a.lock();
            let d = b.lock();
            (s, d)
        } else {
            let d = b.lock();
            let s = a.lock();
            (s, d)
        };

        let (data, ts_old) = {
            let (d, t) = src.read(from.slot)?;
            (d.to_vec(), t)
        };
        let ts_new = self.enclave.next_timestamp();
        let dst_slot_count_before = dst.slot_count();
        // Insert first so a full destination leaves the source untouched.
        let slot = dst.insert(&data, ts_new)?;
        let to = CellAddr { page: to_page, slot };
        let src_entry_old = src.slot_entry_bytes(from.slot);
        let src_mts_old = src.meta_ts(from.slot);
        src.delete(from.slot)?;

        if !self.cfg.verify_rsws {
            self.op_tick();
            return Ok(to);
        }

        // Source-side folds (consume the old cell).
        {
            let mut part = self.parts[self.part_index(from.page)].lock();
            let se = {
                let meta = part
                    .pages
                    .get_mut(&from.page)
                    .ok_or(Error::PageNotFound(from.page))?;
                meta.touched = true;
                meta.scan_epoch
            };
            if self.cfg.verify_metadata {
                let mts_new = self.enclave.next_timestamp();
                let maddr = from.proto();
                let mp = part.meta_pair_for(se);
                mp.rs.fold(&self.prf.tag(maddr, KIND_META, &src_entry_old, src_mts_old));
                mp.ws.fold(&self.prf.tag(maddr, KIND_META, &[0, 0, 0, 0], mts_new));
                src.set_meta_ts(from.slot, mts_new);
                self.enclave.cost().charge_prf(2);
            }
            let pair = part.pair_for(se);
            pair.rs.fold(&self.prf.tag(from.proto(), KIND_DATA, &data, ts_old));
        }
        // Destination-side folds (produce the new cell).
        {
            let mut part = self.parts[self.part_index(to_page)].lock();
            let se = {
                let meta = part
                    .pages
                    .get_mut(&to_page)
                    .ok_or(Error::PageNotFound(to_page))?;
                meta.touched = true;
                meta.scan_epoch
            };
            if self.cfg.verify_metadata {
                let reused = slot < dst_slot_count_before;
                let mts_old = dst.meta_ts(slot);
                let mts_new = self.enclave.next_timestamp();
                let entry_new = dst.slot_entry_bytes(slot);
                let maddr = to.proto();
                let mp = part.meta_pair_for(se);
                if reused {
                    mp.rs.fold(&self.prf.tag(maddr, KIND_META, &[0, 0, 0, 0], mts_old));
                    self.enclave.cost().charge_prf(1);
                }
                mp.ws.fold(&self.prf.tag(maddr, KIND_META, &entry_new, mts_new));
                dst.set_meta_ts(slot, mts_new);
                self.enclave.cost().charge_prf(1);
            }
            let pair = part.pair_for(se);
            pair.ws.fold(&self.prf.tag(to.proto(), KIND_DATA, &data, ts_new));
        }
        self.enclave.cost().charge_prf(2);
        self.enclave.cost().charge_verified_write();
        self.op_tick();
        Ok(to)
    }

    // ---- compaction helpers -----------------------------------------------

    /// Compact a locked page, folding the metadata updates (offset changes)
    /// if metadata verification is on. Record data and timestamps do not
    /// change, so the record digests are untouched — this is the "free"
    /// compaction of §4.3.
    fn compact_locked(&self, page: &mut RawPage, page_id: u64) -> Result<()> {
        if !self.cfg.verify_rsws || !self.cfg.verify_metadata {
            page.compact();
            return Ok(());
        }
        let live = page.live_slot_ids();
        let old_entries: Vec<(SlotId, [u8; 4], u64)> = live
            .iter()
            .map(|&s| (s, page.slot_entry_bytes(s), page.meta_ts(s)))
            .collect();
        page.compact();
        let mut part = self.parts[self.part_index(page_id)].lock();
        let se = {
            let meta = part
                .pages
                .get_mut(&page_id)
                .ok_or(Error::PageNotFound(page_id))?;
            meta.touched = true;
            meta.scan_epoch
        };
        for (slot, old_entry, mts_old) in old_entries {
            let entry_new = page.slot_entry_bytes(slot);
            let mts_new = self.enclave.next_timestamp();
            let maddr = CellAddr { page: page_id, slot }.proto();
            let mp = part.meta_pair_for(se);
            mp.rs.fold(&self.prf.tag(maddr, KIND_META, &old_entry, mts_old));
            mp.ws.fold(&self.prf.tag(maddr, KIND_META, &entry_new, mts_new));
            page.set_meta_ts(slot, mts_new);
            self.enclave.cost().charge_prf(2);
        }
        Ok(())
    }

    /// Eager-mode compaction: verified read + re-timestamped write of every
    /// surviving record (the expensive behaviour §4.3 optimizes away).
    fn compact_verified_locked(&self, page: &mut RawPage, page_id: u64) -> Result<()> {
        let live = page.live_slot_ids();
        let mut folds: Vec<(SlotId, Vec<u8>, u64, u64)> = Vec::with_capacity(live.len());
        for slot in &live {
            let (data, ts_old) = {
                let (d, t) = page.read(*slot)?;
                (d.to_vec(), t)
            };
            let ts_new = self.enclave.next_timestamp();
            page.set_ts(*slot, ts_new)?;
            folds.push((*slot, data, ts_old, ts_new));
        }
        self.compact_locked(page, page_id)?;
        let mut part = self.parts[self.part_index(page_id)].lock();
        let se = {
            let meta = part
                .pages
                .get_mut(&page_id)
                .ok_or(Error::PageNotFound(page_id))?;
            meta.touched = true;
            meta.scan_epoch
        };
        let pair = part.pair_for(se);
        for (slot, data, ts_old, ts_new) in folds {
            let addr = CellAddr { page: page_id, slot }.proto();
            pair.rs.fold(&self.prf.tag(addr, KIND_DATA, &data, ts_old));
            pair.ws.fold(&self.prf.tag(addr, KIND_DATA, &data, ts_new));
            self.enclave.cost().charge_prf(2);
        }
        Ok(())
    }

    // ---- verification (Algorithm 2, non-quiescent) --------------------------

    fn record_failure(&self, e: &Error) {
        let mut p = self.poisoned.lock();
        if p.is_none() {
            *p = Some(e.clone());
        }
    }

    /// Process one page of partition `pi` for the in-flight pass: fold its
    /// contribution into `cur.rs` (closing the epoch's reads) and into
    /// `next.ws` (opening the next epoch's writes). Untouched pages use the
    /// cached digest (§4.3); touched pages are re-read, and compacted as a
    /// side task (§4.3).
    fn process_page(&self, pi: usize, page_id: u64) -> Result<()> {
        let page_arc = self.get_page(page_id)?;
        let mut page = page_arc.lock();

        // Compaction side-task, before computing the contribution.
        if self.cfg.compact_during_verification && page.needs_compaction() {
            self.compact_locked(&mut page, page_id)?;
        }

        let mut part = self.parts[pi].lock();
        let part_epoch = part.epoch;
        let (touched, cached, cached_meta) = {
            let meta = part
                .pages
                .get_mut(&page_id)
                .ok_or(Error::PageNotFound(page_id))?;
            if meta.scan_epoch != part_epoch {
                return Ok(()); // already processed in this pass
            }
            (meta.touched, meta.cached, meta.cached_meta)
        };

        let (c_data, c_meta, was_read) = if touched || !self.cfg.track_touched_pages {
            let mut c = SetDigest::ZERO;
            let mut n = 0u64;
            for (slot, data, ts) in page.iter_live() {
                let addr = CellAddr { page: page_id, slot }.proto();
                c.fold(&self.prf.tag(addr, KIND_DATA, data, ts));
                n += 1;
            }
            let mut cm = SetDigest::ZERO;
            if self.cfg.verify_metadata {
                for slot in 0..page.slot_count() {
                    let addr = CellAddr { page: page_id, slot }.proto();
                    let entry = page.slot_entry_bytes(slot);
                    cm.fold(&self.prf.tag(addr, KIND_META, &entry, page.meta_ts(slot)));
                    n += 1;
                }
            }
            self.enclave.cost().charge_prf(n);
            self.enclave.cost().charge_page_scan();
            (c, cm, true)
        } else {
            (cached, cached_meta, false)
        };

        part.cur.rs.fold(&c_data);
        part.next.ws.fold(&c_data);
        if self.cfg.verify_metadata {
            part.meta_cur.rs.fold(&c_meta);
            part.meta_next.ws.fold(&c_meta);
        }
        let epoch = part.epoch;
        let meta = part.pages.get_mut(&page_id).expect("checked above");
        meta.cached = c_data;
        meta.cached_meta = c_meta;
        meta.touched = false;
        meta.scan_epoch = epoch + 1;
        let _ = was_read;
        Ok(())
    }

    /// Try to close partition `pi`'s epoch; no-op if pages are pending.
    fn try_close_epoch(&self, pi: usize) -> Result<bool> {
        let mut part = self.parts[pi].lock();
        if part.next_pending_page().is_some() {
            return Ok(false);
        }
        let epoch = part.epoch;
        if !part.close_epoch() {
            drop(part);
            let e = Error::VerificationFailed { partition: pi, epoch };
            self.record_failure(&e);
            return Err(e);
        }
        Ok(true)
    }

    /// One unit of background-verifier work: scan a single page, closing
    /// partition epochs as passes complete. Returns `true` if a page was
    /// processed. Safe to call from multiple verifier threads (§3.3's
    /// "multiple verifiers"); work distribution is round-robin.
    pub fn scan_step(&self) -> Result<bool> {
        let pi = {
            let mut cursor = self.scan_cursor.lock();
            let pi = *cursor;
            *cursor = (pi + 1) % self.parts.len();
            pi
        };
        for offset in 0..self.parts.len() {
            let pi = (pi + offset) % self.parts.len();
            let _pass = self.scan_locks[pi].lock();
            let pending = { self.parts[pi].lock().next_pending_page() };
            if let Some(page_id) = pending {
                self.process_page(pi, page_id)?;
                return Ok(true);
            }
            self.try_close_epoch(pi)?;
        }
        Ok(false)
    }

    /// Run one complete pass over a single partition: process every
    /// pending page, then close the epoch. Holds the partition's pass
    /// lock throughout, so concurrent passes never double-close.
    fn run_partition_pass(&self, pi: usize) -> Result<(u64, u64)> {
        let _pass = self.scan_locks[pi].lock();
        let mut pages_processed = 0u64;
        let mut pages_read = 0u64;
        loop {
            let pending = { self.parts[pi].lock().next_pending_page() };
            match pending {
                Some(page_id) => {
                    let before = self.enclave.cost().snapshot().pages_scanned;
                    self.process_page(pi, page_id)?;
                    let after = self.enclave.cost().snapshot().pages_scanned;
                    pages_processed += 1;
                    pages_read += after - before;
                }
                None => break,
            }
        }
        self.try_close_epoch(pi)?;
        Ok((pages_processed, pages_read))
    }

    /// Run one complete verification pass over every partition,
    /// synchronously. Returns a report, or the first verification failure.
    pub fn verify_now(&self) -> Result<VerifyReport> {
        self.verify_now_parallel(1)
    }

    /// Verify with `threads` concurrent verifiers over disjoint
    /// partitions — the paper's §3.3 deployment option ("multiple
    /// verifiers may be employed to verify different (disjoint) sections
    /// of the memory for performance purposes").
    pub fn verify_now_parallel(&self, threads: usize) -> Result<VerifyReport> {
        let threads = threads.clamp(1, self.parts.len());
        let totals = Mutex::new((0u64, 0u64));
        let first_err: Mutex<Option<Error>> = Mutex::new(None);
        let next = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let pi = next.fetch_add(1, Ordering::Relaxed) as usize;
                    if pi >= self.parts.len() {
                        return;
                    }
                    match self.run_partition_pass(pi) {
                        Ok((p, r)) => {
                            let mut t = totals.lock();
                            t.0 += p;
                            t.1 += r;
                        }
                        Err(e) => {
                            let mut slot = first_err.lock();
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                        }
                    }
                });
            }
        });
        if let Some(e) = first_err.into_inner() {
            return Err(e);
        }
        let (pages_processed, pages_read) = totals.into_inner();
        let epochs = self.parts.iter().map(|p| p.lock().epoch).collect();
        Ok(VerifyReport { pages_processed, pages_read, epochs })
    }

    // ---- tampering surface (attack tests) -----------------------------------

    /// Run `f` with direct mutable access to a page's raw state, bypassing
    /// every protection — this is the adversarial host's power. Test-only
    /// by convention; hidden from docs.
    #[doc(hidden)]
    pub fn with_page_mut<R>(&self, page: u64, f: impl FnOnce(&mut RawPage) -> R) -> Result<R> {
        let p = self.get_page(page)?;
        let mut g = p.lock();
        Ok(f(&mut g))
    }
}

impl std::fmt::Debug for VerifiedMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifiedMemory")
            .field("pages", &self.page_count())
            .field("partitions", &self.parts.len())
            .field("poisoned", &self.poisoned.lock().is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridb_common::PrfBackend;

    fn cfg() -> MemConfig {
        MemConfig {
            page_size: 1024,
            partitions: 4,
            verify_rsws: true,
            verify_metadata: false,
            verify_every_ops: None,
            track_touched_pages: true,
            compact_during_verification: true,
            prf: PrfBackend::HmacSha256,
        }
    }

    fn mem_with(f: impl FnOnce(&mut MemConfig)) -> Arc<VerifiedMemory> {
        let mut c = cfg();
        f(&mut c);
        let enclave = Enclave::create("mem-test", 1 << 22, [3u8; 32]);
        VerifiedMemory::new(enclave, c)
    }

    fn mem() -> Arc<VerifiedMemory> {
        mem_with(|_| {})
    }

    #[test]
    fn insert_read_write_delete_cycle_verifies() {
        let m = mem();
        let p = m.allocate_page();
        let a = m.insert_in(p, b"one").unwrap();
        let b = m.insert_in(p, b"two").unwrap();
        assert_eq!(m.read(a).unwrap(), b"one");
        m.write(b, b"two-updated").unwrap();
        assert_eq!(m.read(b).unwrap(), b"two-updated");
        m.delete(a).unwrap();
        assert!(matches!(m.read(a), Err(Error::SlotNotFound { .. })));
        let report = m.verify_now().unwrap();
        assert!(report.pages_processed >= 1);
        // Multiple epochs in a row stay consistent.
        for _ in 0..3 {
            m.read(b).unwrap();
            m.verify_now().unwrap();
        }
    }

    #[test]
    fn metadata_mode_full_cycle_verifies() {
        let m = mem_with(|c| c.verify_metadata = true);
        let p = m.allocate_page();
        let a = m.insert_in(p, b"alpha").unwrap();
        let b = m.insert_in(p, b"beta").unwrap();
        m.read(a).unwrap();
        m.write(a, b"alpha-longer-payload-forcing-relocation").unwrap();
        m.delete(b).unwrap();
        // Reuse the tombstoned slot.
        let c2 = m.insert_in(p, b"gamma").unwrap();
        assert_eq!(c2.slot, b.slot);
        m.verify_now().unwrap();
        m.read(c2).unwrap();
        m.verify_now().unwrap();
    }

    #[test]
    fn eager_compaction_mode_verifies() {
        let m = mem_with(|c| c.compact_during_verification = false);
        let p = m.allocate_page();
        let mut addrs = Vec::new();
        for i in 0..12 {
            addrs.push(m.insert_in(p, format!("record-{i:02}").as_bytes()).unwrap());
        }
        // Delete every other record: each delete eagerly compacts.
        for a in addrs.iter().step_by(2) {
            m.delete(*a).unwrap();
        }
        for a in addrs.iter().skip(1).step_by(2) {
            assert!(m.read(*a).unwrap().starts_with(b"record-"));
        }
        m.verify_now().unwrap();
    }

    #[test]
    fn eager_compaction_with_metadata_verifies() {
        let m = mem_with(|c| {
            c.compact_during_verification = false;
            c.verify_metadata = true;
        });
        let p = m.allocate_page();
        let mut addrs = Vec::new();
        for i in 0..10 {
            addrs.push(m.insert_in(p, format!("rec-{i}").as_bytes()).unwrap());
        }
        for a in addrs.iter().step_by(2) {
            m.delete(*a).unwrap();
        }
        m.verify_now().unwrap();
    }

    #[test]
    fn spill_across_pages_with_on_demand_compaction() {
        let m = mem();
        let p = m.allocate_page();
        let mut addrs = Vec::new();
        loop {
            match m.insert_in(p, &[0xAB; 100]) {
                Ok(a) => addrs.push(a),
                Err(Error::PageFull { .. }) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        // Free up holes, then insert again: on-demand compaction kicks in.
        let n = addrs.len();
        assert!(n >= 4);
        m.delete(addrs[0]).unwrap();
        m.delete(addrs[2]).unwrap();
        let re = m.insert_in(p, &[0xCD; 150]).unwrap();
        assert_eq!(m.read(re).unwrap(), vec![0xCD; 150]);
        m.verify_now().unwrap();
    }

    #[test]
    fn move_cell_across_pages_and_partitions() {
        let m = mem();
        let p1 = m.allocate_page();
        let p2 = m.allocate_page(); // different partition (ids 1 and 2 mod 4)
        let a = m.insert_in(p1, b"wanderer").unwrap();
        let b = m.move_cell(a, p2).unwrap();
        assert_eq!(b.page, p2);
        assert_eq!(m.read(b).unwrap(), b"wanderer");
        assert!(matches!(m.read(a), Err(Error::SlotNotFound { .. })));
        m.verify_now().unwrap();
    }

    #[test]
    fn move_cell_with_metadata_verifies() {
        let m = mem_with(|c| c.verify_metadata = true);
        let p1 = m.allocate_page();
        let p2 = m.allocate_page();
        let a = m.insert_in(p1, b"payload").unwrap();
        let b = m.move_cell(a, p2).unwrap();
        m.read(b).unwrap();
        m.verify_now().unwrap();
    }

    #[test]
    fn baseline_mode_skips_all_digest_work() {
        let m = mem_with(|c| c.verify_rsws = false);
        let p = m.allocate_page();
        let a = m.insert_in(p, b"x").unwrap();
        m.read(a).unwrap();
        m.write(a, b"y").unwrap();
        m.delete(a).unwrap();
        let costs = m.enclave().cost().snapshot();
        assert_eq!(costs.prf_evals, 0);
        // verify_now over empty enclave state trivially passes.
        m.verify_now().unwrap();
    }

    #[test]
    fn page_full_reported_for_oversized_cell() {
        let m = mem();
        let p = m.allocate_page();
        let huge = vec![0u8; 2000];
        assert!(matches!(
            m.insert_in(p, &huge),
            Err(Error::PageFull { .. })
        ));
        // Failed insert must not corrupt the digests.
        m.verify_now().unwrap();
    }

    #[test]
    fn failed_growing_write_leaves_digests_consistent() {
        let m = mem();
        let p = m.allocate_page();
        let a = m.insert_in(p, b"small").unwrap();
        // Fill the page so the grow cannot relocate.
        while m.insert_in(p, &[0xEE; 90]).is_ok() {}
        let grown = vec![0u8; 500];
        assert!(m.write(a, &grown).is_err());
        assert_eq!(m.read(a).unwrap(), b"small");
        m.verify_now().unwrap();
    }

    #[test]
    fn many_pages_across_partitions_verify() {
        let m = mem();
        let mut addrs = Vec::new();
        for i in 0..16 {
            let p = m.allocate_page();
            for j in 0..5 {
                addrs.push(m.insert_in(p, format!("{i}-{j}").as_bytes()).unwrap());
            }
        }
        for a in &addrs {
            m.read(*a).unwrap();
        }
        let report = m.verify_now().unwrap();
        assert_eq!(report.pages_processed, 16);
        assert_eq!(report.epochs, vec![1, 1, 1, 1]);
    }

    #[test]
    fn untouched_pages_use_cached_digest() {
        let m = mem();
        let p1 = m.allocate_page();
        let p2 = m.allocate_page();
        let a = m.insert_in(p1, b"hot").unwrap();
        let _b = m.insert_in(p2, b"cold").unwrap();
        m.verify_now().unwrap();
        // Touch only p1.
        m.read(a).unwrap();
        let report = m.verify_now().unwrap();
        assert_eq!(report.pages_processed, 2);
        assert_eq!(report.pages_read, 1, "cold page must use its cache");
    }

    #[test]
    fn track_touched_disabled_reads_everything() {
        let m = mem_with(|c| c.track_touched_pages = false);
        let p1 = m.allocate_page();
        let p2 = m.allocate_page();
        m.insert_in(p1, b"a").unwrap();
        m.insert_in(p2, b"b").unwrap();
        m.verify_now().unwrap();
        let report = m.verify_now().unwrap();
        assert_eq!(report.pages_read, 2, "full-scan mode re-reads all pages");
    }

    #[test]
    fn scan_step_interleaved_with_ops() {
        let m = mem();
        let p = m.allocate_page();
        let a = m.insert_in(p, b"interleaved").unwrap();
        // Drive scan steps manually, interleaving reads.
        for _ in 0..40 {
            m.read(a).unwrap();
            m.scan_step().unwrap();
        }
        m.verify_now().unwrap();
    }

    #[test]
    fn concurrent_ops_with_concurrent_scans_stay_consistent() {
        let m = mem_with(|c| c.partitions = 8);
        let pages: Vec<u64> = (0..8).map(|_| m.allocate_page()).collect();
        let mut addrs = Vec::new();
        for &p in &pages {
            for j in 0..4 {
                addrs.push(m.insert_in(p, format!("seed-{p}-{j}").as_bytes()).unwrap());
            }
        }
        let stop = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..4 {
            let m = Arc::clone(&m);
            let addrs = addrs.clone();
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut i = t;
                while stop.load(Ordering::Relaxed) == 0 {
                    let a = addrs[i % addrs.len()];
                    let _ = m.read(a);
                    let _ = m.write(a, format!("w{t}-{i}").as_bytes());
                    i += 7;
                }
            }));
        }
        // Scanner thread races the workers.
        let scanner = {
            let m = Arc::clone(&m);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while stop.load(Ordering::Relaxed) == 0 {
                    m.scan_step().unwrap();
                }
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(1, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        scanner.join().unwrap();
        m.verify_now().unwrap();
        assert!(m.poisoned().is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use veridb_common::PrfBackend;

    #[derive(Debug, Clone)]
    enum Op {
        Insert(Vec<u8>),
        Read(usize),
        Write(usize, Vec<u8>),
        Delete(usize),
        Verify,
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => prop::collection::vec(any::<u8>(), 0..40).prop_map(Op::Insert),
            3 => any::<usize>().prop_map(Op::Read),
            2 => (any::<usize>(), prop::collection::vec(any::<u8>(), 0..40))
                .prop_map(|(i, d)| Op::Write(i, d)),
            1 => any::<usize>().prop_map(Op::Delete),
            1 => Just(Op::Verify),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// Any honest op sequence, with verification passes interleaved at
        /// arbitrary points, never fails verification, and every read
        /// returns what the model expects.
        #[test]
        fn honest_histories_always_verify(
            ops in prop::collection::vec(arb_op(), 0..80),
            verify_metadata in any::<bool>(),
        ) {
            let enclave = Enclave::create("prop-test", 1 << 22, [4u8; 32]);
            let m = VerifiedMemory::new(enclave, MemConfig {
                page_size: 1024,
                partitions: 2,
                verify_rsws: true,
                verify_metadata,
                verify_every_ops: None,
                track_touched_pages: true,
                compact_during_verification: true,
                prf: PrfBackend::SipHash,
            });
            let mut pages = vec![m.allocate_page()];
            let mut model: Vec<(CellAddr, Vec<u8>)> = Vec::new();
            for op in ops {
                match op {
                    Op::Insert(data) => {
                        let mut placed = None;
                        for &p in &pages {
                            if let Ok(a) = m.insert_in(p, &data) {
                                placed = Some(a);
                                break;
                            }
                        }
                        let addr = match placed {
                            Some(a) => a,
                            None => {
                                let p = m.allocate_page();
                                pages.push(p);
                                m.insert_in(p, &data).unwrap()
                            }
                        };
                        model.push((addr, data));
                    }
                    Op::Read(i) => {
                        if !model.is_empty() {
                            let (addr, expect) = &model[i % model.len()];
                            let got = m.read(*addr).unwrap();
                            prop_assert_eq!(&got, expect);
                        }
                    }
                    Op::Write(i, data) => {
                        if !model.is_empty() {
                            let idx = i % model.len();
                            let addr = model[idx].0;
                            if m.write(addr, &data).is_ok() {
                                model[idx].1 = data;
                            }
                        }
                    }
                    Op::Delete(i) => {
                        if !model.is_empty() {
                            let idx = i % model.len();
                            let (addr, _) = model.remove(idx);
                            m.delete(addr).unwrap();
                        }
                    }
                    Op::Verify => {
                        m.verify_now().unwrap();
                    }
                }
            }
            m.verify_now().unwrap();
            for (addr, expect) in &model {
                prop_assert_eq!(&m.read(*addr).unwrap(), expect);
            }
            m.verify_now().unwrap();
        }
    }
}
