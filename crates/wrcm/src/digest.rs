//! XOR-aggregated set digests.
//!
//! A [`SetDigest`] is the accumulator for `h(RS)` / `h(WS)`: the XOR-sum of
//! PRF images of set elements. XOR gives the two properties the protocol
//! needs: commutativity (elements arrive in any order under concurrency)
//! and self-inverse (folding the same element twice removes it, which is
//! how a read "consumes" the matching write).
//!
//! The paper stores 64-byte digest arrays; we use 32 bytes (the natural
//! HMAC-SHA-256 output), which already gives far more collision resistance
//! than the protocol needs. The deviation is recorded in DESIGN.md.

/// Byte length of a set digest.
pub const DIGEST_LEN: usize = 32;

/// An XOR-aggregated digest of a set of PRF images.
#[derive(Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct SetDigest(pub [u8; DIGEST_LEN]);

impl SetDigest {
    /// The identity element (empty set).
    pub const ZERO: SetDigest = SetDigest([0u8; DIGEST_LEN]);

    /// Fold another digest in (add or remove an element — XOR is its own
    /// inverse).
    pub fn fold(&mut self, other: &SetDigest) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a ^= b;
        }
    }

    /// `self XOR other` without mutation.
    pub fn folded(mut self, other: &SetDigest) -> SetDigest {
        self.fold(other);
        self
    }

    /// True for the empty-set digest.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&b| b == 0)
    }

    /// Hex rendering for logs and evidence dumps.
    pub fn to_hex(&self) -> String {
        const HEX: &[u8; 16] = b"0123456789abcdef";
        let mut s = String::with_capacity(DIGEST_LEN * 2);
        for &b in &self.0 {
            s.push(HEX[(b >> 4) as usize] as char);
            s.push(HEX[(b & 0x0f) as usize] as char);
        }
        s
    }
}

impl std::fmt::Debug for SetDigest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SetDigest({:02x}{:02x}{:02x}{:02x}…)",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(b: u8) -> SetDigest {
        SetDigest([b; DIGEST_LEN])
    }

    #[test]
    fn xor_algebra() {
        let mut acc = SetDigest::ZERO;
        acc.fold(&d(0xAA));
        acc.fold(&d(0x55));
        assert_eq!(acc, d(0xFF));
        acc.fold(&d(0x55)); // removing restores
        assert_eq!(acc, d(0xAA));
        acc.fold(&d(0xAA));
        assert!(acc.is_zero());
    }

    #[test]
    fn fold_is_commutative() {
        let mut a = SetDigest::ZERO;
        a.fold(&d(1));
        a.fold(&d(2));
        a.fold(&d(3));
        let mut b = SetDigest::ZERO;
        b.fold(&d(3));
        b.fold(&d(1));
        b.fold(&d(2));
        assert_eq!(a, b);
    }

    #[test]
    fn hex_rendering() {
        assert_eq!(SetDigest::ZERO.to_hex(), "0".repeat(64));
        assert!(d(0xAB).to_hex().starts_with("abab"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_digest() -> impl Strategy<Value = SetDigest> {
        any::<[u8; DIGEST_LEN]>().prop_map(SetDigest)
    }

    proptest! {
        #[test]
        fn fold_self_inverse(a in arb_digest(), b in arb_digest()) {
            let mut acc = a;
            acc.fold(&b);
            acc.fold(&b);
            prop_assert_eq!(acc, a);
        }

        #[test]
        fn fold_associative(a in arb_digest(), b in arb_digest(), c in arb_digest()) {
            let left = a.folded(&b).folded(&c);
            let right = a.folded(&b.folded(&c));
            prop_assert_eq!(left, right);
        }

        #[test]
        fn to_hex_round_trips(d in arb_digest()) {
            let hex = d.to_hex();
            prop_assert_eq!(hex.len(), DIGEST_LEN * 2);
            prop_assert!(
                hex.bytes().all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase()),
                "hex must be lowercase hexadecimal: {}", hex
            );
            let mut back = [0u8; DIGEST_LEN];
            for (i, pair) in hex.as_bytes().chunks(2).enumerate() {
                let nibble = |c: u8| {
                    if c.is_ascii_digit() { c - b'0' } else { c - b'a' + 10 }
                };
                back[i] = (nibble(pair[0]) << 4) | nibble(pair[1]);
            }
            prop_assert_eq!(SetDigest(back), d);
        }

        #[test]
        fn to_hex_is_injective(a in arb_digest(), b in arb_digest()) {
            prop_assert_eq!(a.to_hex() == b.to_hex(), a == b);
        }

        #[test]
        fn any_permutation_same_digest(
            elems in prop::collection::vec(arb_digest(), 0..16),
            seed in any::<u64>(),
        ) {
            let mut forward = SetDigest::ZERO;
            for e in &elems {
                forward.fold(e);
            }
            // a deterministic shuffle driven by the seed
            let mut shuffled = elems.clone();
            let mut s = seed;
            for i in (1..shuffled.len()).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let j = (s >> 33) as usize % (i + 1);
                shuffled.swap(i, j);
            }
            let mut backward = SetDigest::ZERO;
            for e in &shuffled {
                backward.fold(e);
            }
            prop_assert_eq!(forward, backward);
        }
    }
}
