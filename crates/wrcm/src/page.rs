//! Slotted pages in untrusted memory.
//!
//! The page layout follows the classic slotted-page design the paper
//! adopts (§4.2, "the structure of a VeriDB page resembles classic page
//! designs in database systems like Postgres"):
//!
//! ```text
//! +--------------------+ 0
//! | header (24 bytes)  |
//! +--------------------+ 24
//! | slot directory →   |   each entry: offset u16, data-len u16
//! |                    |
//! |   ... free ...     |
//! |                    |
//! | ← heap (cells)     |   each cell: ts u64, capacity u16, data bytes
//! +--------------------+ page_size
//! ```
//!
//! Records are addressed by `(page, slot)`; the slot directory maps slot →
//! heap offset. Deletes tombstone the slot and leave the heap bytes in
//! place (space reclaimed by [`RawPage::compact`], which VeriDB runs as a
//! side task of the verification scan, §4.3). Each cell carries the
//! protocol timestamp of its last write; the slot directory carries a
//! parallel metadata timestamp used only when metadata verification is on.
//!
//! Everything in this module is **untrusted state**: the host may mutate
//! the buffer arbitrarily (see [`crate::tamper`]). All methods are
//! therefore hardened to return errors, never panic, on corrupt layouts.

use veridb_common::{Error, Result};

/// Bytes reserved for the page header.
pub const PAGE_HEADER_BYTES: usize = 24;
/// Bytes per slot-directory entry (offset u16 + len u16).
pub const SLOT_ENTRY_BYTES: usize = 4;
/// Bytes of cell overhead preceding the data (ts u64 + capacity u16).
pub const CELL_HEADER_BYTES: usize = 10;
/// Magic tag at offset 0 of every registered page.
const PAGE_MAGIC: u32 = 0x5644_4250; // "VDBP"
/// Slot-directory offset value marking a free or tombstoned slot.
const SLOT_FREE: u16 = 0;

/// Index of a cell within a page.
pub type SlotId = u16;

/// A coalesced scan group: live cells whose outstanding RSWS multiset
/// element is a single group element (one PRF image over the members'
/// concatenated payloads at `ts`) instead of one element per cell.
///
/// Groups are created by batched verified reads and dissolved the moment
/// any member is touched individually. Like every other field of the page,
/// this is **untrusted** bookkeeping: the enclave never stores it, and a
/// host that forges, drops, or re-timestamps a group merely folds the
/// wrong elements into `h(RS)`, which the epoch close detects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanGroup {
    /// Member slots, in element-encoding order.
    pub slots: Vec<SlotId>,
    /// Timestamp the group element was written with.
    pub ts: u64,
}

/// One slotted page of untrusted memory.
pub struct RawPage {
    id: u64,
    buf: Vec<u8>,
    /// Metadata timestamps, one per slot (used when metadata verification
    /// is enabled; untrusted, like the rest of the page).
    meta_ts: Vec<u64>,
    /// Coalesced scan groups currently covering cells of this page
    /// (untrusted; member sets are disjoint under honest operation).
    groups: Vec<ScanGroup>,
}

impl RawPage {
    /// Create an empty page of `size` bytes.
    pub fn new(id: u64, size: usize) -> Self {
        assert!(
            size >= 256 && size <= (u16::MAX as usize + 1),
            "page size out of range"
        );
        let mut buf = vec![0u8; size];
        buf[0..4].copy_from_slice(&PAGE_MAGIC.to_le_bytes());
        buf[4..12].copy_from_slice(&id.to_le_bytes());
        let mut page = RawPage {
            id,
            buf,
            meta_ts: Vec::new(),
            groups: Vec::new(),
        };
        page.set_heap_top_usize(size); // heap grows down from the end
        page
    }

    /// Page id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Page size in bytes.
    pub fn size(&self) -> usize {
        self.buf.len()
    }

    // ---- header accessors (u16 fields at fixed offsets) -----------------

    fn get_u16_at(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.buf[off], self.buf[off + 1]])
    }

    fn set_u16_at(&mut self, off: usize, v: u16) {
        self.buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Number of slot-directory entries (live + tombstoned).
    pub fn slot_count(&self) -> u16 {
        self.get_u16_at(12)
    }

    fn set_slot_count(&mut self, v: u16) {
        self.set_u16_at(12, v);
    }

    /// Offset of the lowest heap byte in use. `size` when the heap is empty
    /// (`heap_top == size` means no cells allocated yet); allocation moves
    /// it downward. Stored as `size - heap_top` so a 64 KiB page stays
    /// addressable with u16 header fields.
    pub fn heap_top(&self) -> usize {
        self.heap_top_usize()
    }

    fn heap_top_usize(&self) -> usize {
        self.buf.len() - self.get_u16_at(14) as usize
    }

    fn set_heap_top_usize(&mut self, v: usize) {
        let stored = (self.buf.len() - v) as u16;
        self.set_u16_at(14, stored);
    }

    /// Total bytes of live cells (headers included).
    pub fn live_bytes(&self) -> u16 {
        self.get_u16_at(16)
    }

    fn set_live_bytes(&mut self, v: u16) {
        self.set_u16_at(16, v);
    }

    /// Number of live (non-tombstoned) slots.
    pub fn live_slots(&self) -> u16 {
        self.get_u16_at(18)
    }

    fn set_live_slots(&mut self, v: u16) {
        self.set_u16_at(18, v);
    }

    // ---- slot directory --------------------------------------------------

    fn slot_entry_pos(slot: SlotId) -> usize {
        PAGE_HEADER_BYTES + SLOT_ENTRY_BYTES * slot as usize
    }

    fn slot_offset(&self, slot: SlotId) -> u16 {
        self.get_u16_at(Self::slot_entry_pos(slot))
    }

    fn slot_len(&self, slot: SlotId) -> u16 {
        self.get_u16_at(Self::slot_entry_pos(slot) + 2)
    }

    fn set_slot(&mut self, slot: SlotId, offset: u16, len: u16) {
        let pos = Self::slot_entry_pos(slot);
        self.set_u16_at(pos, offset);
        self.set_u16_at(pos + 2, len);
    }

    /// The raw 4-byte slot-directory entry — the "page metadata" datum that
    /// metadata verification folds into the digests.
    pub fn slot_entry_bytes(&self, slot: SlotId) -> [u8; 4] {
        let pos = Self::slot_entry_pos(slot);
        [
            self.buf[pos],
            self.buf[pos + 1],
            self.buf[pos + 2],
            self.buf[pos + 3],
        ]
    }

    /// Metadata timestamp of a slot-directory entry.
    pub fn meta_ts(&self, slot: SlotId) -> u64 {
        self.meta_ts.get(slot as usize).copied().unwrap_or(0)
    }

    /// Set the metadata timestamp of a slot-directory entry.
    pub fn set_meta_ts(&mut self, slot: SlotId, ts: u64) {
        let idx = slot as usize;
        if idx >= self.meta_ts.len() {
            self.meta_ts.resize(idx + 1, 0);
        }
        self.meta_ts[idx] = ts;
    }

    /// Whether `slot` exists and holds a live cell.
    pub fn is_live(&self, slot: SlotId) -> bool {
        slot < self.slot_count() && self.slot_offset(slot) != SLOT_FREE
    }

    // ---- space accounting -------------------------------------------------

    fn directory_end(&self) -> usize {
        PAGE_HEADER_BYTES + SLOT_ENTRY_BYTES * self.slot_count() as usize
    }

    /// Contiguous free bytes between the slot directory and the heap.
    pub fn contiguous_free(&self) -> usize {
        self.heap_top_usize().saturating_sub(self.directory_end())
    }

    /// Free bytes assuming a compaction ran (contiguous + reclaimable
    /// holes). This is the number the storage layer's allocator uses.
    pub fn free_after_compaction(&self) -> usize {
        let used = self.directory_end() + self.live_bytes() as usize;
        self.buf.len().saturating_sub(used)
    }

    /// Whether compaction would reclaim a meaningful amount of space.
    pub fn needs_compaction(&self) -> bool {
        self.free_after_compaction() > self.contiguous_free()
    }

    /// Can a cell of `data_len` bytes be inserted right now (without
    /// compaction)?
    pub fn fits(&self, data_len: usize) -> bool {
        let cell = CELL_HEADER_BYTES + data_len;
        // Worst case a fresh slot entry is also needed.
        self.contiguous_free() >= cell + SLOT_ENTRY_BYTES
    }

    // ---- cell operations ---------------------------------------------------

    fn find_free_slot(&self) -> Option<SlotId> {
        (0..self.slot_count()).find(|&s| self.slot_offset(s) == SLOT_FREE)
    }

    /// Insert a cell. Returns the assigned slot, or `Err(PageFull)`.
    ///
    /// This only manipulates untrusted bytes; the caller (the verified
    /// memory) is responsible for folding the event into the digests.
    pub fn insert(&mut self, data: &[u8], ts: u64) -> Result<SlotId> {
        let cell_size = CELL_HEADER_BYTES + data.len();
        let (slot, new_slot) = match self.find_free_slot() {
            Some(s) => (s, false),
            None => (self.slot_count(), true),
        };
        let dir_growth = if new_slot { SLOT_ENTRY_BYTES } else { 0 };
        if self.contiguous_free() < cell_size + dir_growth {
            return Err(Error::PageFull {
                page: self.id,
                needed: cell_size + dir_growth,
                available: self.contiguous_free(),
            });
        }
        if new_slot {
            self.set_slot_count(self.slot_count() + 1);
        }
        let offset = self.heap_top_usize() - cell_size;
        self.write_cell_at(offset, data, data.len() as u16, ts);
        self.set_heap_top_usize(offset);
        self.set_slot(slot, offset as u16, data.len() as u16);
        self.set_live_bytes(self.live_bytes() + cell_size as u16);
        self.set_live_slots(self.live_slots() + 1);
        Ok(slot)
    }

    fn write_cell_at(&mut self, offset: usize, data: &[u8], cap: u16, ts: u64) {
        self.buf[offset..offset + 8].copy_from_slice(&ts.to_le_bytes());
        self.buf[offset + 8..offset + 10].copy_from_slice(&cap.to_le_bytes());
        self.buf[offset + 10..offset + 10 + data.len()].copy_from_slice(data);
    }

    fn cell_capacity(&self, offset: usize) -> u16 {
        self.get_u16_at(offset + 8)
    }

    /// Read a live cell: `(data, ts)`.
    pub fn read(&self, slot: SlotId) -> Result<(&[u8], u64)> {
        if slot >= self.slot_count() {
            return Err(Error::SlotNotFound {
                page: self.id,
                slot,
            });
        }
        let offset = self.slot_offset(slot) as usize;
        if offset == SLOT_FREE as usize {
            return Err(Error::SlotNotFound {
                page: self.id,
                slot,
            });
        }
        let len = self.slot_len(slot) as usize;
        if offset + CELL_HEADER_BYTES + len > self.buf.len() {
            return Err(Error::Codec(format!(
                "corrupt slot entry: page {} slot {slot} points past the page",
                self.id
            )));
        }
        let mut ts_bytes = [0u8; 8];
        ts_bytes.copy_from_slice(&self.buf[offset..offset + 8]);
        let ts = u64::from_le_bytes(ts_bytes);
        let data = &self.buf[offset + CELL_HEADER_BYTES..offset + CELL_HEADER_BYTES + len];
        Ok((data, ts))
    }

    /// Update only a live cell's timestamp (the read write-back of
    /// Algorithm 1 rewrites the timestamp, not the data).
    pub fn set_ts(&mut self, slot: SlotId, ts: u64) -> Result<()> {
        if !self.is_live(slot) {
            return Err(Error::SlotNotFound {
                page: self.id,
                slot,
            });
        }
        let offset = self.slot_offset(slot) as usize;
        self.buf[offset..offset + 8].copy_from_slice(&ts.to_le_bytes());
        Ok(())
    }

    /// Overwrite a live cell's data in place if it fits the cell's
    /// capacity, else re-allocate within the page. `Err(PageFull)` if the
    /// larger cell no longer fits.
    pub fn write(&mut self, slot: SlotId, data: &[u8], ts: u64) -> Result<()> {
        if !self.is_live(slot) {
            return Err(Error::SlotNotFound {
                page: self.id,
                slot,
            });
        }
        let offset = self.slot_offset(slot) as usize;
        let cap = self.cell_capacity(offset) as usize;
        let old_len = self.slot_len(slot) as usize;
        if data.len() <= cap {
            self.buf[offset..offset + 8].copy_from_slice(&ts.to_le_bytes());
            self.buf[offset + CELL_HEADER_BYTES..offset + CELL_HEADER_BYTES + data.len()]
                .copy_from_slice(data);
            self.set_slot(slot, offset as u16, data.len() as u16);
            // Capacity is unchanged; live byte accounting follows data len.
            let delta_old = CELL_HEADER_BYTES + old_len;
            let delta_new = CELL_HEADER_BYTES + data.len();
            self.set_live_bytes((self.live_bytes() as usize - delta_old + delta_new) as u16);
            return Ok(());
        }
        // Grow: allocate a fresh cell region; the old region becomes a hole.
        let cell_size = CELL_HEADER_BYTES + data.len();
        if self.contiguous_free() < cell_size {
            return Err(Error::PageFull {
                page: self.id,
                needed: cell_size,
                available: self.contiguous_free(),
            });
        }
        let new_offset = self.heap_top_usize() - cell_size;
        self.write_cell_at(new_offset, data, data.len() as u16, ts);
        self.set_heap_top_usize(new_offset);
        self.set_slot(slot, new_offset as u16, data.len() as u16);
        let delta_old = CELL_HEADER_BYTES + old_len;
        let delta_new = CELL_HEADER_BYTES + data.len();
        self.set_live_bytes((self.live_bytes() as usize - delta_old + delta_new) as u16);
        Ok(())
    }

    /// Tombstone a cell. The heap bytes become a hole for the next
    /// compaction (§4.3: deletes do not relocate records).
    pub fn delete(&mut self, slot: SlotId) -> Result<()> {
        if !self.is_live(slot) {
            return Err(Error::SlotNotFound {
                page: self.id,
                slot,
            });
        }
        let len = self.slot_len(slot) as usize;
        // Live-byte accounting uses data length; capacity slack was already
        // counted as a hole by live_bytes bookkeeping on shrinking writes.
        let cell_size = CELL_HEADER_BYTES + len;
        self.set_slot(slot, SLOT_FREE, 0);
        self.set_live_bytes(self.live_bytes() - cell_size as u16);
        self.set_live_slots(self.live_slots() - 1);
        Ok(())
    }

    /// Iterate live cells: `(slot, data, ts)`.
    pub fn iter_live(&self) -> impl Iterator<Item = (SlotId, &[u8], u64)> + '_ {
        (0..self.slot_count()).filter_map(move |slot| {
            if self.slot_offset(slot) == SLOT_FREE {
                return None;
            }
            self.read(slot).ok().map(|(data, ts)| (slot, data, ts))
        })
    }

    /// Slots of live cells (stable under compaction).
    pub fn live_slot_ids(&self) -> Vec<SlotId> {
        (0..self.slot_count())
            .filter(|&s| self.slot_offset(s) != SLOT_FREE)
            .collect()
    }

    // ---- scan groups ------------------------------------------------------

    /// The scan groups currently covering cells of this page.
    pub fn groups(&self) -> &[ScanGroup] {
        &self.groups
    }

    /// Index of the group containing `slot`, if any. Group counts per page
    /// are tiny (usually 0 or 1), so a linear scan is cheapest.
    pub fn group_of(&self, slot: SlotId) -> Option<usize> {
        self.groups.iter().position(|g| g.slots.contains(&slot))
    }

    /// Record a new scan group. The caller (the verified memory) is
    /// responsible for having folded the matching group element into
    /// `h(WS)`.
    pub fn add_group(&mut self, slots: Vec<SlotId>, ts: u64) {
        self.groups.push(ScanGroup { slots, ts });
    }

    /// Remove and return group `idx`.
    pub fn take_group(&mut self, idx: usize) -> ScanGroup {
        self.groups.swap_remove(idx)
    }

    /// Remove and return the group containing `slot`, if any.
    pub fn take_group_of(&mut self, slot: SlotId) -> Option<ScanGroup> {
        self.group_of(slot).map(|i| self.groups.swap_remove(i))
    }

    /// Direct mutable access to the group list — part of the host's
    /// tampering surface, used by attack tests only.
    #[doc(hidden)]
    pub fn groups_mut(&mut self) -> &mut Vec<ScanGroup> {
        &mut self.groups
    }

    /// Compact the heap: rewrite live cells contiguously at the bottom of
    /// the page and reset capacities to data lengths. Slot ids (and thus
    /// protocol addresses) are unchanged; only offsets move, which is page
    /// *metadata*. Returns the number of bytes reclaimed.
    pub fn compact(&mut self) -> usize {
        let before = self.contiguous_free();
        // Gather live cells (slot, data, ts) ordered by descending offset so
        // we can repack from the end of the page without overlap hazards.
        let mut live: Vec<(SlotId, Vec<u8>, u64)> = Vec::new();
        for (slot, data, ts) in self.iter_live() {
            live.push((slot, data.to_vec(), ts));
        }
        let mut write_pos = self.buf.len();
        for (slot, data, ts) in &live {
            let cell_size = CELL_HEADER_BYTES + data.len();
            write_pos -= cell_size;
            self.write_cell_at(write_pos, data, data.len() as u16, *ts);
            self.set_slot(*slot, write_pos as u16, data.len() as u16);
        }
        self.set_heap_top_usize(write_pos);
        // live_bytes is now exact (capacity slack squeezed out).
        let exact: usize = live
            .iter()
            .map(|(_, d, _)| CELL_HEADER_BYTES + d.len())
            .sum();
        self.set_live_bytes(exact as u16);
        self.contiguous_free() - before
    }

    /// Direct mutable access to the raw buffer — the host's tampering
    /// surface, used by [`crate::tamper`] and attack tests only.
    #[doc(hidden)]
    pub fn raw_buf_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }

    /// Direct read access to the raw buffer.
    #[doc(hidden)]
    pub fn raw_buf(&self) -> &[u8] {
        &self.buf
    }
}

impl std::fmt::Debug for RawPage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RawPage")
            .field("id", &self.id)
            .field("size", &self.buf.len())
            .field("slots", &self.slot_count())
            .field("live_slots", &self.live_slots())
            .field("contiguous_free", &self.contiguous_free())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> RawPage {
        RawPage::new(7, 1024)
    }

    #[test]
    fn insert_read_round_trip() {
        let mut p = page();
        let s = p.insert(b"hello world", 42).unwrap();
        let (data, ts) = p.read(s).unwrap();
        assert_eq!(data, b"hello world");
        assert_eq!(ts, 42);
        assert_eq!(p.live_slots(), 1);
    }

    #[test]
    fn multiple_inserts_get_distinct_slots() {
        let mut p = page();
        let a = p.insert(b"aaa", 1).unwrap();
        let b = p.insert(b"bbbb", 2).unwrap();
        let c = p.insert(b"c", 3).unwrap();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(p.read(a).unwrap().0, b"aaa");
        assert_eq!(p.read(b).unwrap().0, b"bbbb");
        assert_eq!(p.read(c).unwrap().0, b"c");
    }

    #[test]
    fn page_full_is_reported() {
        let mut p = RawPage::new(1, 256);
        let big = vec![0xAAu8; 300];
        assert!(matches!(p.insert(&big, 1), Err(Error::PageFull { .. })));
        // Fill with small cells until full, then verify the error.
        let mut n = 0;
        loop {
            match p.insert(b"0123456789", 1) {
                Ok(_) => n += 1,
                Err(Error::PageFull { .. }) => break,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert!(n > 0);
    }

    #[test]
    fn delete_tombstones_and_reuses_slot_ids() {
        let mut p = page();
        let a = p.insert(b"aaa", 1).unwrap();
        let _b = p.insert(b"bbb", 2).unwrap();
        p.delete(a).unwrap();
        assert!(!p.is_live(a));
        assert!(matches!(p.read(a), Err(Error::SlotNotFound { .. })));
        assert_eq!(p.live_slots(), 1);
        // Next insert reuses the tombstoned slot id.
        let c = p.insert(b"ccc", 3).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn delete_then_compact_reclaims_space() {
        let mut p = RawPage::new(1, 512);
        let mut slots = Vec::new();
        while let Ok(s) = p.insert(&[0xCD; 40], 1) {
            slots.push(s);
        }
        let full_free = p.contiguous_free();
        // Delete every other record: holes, not contiguous space.
        for s in slots.iter().step_by(2) {
            p.delete(*s).unwrap();
        }
        assert_eq!(p.contiguous_free(), full_free, "deletes leave holes");
        assert!(p.needs_compaction());
        let reclaimed = p.compact();
        assert!(reclaimed > 0);
        assert!(!p.needs_compaction());
        // Survivors intact, same slot ids.
        for s in slots.iter().skip(1).step_by(2) {
            assert_eq!(p.read(*s).unwrap().0, &[0xCD; 40]);
        }
    }

    #[test]
    fn in_place_write_and_growing_write() {
        let mut p = page();
        let s = p.insert(b"0123456789", 1).unwrap();
        // shrink in place
        p.write(s, b"abc", 2).unwrap();
        assert_eq!(p.read(s).unwrap(), (&b"abc"[..], 2));
        // grow within capacity (10)
        p.write(s, b"abcdefghij", 3).unwrap();
        assert_eq!(p.read(s).unwrap(), (&b"abcdefghij"[..], 3));
        // grow past capacity: relocates inside the page
        p.write(s, b"abcdefghijklmnop", 4).unwrap();
        assert_eq!(p.read(s).unwrap(), (&b"abcdefghijklmnop"[..], 4));
    }

    #[test]
    fn set_ts_touches_only_the_timestamp() {
        let mut p = page();
        let s = p.insert(b"payload", 10).unwrap();
        p.set_ts(s, 99).unwrap();
        assert_eq!(p.read(s).unwrap(), (&b"payload"[..], 99));
    }

    #[test]
    fn iter_live_skips_tombstones() {
        let mut p = page();
        let a = p.insert(b"a", 1).unwrap();
        let b = p.insert(b"b", 2).unwrap();
        let c = p.insert(b"c", 3).unwrap();
        p.delete(b).unwrap();
        let live: Vec<SlotId> = p.iter_live().map(|(s, _, _)| s).collect();
        assert_eq!(live, vec![a, c]);
    }

    #[test]
    fn meta_ts_tracks_per_slot() {
        let mut p = page();
        let s = p.insert(b"x", 1).unwrap();
        assert_eq!(p.meta_ts(s), 0);
        p.set_meta_ts(s, 5);
        assert_eq!(p.meta_ts(s), 5);
    }

    #[test]
    fn corrupt_slot_offset_is_an_error_not_a_panic() {
        let mut p = page();
        let s = p.insert(b"x", 1).unwrap();
        // Host scribbles an out-of-range offset into the slot directory.
        let pos = PAGE_HEADER_BYTES + SLOT_ENTRY_BYTES * s as usize;
        p.raw_buf_mut()[pos..pos + 2].copy_from_slice(&0xFFF0u16.to_le_bytes());
        p.raw_buf_mut()[pos + 2..pos + 4].copy_from_slice(&100u16.to_le_bytes());
        assert!(p.read(s).is_err());
    }

    #[test]
    fn compact_preserves_timestamps() {
        let mut p = page();
        let a = p.insert(b"aa", 11).unwrap();
        let b = p.insert(b"bb", 22).unwrap();
        p.delete(a).unwrap();
        p.compact();
        assert_eq!(p.read(b).unwrap(), (&b"bb"[..], 22));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[derive(Debug, Clone)]
    enum Op {
        Insert(Vec<u8>),
        Delete(usize),
        Write(usize, Vec<u8>),
        Compact,
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            prop::collection::vec(any::<u8>(), 0..64).prop_map(Op::Insert),
            any::<usize>().prop_map(Op::Delete),
            (any::<usize>(), prop::collection::vec(any::<u8>(), 0..64))
                .prop_map(|(i, d)| Op::Write(i, d)),
            Just(Op::Compact),
        ]
    }

    proptest! {
        /// After any op sequence, every live slot reads back exactly what
        /// the model says it holds, and tombstoned slots error.
        #[test]
        fn page_matches_model(ops in prop::collection::vec(arb_op(), 0..60)) {
            let mut page = RawPage::new(1, 2048);
            let mut model: HashMap<SlotId, (Vec<u8>, u64)> = HashMap::new();
            let mut ts = 0u64;
            for op in ops {
                ts += 1;
                match op {
                    Op::Insert(data) => {
                        if let Ok(slot) = page.insert(&data, ts) {
                            // insert may reuse a tombstoned slot id
                            model.insert(slot, (data, ts));
                        }
                    }
                    Op::Delete(i) => {
                        let keys: Vec<SlotId> = model.keys().copied().collect();
                        if !keys.is_empty() {
                            let slot = keys[i % keys.len()];
                            page.delete(slot).unwrap();
                            model.remove(&slot);
                        }
                    }
                    Op::Write(i, data) => {
                        let keys: Vec<SlotId> = model.keys().copied().collect();
                        if !keys.is_empty() {
                            let slot = keys[i % keys.len()];
                            if page.write(slot, &data, ts).is_ok() {
                                model.insert(slot, (data, ts));
                            }
                        }
                    }
                    Op::Compact => {
                        page.compact();
                    }
                }
            }
            prop_assert_eq!(page.live_slots() as usize, model.len());
            for (slot, (data, wts)) in &model {
                let (got, got_ts) = page.read(*slot).unwrap();
                prop_assert_eq!(got, data.as_slice());
                prop_assert_eq!(got_ts, *wts);
            }
        }
    }
}
