//! The adversarial host's toolbox.
//!
//! The paper's threat model (§3.1) gives the service provider full control
//! over everything outside the enclave: it can "insert, alter or delete
//! arbitrary data in the database". This module exposes exactly those
//! powers against a [`VerifiedMemory`], bypassing every protected
//! primitive, so attack tests and examples can demonstrate that the
//! verification protocol *detects* each class of misbehavior:
//!
//! - [`overwrite_cell`] — direct modification of record bytes.
//! - [`replay_cell`] — revert a cell to a previously valid `(data, ts)`
//!   pair (the attack that breaks the timestamp-free abridged protocol).
//! - [`resurrect_cell`] — re-insert a deleted record's bytes.
//! - [`clobber_slot_directory`] — corrupt page metadata (detected only
//!   when metadata verification is enabled; §4.3 discusses this tradeoff).
//!
//! None of these functions touch the enclave digests — that is the point.

use crate::memory::{CellAddr, VerifiedMemory};
use crate::page::SlotId;
use veridb_common::Result;

/// Overwrite a live cell's data in place, keeping its length. Bypasses the
/// protocol entirely.
pub fn overwrite_cell(mem: &VerifiedMemory, addr: CellAddr, new_data: &[u8]) -> Result<()> {
    mem.with_page_mut(addr.page, |p| {
        let ts = p.read(addr.slot).map(|(_, t)| t)?;
        p.write(addr.slot, new_data, ts)
    })?
}

/// Record a cell's current `(data, ts)` for a later replay.
pub fn snapshot_cell(mem: &VerifiedMemory, addr: CellAddr) -> Result<(Vec<u8>, u64)> {
    mem.with_page_mut(addr.page, |p| {
        p.read(addr.slot).map(|(d, t)| (d.to_vec(), t))
    })?
}

/// Revert a cell to a previously captured `(data, ts)` pair — the rollback
/// / stale-read attack. With timestamps in the PRF input this is caught at
/// the next epoch close; without them it would XOR-cancel undetected.
pub fn replay_cell(
    mem: &VerifiedMemory,
    addr: CellAddr,
    old_data: &[u8],
    old_ts: u64,
) -> Result<()> {
    mem.with_page_mut(addr.page, |p| p.write(addr.slot, old_data, old_ts))?
}

/// Re-insert a deleted record's bytes into a specific free slot of a page,
/// bypassing the protocol (an "undelete" attack).
pub fn resurrect_cell(mem: &VerifiedMemory, page: u64, data: &[u8], ts: u64) -> Result<SlotId> {
    mem.with_page_mut(page, |p| p.insert(data, ts))?
}

/// Discard a page's coalesced scan-group bookkeeping, so the verifier
/// recomputes singleton elements where the enclave inserted one group
/// element (a host "forgetting" how a batch was re-inserted).
pub fn drop_groups(mem: &VerifiedMemory, page: u64) -> Result<()> {
    mem.with_page_mut(page, |p| p.groups_mut().clear())
}

/// Rewrite the timestamp of the group covering `slot` (a group-level
/// replay). Returns `false` when no group covers the slot.
pub fn retime_group(mem: &VerifiedMemory, page: u64, slot: SlotId, ts: u64) -> Result<bool> {
    mem.with_page_mut(page, |p| {
        for g in p.groups_mut() {
            if g.slots.contains(&slot) {
                g.ts = ts;
                return true;
            }
        }
        false
    })
}

/// Remove `slot` from its covering group's membership list without
/// touching the cell itself. Returns `false` when no group covers it.
pub fn eject_from_group(mem: &VerifiedMemory, page: u64, slot: SlotId) -> Result<bool> {
    mem.with_page_mut(page, |p| {
        for g in p.groups_mut() {
            if let Some(pos) = g.slots.iter().position(|&s| s == slot) {
                g.slots.remove(pos);
                return true;
            }
        }
        false
    })
}

/// Scribble over a slot-directory entry (page metadata).
pub fn clobber_slot_directory(mem: &VerifiedMemory, page: u64, slot: SlotId) -> Result<()> {
    mem.with_page_mut(page, |p| {
        let pos = crate::page::PAGE_HEADER_BYTES + crate::page::SLOT_ENTRY_BYTES * slot as usize;
        let buf = p.raw_buf_mut();
        if pos + 4 <= buf.len() {
            buf[pos] ^= 0xFF;
            buf[pos + 1] ^= 0x0F;
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemConfig;
    use std::sync::Arc;
    use veridb_common::{Error, PrfBackend};
    use veridb_enclave::Enclave;

    fn mem(verify_metadata: bool) -> Arc<VerifiedMemory> {
        let enclave = Enclave::create("tamper-test", 1 << 22, [2u8; 32]);
        VerifiedMemory::new(
            enclave,
            MemConfig {
                page_size: 1024,
                partitions: 1,
                verify_rsws: true,
                verify_metadata,
                verify_every_ops: None,
                track_touched_pages: true,
                compact_during_verification: true,
                prf: PrfBackend::HmacSha256,
                metrics: true,
                workers: 1,
                cell_cache_bytes: 0,
            },
        )
    }

    #[test]
    fn honest_history_verifies() {
        let m = mem(false);
        let page = m.allocate_page();
        let a = m.insert_in(page, b"alpha").unwrap();
        let b = m.insert_in(page, b"beta").unwrap();
        assert_eq!(m.read(a).unwrap(), b"alpha");
        m.write(a, b"alpha2").unwrap();
        m.delete(b).unwrap();
        assert_eq!(m.read(a).unwrap(), b"alpha2");
        let report = m.verify_now().unwrap();
        assert_eq!(report.epochs, vec![1]);
        // And a second epoch over the carried state.
        m.read(a).unwrap();
        m.verify_now().unwrap();
    }

    #[test]
    fn direct_overwrite_detected_at_scan() {
        let m = mem(false);
        let page = m.allocate_page();
        let a = m.insert_in(page, b"honest").unwrap();
        overwrite_cell(&m, a, b"forged").unwrap();
        let err = m.verify_now().unwrap_err();
        assert!(matches!(err, Error::VerificationFailed { .. }));
        assert!(m.poisoned().is_some());
    }

    #[test]
    fn replay_of_stale_value_detected() {
        let m = mem(false);
        let page = m.allocate_page();
        let a = m.insert_in(page, b"version-1").unwrap();
        let (old_data, old_ts) = snapshot_cell(&m, a).unwrap();
        // Legitimate update to version 2...
        m.write(a, b"version-2").unwrap();
        // ...then the host reverts to the stale but once-valid pair.
        replay_cell(&m, a, &old_data, old_ts).unwrap();
        // A subsequent read returns stale data; deferred verification
        // catches it when the epoch closes.
        let got = m.read(a).unwrap();
        assert_eq!(got, b"version-1", "host successfully served stale data");
        let err = m.verify_now().unwrap_err();
        assert!(matches!(err, Error::VerificationFailed { .. }));
    }

    #[test]
    fn replay_detected_even_without_intervening_read() {
        let m = mem(false);
        let page = m.allocate_page();
        let a = m.insert_in(page, b"v1").unwrap();
        let (d, t) = snapshot_cell(&m, a).unwrap();
        m.write(a, b"v2").unwrap();
        replay_cell(&m, a, &d, t).unwrap();
        assert!(m.verify_now().is_err());
    }

    #[test]
    fn resurrecting_deleted_record_detected() {
        let m = mem(false);
        let page = m.allocate_page();
        let a = m.insert_in(page, b"to-be-deleted").unwrap();
        let (d, t) = snapshot_cell(&m, a).unwrap();
        m.delete(a).unwrap();
        resurrect_cell(&m, page, &d, t).unwrap();
        assert!(m.verify_now().is_err());
    }

    #[test]
    fn metadata_clobber_detected_only_with_metadata_verification() {
        // Without metadata verification the scan of record data reads via
        // the (corrupted) slot directory — corrupting an entry makes the
        // record unreadable or changes which bytes are read, which the
        // data digests catch; but a *consistent* metadata-only lie (e.g.
        // false free-space accounting) is invisible, as §4.3 concedes.
        let m = mem(true);
        let page = m.allocate_page();
        let a = m.insert_in(page, b"payload").unwrap();
        clobber_slot_directory(&m, page, a.slot).unwrap();
        assert!(m.verify_now().is_err());
    }

    #[test]
    fn wasting_free_space_is_undetected_without_metadata_verification() {
        // §4.3's accepted blind spot: the host lies about free space. With
        // metadata verification OFF this is not an integrity violation.
        let m = mem(false);
        let page = m.allocate_page();
        let _a = m.insert_in(page, b"payload").unwrap();
        // Host corrupts the header's free-space bookkeeping only.
        m.with_page_mut(page, |p| {
            let buf = p.raw_buf_mut();
            buf[16] = 0xEE; // live_bytes low byte
        })
        .unwrap();
        // Record data digests are untouched: verification passes.
        m.verify_now().unwrap();
    }

    #[test]
    fn batched_read_of_tampered_cell_detected() {
        use crate::memory::ReadBatch;
        let m = mem(false);
        let page = m.allocate_page();
        let addrs: Vec<_> = (0..6)
            .map(|i| m.insert_in(page, format!("honest-{i}").as_bytes()).unwrap())
            .collect();
        m.verify_now().unwrap();
        // Host forges one cell in the middle of the batch.
        overwrite_cell(&m, addrs[3], b"forged!!!").unwrap();
        // The batched read happily returns the forged bytes (reads are
        // optimistic)...
        let slots: Vec<_> = addrs.iter().map(|a| a.slot).collect();
        let mut batch = ReadBatch::new();
        m.read_page_batch(page, &slots, &mut batch).unwrap();
        assert_eq!(batch.get(3).unwrap().1, b"forged!!!");
        // ...but it folded PRF(forged bytes, stale ts) into h(RS), which no
        // write ever produced: the epoch close must alarm.
        let err = m.verify_now().unwrap_err();
        assert!(matches!(err, Error::VerificationFailed { .. }));
        assert!(m.poisoned().is_some());
    }

    #[test]
    fn batched_read_of_replayed_cell_detected() {
        use crate::memory::ReadBatch;
        let m = mem(false);
        let page = m.allocate_page();
        let a = m.insert_in(page, b"v1").unwrap();
        let b = m.insert_in(page, b"other").unwrap();
        let (old, ts) = snapshot_cell(&m, a).unwrap();
        m.write(a, b"v2").unwrap();
        replay_cell(&m, a, &old, ts).unwrap();
        let mut batch = ReadBatch::new();
        m.read_page_batch(page, &[a.slot, b.slot], &mut batch)
            .unwrap();
        assert_eq!(batch.get(0).unwrap().1, b"v1", "stale value served");
        assert!(
            m.verify_now().is_err(),
            "replay must be caught at epoch close"
        );
    }

    /// Build a page whose cells are covered by one coalesced scan group
    /// (the state a batched read leaves behind).
    fn grouped_page(m: &VerifiedMemory) -> (u64, Vec<CellAddr>) {
        use crate::memory::ReadBatch;
        let page = m.allocate_page();
        let addrs: Vec<_> = (0..5)
            .map(|i| m.insert_in(page, format!("grp-{i}").as_bytes()).unwrap())
            .collect();
        let slots: Vec<_> = addrs.iter().map(|a| a.slot).collect();
        let mut batch = ReadBatch::new();
        m.read_page_batch(page, &slots, &mut batch).unwrap();
        (page, addrs)
    }

    #[test]
    fn honest_grouped_page_verifies() {
        let m = mem(false);
        let (_, _) = grouped_page(&m);
        m.verify_now().unwrap();
    }

    #[test]
    fn dropping_group_bookkeeping_detected() {
        // The group list lives in untrusted memory; the enclave folded ONE
        // group element into h(WS). If the host discards the grouping, the
        // verifier recomputes singletons instead — nothing cancels the
        // outstanding group element and the epoch close alarms.
        let m = mem(false);
        let (page, _) = grouped_page(&m);
        drop_groups(&m, page).unwrap();
        let err = m.verify_now().unwrap_err();
        assert!(matches!(err, Error::VerificationFailed { .. }));
        assert!(m.poisoned().is_some());
    }

    #[test]
    fn retiming_group_detected() {
        let m = mem(false);
        let (page, addrs) = grouped_page(&m);
        assert!(retime_group(&m, page, addrs[0].slot, 1).unwrap());
        assert!(m.verify_now().is_err());
    }

    #[test]
    fn forging_group_membership_detected() {
        let m = mem(false);
        let (page, addrs) = grouped_page(&m);
        assert!(eject_from_group(&m, page, addrs[2].slot).unwrap());
        // The ejected cell now recomputes as a singleton AND the group tag
        // covers different bytes: both sides of the lie break the digest.
        assert!(m.verify_now().is_err());
    }

    #[test]
    fn overwriting_grouped_cell_detected() {
        let m = mem(false);
        let (page, addrs) = grouped_page(&m);
        let _ = page;
        overwrite_cell(&m, addrs[3], b"forged!").unwrap();
        assert!(m.verify_now().is_err());
    }

    #[test]
    fn tamper_on_untouched_page_detected_on_next_touch_epoch() {
        let m = mem(false);
        let page = m.allocate_page();
        let a = m.insert_in(page, b"cold data").unwrap();
        m.verify_now().unwrap(); // epoch 1: page cached as clean
        overwrite_cell(&m, a, b"evil data").unwrap();
        // The page is untouched in epoch 2, so the cached digest carries
        // and the scan passes — detection is deferred...
        m.verify_now().unwrap();
        // ...until the tampered data influences a read.
        let _ = m.read(a).unwrap();
        assert!(m.verify_now().is_err());
    }
}
