//! Keyed pseudo-random functions for set-digest contributions.
//!
//! Each memory event `(addr, kind, data, ts)` is mapped to a 32-byte PRF
//! image which is XOR-folded into `h(RS)` / `h(WS)`. Two backends:
//!
//! - [`HmacPrf`]: HMAC-SHA-256 — the cryptographic default. Matches the
//!   paper's security argument (collision-resistant keyed hash).
//! - [`SipPrf`]: keyed SipHash-2-4 producing a 128-bit tag, evaluated under
//!   two independent sub-keys to fill 32 bytes. ~20× faster; stands in for
//!   the hardware-accelerated hashing the paper's §6.1 anticipates ("by
//!   adopting hardware solutions such as FPGA, the hash speed can be
//!   significantly improved"). Secure only because the key never leaves
//!   the enclave; an adversary who learns it could forge collisions.
//!
//! The paper measures that RS/WS maintenance cost "is dominated almost
//! exclusively by PRF operations" — the `micro_criterion` bench compares
//! the two backends to reproduce that observation.

use crate::digest::SetDigest;
use hmac::{Hmac, Mac as HmacTrait};
use sha2::Sha256;

/// Cell-kind domain separator: record payload cells.
pub const KIND_DATA: u8 = 0;
/// Cell-kind domain separator: page-metadata (slot directory) cells.
pub const KIND_META: u8 = 1;
/// Cell-kind domain separator: coalesced scan-group elements (one element
/// covering several cells of a page, see `VerifiedMemory::read_page_batch`).
pub const KIND_GROUP: u8 = 2;

/// A PRF backend choice; enum dispatch keeps the hot path monomorphic.
#[derive(Clone)]
pub enum PrfEngine {
    /// HMAC-SHA-256 backend.
    Hmac(HmacPrf),
    /// SipHash-2-4 backend.
    Sip(SipPrf),
}

impl PrfEngine {
    /// Construct from a 32-byte enclave-derived key and the configured
    /// backend.
    pub fn new(backend: veridb_common::PrfBackend, key: [u8; 32]) -> Self {
        match backend {
            veridb_common::PrfBackend::HmacSha256 => PrfEngine::Hmac(HmacPrf::new(key)),
            veridb_common::PrfBackend::SipHash => PrfEngine::Sip(SipPrf::new(key)),
        }
    }

    /// PRF image of one memory event.
    #[inline]
    pub fn tag(&self, addr: u64, kind: u8, data: &[u8], ts: u64) -> SetDigest {
        match self {
            PrfEngine::Hmac(p) => p.tag(addr, kind, data, ts),
            PrfEngine::Sip(p) => p.tag(addr, kind, data, ts),
        }
    }
}

impl std::fmt::Debug for PrfEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrfEngine::Hmac(_) => write!(f, "PrfEngine::Hmac(…)"),
            PrfEngine::Sip(_) => write!(f, "PrfEngine::Sip(…)"),
        }
    }
}

/// HMAC-SHA-256 PRF.
///
/// The keyed HMAC state (the ipad/opad key schedule — two SHA-256
/// compressions) is precomputed once at construction and `clone()`d per
/// tag, instead of being rebuilt from the raw key on every call. Tag
/// output is identical; only the per-call setup cost changes.
#[derive(Clone)]
pub struct HmacPrf {
    mac: Hmac<Sha256>,
}

impl HmacPrf {
    /// Key the PRF (precomputes the HMAC key schedule).
    pub fn new(key: [u8; 32]) -> Self {
        HmacPrf {
            mac: Hmac::<Sha256>::new_from_slice(&key).expect("HMAC accepts any key length"),
        }
    }

    /// `HMAC(key, addr ‖ kind ‖ ts ‖ data)`.
    pub fn tag(&self, addr: u64, kind: u8, data: &[u8], ts: u64) -> SetDigest {
        let mut mac = self.mac.clone();
        mac.update(&addr.to_le_bytes());
        mac.update(&[kind]);
        mac.update(&ts.to_le_bytes());
        mac.update(data);
        let out = mac.finalize().into_bytes();
        let mut d = [0u8; 32];
        d.copy_from_slice(&out);
        SetDigest(d)
    }
}

/// Keyed SipHash-2-4 PRF.
///
/// One 128-bit SipHash pass over the data, with `(addr, kind, ts)` bound
/// into the *keys* (standard key-tweaking) so no message concatenation or
/// allocation is needed, and the 128-bit output expanded to the 32-byte
/// digest width with a SplitMix64 finalizer. This is the "fast PRF" lane:
/// its security rests on the key staying inside the enclave, and its speed
/// stands in for the hardware-accelerated hashing §6.1 anticipates.
#[derive(Clone)]
pub struct SipPrf {
    k0: u64,
    k1: u64,
    k2: u64,
    k3: u64,
}

/// SplitMix64 finalizer (Stafford variant 13) — a fast, well-mixed
/// bijection used for key tweaking and output expansion.
#[inline(always)]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SipPrf {
    /// Split the 32-byte key into SipHash keys + tweak keys.
    pub fn new(key: [u8; 32]) -> Self {
        let w = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&key[i * 8..i * 8 + 8]);
            u64::from_le_bytes(b)
        };
        SipPrf {
            k0: w(0),
            k1: w(1),
            k2: w(2),
            k3: w(3),
        }
    }

    /// One SipHash-2-4-128 pass over `data` under `(addr, kind, ts)`-tweaked
    /// keys, expanded to 32 bytes.
    pub fn tag(&self, addr: u64, kind: u8, data: &[u8], ts: u64) -> SetDigest {
        let t0 = splitmix64(self.k2 ^ addr ^ ((kind as u64) << 56));
        let t1 = splitmix64(self.k3 ^ ts);
        let (h0, h1) = SipHash24::hash128(self.k0 ^ t0, self.k1 ^ t1, data);
        let h2 = splitmix64(h0 ^ 0xA5A5_A5A5_5A5A_5A5A);
        let h3 = splitmix64(h1 ^ 0xC3C3_3C3C_C3C3_3C3C);
        let mut out = [0u8; 32];
        out[0..8].copy_from_slice(&h0.to_le_bytes());
        out[8..16].copy_from_slice(&h1.to_le_bytes());
        out[16..24].copy_from_slice(&h2.to_le_bytes());
        out[24..32].copy_from_slice(&h3.to_le_bytes());
        SetDigest(out)
    }
}

/// A from-scratch SipHash-2-4 implementation with 128-bit output.
///
/// Implemented here because `std`'s SipHash is not externally keyable and
/// we need a keyed PRF; the algorithm follows the SipHash reference
/// (Aumasson & Bernstein), 128-bit variant.
pub struct SipHash24;

impl SipHash24 {
    #[inline(always)]
    fn rotl(x: u64, b: u32) -> u64 {
        x.rotate_left(b)
    }

    #[inline(always)]
    fn sipround(v: &mut [u64; 4]) {
        v[0] = v[0].wrapping_add(v[1]);
        v[1] = Self::rotl(v[1], 13);
        v[1] ^= v[0];
        v[0] = Self::rotl(v[0], 32);
        v[2] = v[2].wrapping_add(v[3]);
        v[3] = Self::rotl(v[3], 16);
        v[3] ^= v[2];
        v[0] = v[0].wrapping_add(v[3]);
        v[3] = Self::rotl(v[3], 21);
        v[3] ^= v[0];
        v[2] = v[2].wrapping_add(v[1]);
        v[1] = Self::rotl(v[1], 17);
        v[1] ^= v[2];
        v[2] = Self::rotl(v[2], 32);
    }

    /// SipHash-2-4 with 128-bit output, keyed by `(k0, k1)`.
    pub fn hash128(k0: u64, k1: u64, msg: &[u8]) -> (u64, u64) {
        let mut v = [
            0x736f6d6570736575u64 ^ k0,
            0x646f72616e646f6du64 ^ k1,
            0x6c7967656e657261u64 ^ k0,
            0x7465646279746573u64 ^ k1,
        ];
        // 128-bit variant: v1 ^= 0xee before processing.
        v[1] ^= 0xee;

        let len = msg.len();
        let mut chunks = msg.chunks_exact(8);
        for chunk in &mut chunks {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            let m = u64::from_le_bytes(b);
            v[3] ^= m;
            Self::sipround(&mut v);
            Self::sipround(&mut v);
            v[0] ^= m;
        }
        // final block: remaining bytes + length in the top byte
        let rem = chunks.remainder();
        let mut b = [0u8; 8];
        b[..rem.len()].copy_from_slice(rem);
        b[7] = len as u8;
        let m = u64::from_le_bytes(b);
        v[3] ^= m;
        Self::sipround(&mut v);
        Self::sipround(&mut v);
        v[0] ^= m;

        // finalization, first output word
        v[2] ^= 0xee;
        for _ in 0..4 {
            Self::sipround(&mut v);
        }
        let h0 = v[0] ^ v[1] ^ v[2] ^ v[3];

        // second output word
        v[1] ^= 0xdd;
        for _ in 0..4 {
            Self::sipround(&mut v);
        }
        let h1 = v[0] ^ v[1] ^ v[2] ^ v[3];
        (h0, h1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridb_common::PrfBackend;

    /// Reference vector from the SipHash reference implementation
    /// (`vectors_siphash_2_4_128` for key 000102…0f, message 00 01 02 …).
    #[test]
    fn siphash128_reference_vectors() {
        let k0 = u64::from_le_bytes([0, 1, 2, 3, 4, 5, 6, 7]);
        let k1 = u64::from_le_bytes([8, 9, 10, 11, 12, 13, 14, 15]);

        let expected: [[u8; 16]; 4] = [
            // len 0..3 from the reference test vectors
            [
                0xa3, 0x81, 0x7f, 0x04, 0xba, 0x25, 0xa8, 0xe6, 0x6d, 0xf6, 0x72, 0x14, 0xc7, 0x55,
                0x02, 0x93,
            ],
            [
                0xda, 0x87, 0xc1, 0xd8, 0x6b, 0x99, 0xaf, 0x44, 0x34, 0x76, 0x59, 0x11, 0x9b, 0x22,
                0xfc, 0x45,
            ],
            [
                0x81, 0x77, 0x22, 0x8d, 0xa4, 0xa4, 0x5d, 0xc7, 0xfc, 0xa3, 0x8b, 0xde, 0xf6, 0x0a,
                0xff, 0xe4,
            ],
            [
                0x9c, 0x70, 0xb6, 0x0c, 0x52, 0x67, 0xa9, 0x4e, 0x5f, 0x33, 0xb6, 0xb0, 0x29, 0x85,
                0xed, 0x51,
            ],
        ];

        for (len, exp) in expected.iter().enumerate() {
            let msg: Vec<u8> = (0..len as u8).collect();
            let (h0, h1) = SipHash24::hash128(k0, k1, &msg);
            let mut got = [0u8; 16];
            got[..8].copy_from_slice(&h0.to_le_bytes());
            got[8..].copy_from_slice(&h1.to_le_bytes());
            assert_eq!(&got, exp, "mismatch at message length {len}");
        }
    }

    #[test]
    fn backends_are_deterministic() {
        for backend in [PrfBackend::HmacSha256, PrfBackend::SipHash] {
            let p1 = PrfEngine::new(backend, [7u8; 32]);
            let p2 = PrfEngine::new(backend, [7u8; 32]);
            assert_eq!(
                p1.tag(42, KIND_DATA, b"payload", 9),
                p2.tag(42, KIND_DATA, b"payload", 9)
            );
        }
    }

    #[test]
    fn any_field_change_changes_the_tag() {
        for backend in [PrfBackend::HmacSha256, PrfBackend::SipHash] {
            let p = PrfEngine::new(backend, [7u8; 32]);
            let base = p.tag(42, KIND_DATA, b"payload", 9);
            assert_ne!(base, p.tag(43, KIND_DATA, b"payload", 9), "addr");
            assert_ne!(base, p.tag(42, KIND_META, b"payload", 9), "kind");
            assert_ne!(base, p.tag(42, KIND_DATA, b"payloae", 9), "data");
            assert_ne!(base, p.tag(42, KIND_DATA, b"payload", 10), "ts");
        }
    }

    #[test]
    fn different_keys_different_tags() {
        let a = PrfEngine::new(PrfBackend::HmacSha256, [1u8; 32]);
        let b = PrfEngine::new(PrfBackend::HmacSha256, [2u8; 32]);
        assert_ne!(a.tag(1, 0, b"x", 1), b.tag(1, 0, b"x", 1));
        let a = PrfEngine::new(PrfBackend::SipHash, [1u8; 32]);
        let b = PrfEngine::new(PrfBackend::SipHash, [2u8; 32]);
        assert_ne!(a.tag(1, 0, b"x", 1), b.tag(1, 0, b"x", 1));
    }
}
