//! Enclave-resident ReadSet/WriteSet state.
//!
//! Memory is partitioned across N digest pairs ("RSWSs" in the paper's
//! terminology, §4.3): page `p` belongs to partition `p mod N`, and each
//! partition has its own lock, so concurrent workers only contend when
//! touching pages of the same partition. Figure 13 sweeps N from 1 to 1024
//! to show contention collapsing as N grows.
//!
//! Each partition maintains **two** epoch pairs, `cur` and `next`, because
//! verification is non-quiescent (Algorithm 2): while a scan pass is in
//! flight, pages already scanned belong to the next epoch and route their
//! digest updates to `next`; unscanned pages still update `cur`. When every
//! page of the partition has been processed, `cur.rs == cur.ws` must hold —
//! the write-read consistency check — and `next` becomes `cur`.

use crate::digest::SetDigest;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use veridb_enclave::EpcAllocation;

/// One `⟨h(RS), h(WS)⟩` accumulator pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RswsPair {
    /// XOR-aggregated digest of the ReadSet.
    pub rs: SetDigest,
    /// XOR-aggregated digest of the WriteSet.
    pub ws: SetDigest,
}

impl RswsPair {
    /// The write-read consistency condition `h(RS) = h(WS)`.
    pub fn is_consistent(&self) -> bool {
        self.rs == self.ws
    }

    /// Zero both digests.
    pub fn clear(&mut self) {
        *self = RswsPair::default();
    }
}

/// Lock-free per-page scan coordination state, shared (via `Arc`) between
/// the untrusted page registry and the enclave's [`PageMeta`].
///
/// Protected ops read/write it under the *page* lock only; the
/// verification scan updates it while holding both the page lock and the
/// partition lock. Keeping it out of [`PartitionState`] is what lets the
/// hot path capture a page's routing epoch and set its touched bit
/// without ever taking the partition mutex.
#[derive(Debug)]
pub struct PageScanState {
    /// Number of completed scans of this page. Equal to the partition's
    /// `epoch` when the page has not yet been processed in the current
    /// pass; `epoch + 1` once it has.
    scan_epoch: AtomicU64,
    /// Whether any verified op touched the page since its last scan
    /// (the §4.3 touched-page optimization; 1 bit/page in the paper).
    touched: AtomicBool,
    /// Whether the page currently sits on the free list (guards against
    /// double-release pushing a duplicate id).
    freed: AtomicBool,
}

impl PageScanState {
    /// Fresh state for a page registered at partition epoch `epoch`.
    pub fn new(epoch: u64) -> Self {
        PageScanState {
            scan_epoch: AtomicU64::new(epoch),
            touched: AtomicBool::new(false),
            freed: AtomicBool::new(false),
        }
    }

    /// The page's scan epoch (digest-pair routing key).
    pub fn scan_epoch(&self) -> u64 {
        self.scan_epoch.load(Ordering::Acquire)
    }

    /// Record a completed scan (or initial registration) of this page.
    pub fn set_scan_epoch(&self, epoch: u64) {
        self.scan_epoch.store(epoch, Ordering::Release);
    }

    /// Whether the page was touched since its last scan.
    pub fn touched(&self) -> bool {
        self.touched.load(Ordering::Acquire)
    }

    /// Clear the touched bit (scan completed with the page lock held).
    pub fn clear_touched(&self) {
        self.touched.store(false, Ordering::Release);
    }

    /// Mark the page touched and return its scan epoch, atomically enough
    /// for the protocol: callers hold the page lock, which is also held
    /// by the scan when it advances `scan_epoch`, so the captured epoch
    /// is exactly the one the op's folds must route by.
    pub fn touch_and_capture(&self) -> u64 {
        self.touched.store(true, Ordering::Release);
        self.scan_epoch.load(Ordering::Acquire)
    }

    /// Claim the free-list slot for this page. Returns `false` if the
    /// page is already on the free list (double release).
    pub fn try_mark_freed(&self) -> bool {
        self.freed
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Take the page back off the free list (reallocation).
    pub fn unmark_freed(&self) {
        self.freed.store(false, Ordering::Release);
    }
}

/// Enclave-side bookkeeping for one registered page.
#[derive(Debug)]
pub struct PageMeta {
    /// Scan coordination state, shared with the page registry so the hot
    /// path reads it without the partition lock.
    pub scan: Arc<PageScanState>,
    /// XOR of the PRF images of the page's live cells as of the last scan.
    /// Valid only while `scan.touched() == false`; lets the scan process
    /// an untouched page in O(1) instead of re-reading it.
    pub cached: SetDigest,
    /// Same, for the slot-directory metadata cells (only maintained when
    /// metadata verification is on).
    pub cached_meta: SetDigest,
    /// XOR of `sha256("cell-fp" ‖ payload)` over the page's live cells as
    /// of the last scan — the page's contribution to the *logical state
    /// fingerprint* ([`crate::memory::VerifyReport::fingerprint`]).
    /// Unlike the PRF digests above it is keyless and timestamp-free, so
    /// two memories holding the same records fingerprint identically even
    /// when their write histories differ (e.g. live state vs. a
    /// crash-recovered replay of it).
    pub cached_fp: [u8; 32],
    /// EPC accounting guard for this page's enclave-resident metadata.
    pub epc: Option<EpcAllocation>,
}

impl PageMeta {
    /// Metadata for a freshly registered page at partition epoch `epoch`.
    pub fn new(epoch: u64, epc: Option<EpcAllocation>) -> Self {
        Self::with_scan(Arc::new(PageScanState::new(epoch)), epc)
    }

    /// Metadata wrapping an existing shared scan state (the registry owns
    /// the other reference).
    pub fn with_scan(scan: Arc<PageScanState>, epc: Option<EpcAllocation>) -> Self {
        PageMeta {
            scan,
            cached: SetDigest::ZERO,
            cached_meta: SetDigest::ZERO,
            cached_fp: [0u8; 32],
            epc,
        }
    }
}

/// The mutable state of one RSWS partition (kept behind a mutex by
/// [`crate::memory::VerifiedMemory`]).
#[derive(Debug)]
pub struct PartitionState {
    /// Completed verification epochs for this partition.
    pub epoch: u64,
    /// Digest pair of the epoch currently being closed.
    pub cur: RswsPair,
    /// Digest pair of the next epoch (receives updates for pages already
    /// scanned in the in-flight pass).
    pub next: RswsPair,
    /// Metadata digests, kept separate so the `verify_metadata` toggle is
    /// orthogonal to record verification (Figure 9's two RSWS configs).
    pub meta_cur: RswsPair,
    /// Metadata digest pair of the next epoch.
    pub meta_next: RswsPair,
    /// Per-page enclave metadata for the pages of this partition.
    pub pages: HashMap<u64, PageMeta>,
    /// Protected operations folded into this partition since its last
    /// epoch close — the "verification lag" the observability layer
    /// samples when the epoch closes. Reset by [`Self::close_epoch`].
    pub ops_since_close: u64,
}

impl PartitionState {
    /// Fresh partition at epoch 0.
    pub fn new() -> Self {
        PartitionState {
            epoch: 0,
            cur: RswsPair::default(),
            next: RswsPair::default(),
            meta_cur: RswsPair::default(),
            meta_next: RswsPair::default(),
            pages: HashMap::new(),
            ops_since_close: 0,
        }
    }

    /// The record-data digest pair a page with `scan_epoch` routes to.
    pub fn pair_for(&mut self, scan_epoch: u64) -> &mut RswsPair {
        if scan_epoch > self.epoch {
            &mut self.next
        } else {
            &mut self.cur
        }
    }

    /// The metadata digest pair a page with `scan_epoch` routes to.
    pub fn meta_pair_for(&mut self, scan_epoch: u64) -> &mut RswsPair {
        if scan_epoch > self.epoch {
            &mut self.meta_next
        } else {
            &mut self.meta_cur
        }
    }

    /// A page of this partition that has not been processed in the current
    /// pass, if any.
    pub fn next_pending_page(&self) -> Option<u64> {
        self.pages
            .iter()
            .find(|(_, m)| m.scan.scan_epoch() == self.epoch)
            .map(|(&id, _)| id)
    }

    /// Close the current epoch: check consistency, promote `next`.
    /// Returns whether both the data and metadata sets were consistent.
    pub fn close_epoch(&mut self) -> bool {
        let ok = self.cur.is_consistent() && self.meta_cur.is_consistent();
        self.cur = self.next;
        self.next.clear();
        self.meta_cur = self.meta_next;
        self.meta_next.clear();
        self.epoch += 1;
        self.ops_since_close = 0;
        ok
    }
}

impl Default for PartitionState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(b: u8) -> SetDigest {
        SetDigest([b; 32])
    }

    #[test]
    fn pair_consistency() {
        let mut p = RswsPair::default();
        assert!(p.is_consistent());
        p.ws.fold(&d(1));
        assert!(!p.is_consistent());
        p.rs.fold(&d(1));
        assert!(p.is_consistent());
    }

    #[test]
    fn pair_routing_by_scan_epoch() {
        let mut s = PartitionState::new();
        s.pair_for(0).ws.fold(&d(1)); // unscanned page → cur
        s.pair_for(1).ws.fold(&d(2)); // already-scanned page → next
        assert_eq!(s.cur.ws, d(1));
        assert_eq!(s.next.ws, d(2));
    }

    #[test]
    fn close_epoch_promotes_next() {
        let mut s = PartitionState::new();
        s.cur.rs.fold(&d(3));
        s.cur.ws.fold(&d(3));
        s.next.ws.fold(&d(4));
        s.ops_since_close = 42;
        assert!(s.close_epoch());
        assert_eq!(s.epoch, 1);
        assert_eq!(s.cur.ws, d(4));
        assert!(s.next.ws.is_zero());
        assert_eq!(s.ops_since_close, 0);
    }

    #[test]
    fn close_epoch_detects_inconsistency() {
        let mut s = PartitionState::new();
        s.cur.ws.fold(&d(5)); // a write never matched by a read
        assert!(!s.close_epoch());
    }

    #[test]
    fn pending_pages_tracked_by_scan_epoch() {
        let mut s = PartitionState::new();
        s.pages.insert(10, PageMeta::new(0, None));
        s.pages.insert(11, PageMeta::new(0, None));
        assert!(s.next_pending_page().is_some());
        for id in [10u64, 11] {
            s.pages.get_mut(&id).unwrap().scan.set_scan_epoch(1);
        }
        assert_eq!(s.next_pending_page(), None);
    }

    #[test]
    fn scan_state_touch_and_free_protocol() {
        let st = PageScanState::new(3);
        assert_eq!(st.scan_epoch(), 3);
        assert!(!st.touched());
        assert_eq!(st.touch_and_capture(), 3);
        assert!(st.touched());
        st.clear_touched();
        assert!(!st.touched());
        assert!(st.try_mark_freed());
        assert!(!st.try_mark_freed(), "double release must not re-free");
        st.unmark_freed();
        assert!(st.try_mark_freed());
    }
}
