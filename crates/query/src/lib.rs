//! VeriDB's verifiable query engine (§5 of the paper).
//!
//! The engine runs *inside the (simulated) enclave*: SQL text enters
//! through the authenticated [`portal`], is compiled by the in-enclave
//! [`parser`]/[`planner`] (compilation must be trusted — §3.3 explains why
//! plan-equivalence checking is infeasible), and executes as a volcano
//! operator tree whose **leaf access methods are the only verification
//! points**: they pull records through the verified storage layer and
//! apply the §5.2 evidence checks. Every interior operator (select,
//! project, join, aggregate, sort) can then be trusted because it runs on
//! verified inputs inside the enclave — the paper's core architectural
//! reduction.
//!
//! Module map:
//!
//! - [`lexer`] / [`parser`] / [`ast`] — SQL front end (SPJA + DML + DDL).
//! - [`expr`] — typed expression evaluation.
//! - [`planner`] — name resolution, predicate pushdown, access-path
//!   selection (index search / range scan / seq scan) and join-algorithm
//!   choice (index nested-loop, merge, hash, block nested-loop).
//! - [`exec`] — the volcano operators.
//! - [`parallel`] — morsel-driven parallel execution of Exchange/Gather
//!   regions: per-worker verified scans over key sub-ranges that tile the
//!   driving scan, merged back in morsel order.
//! - [`engine`] — parse→plan→execute entry point.
//! - [`portal`] — the in-enclave query portal: MAC-authenticated queries,
//!   qid replay protection, result endorsement, and the rollback-defense
//!   sequence counter (§5.1).
//! - [`client`] — the client library: attestation handshake, query
//!   signing, endorsement verification, sequence-interval tracking.

pub mod ast;
pub mod client;
pub mod engine;
pub mod exec;
pub mod expr;
pub mod lexer;
pub mod parallel;
pub mod parser;
pub mod planner;
pub mod portal;
pub mod replay;
pub mod spill;

pub use client::{Client, SeqIntervals};
pub use engine::{stmt_kind, DurabilitySink, PlanOptions, PreferredJoin, QueryEngine, QueryResult};
pub use portal::{EndorsedResult, QueryPortal, SignedQuery};
pub use replay::ReplayWindow;
pub use spill::{ExecContext, SpilledRows};
