//! Spilling intermediate state to verified storage (§5.4).
//!
//! The paper: "when the intermediate state is large (e.g., because of
//! introduction of materialization points …) and beyond the capacity of
//! EPC, it needs to be offloaded to untrusted memory. We can rely on the
//! secure swap of SGX, however, the secure swap can be expensive …
//! Alternatively, we can reuse the trusted storage of VeriDB for storing
//! the intermediate results."
//!
//! [`SpilledRows`] implements that alternative: a row buffer that keeps a
//! bounded prefix in (EPC-accounted) enclave memory and writes the
//! overflow into write-read-consistent memory cells. Spilled rows are
//! re-read through the protected `Read` primitive, so any host tampering
//! with intermediate results is caught by the same deferred verification
//! that covers base tables — *without* paying SGX page-swap costs
//! (~40 000 cycles/page; a protected read is two PRF evaluations).
//!
//! The cells are deleted on drop through the protected path, keeping the
//! RS/WS digests balanced.

use std::sync::Arc;
use veridb_common::obs::Metrics;
use veridb_common::{Error, Result, Row};
use veridb_wrcm::{CellAddr, VerifiedMemory};

/// Execution context threaded through operator construction.
#[derive(Clone, Default)]
pub struct ExecContext {
    /// Verified memory to spill into (`None` disables spilling).
    pub mem: Option<Arc<VerifiedMemory>>,
    /// Spill once an operator's buffered bytes exceed this many bytes.
    pub spill_threshold: Option<usize>,
    /// `veridb-obs` registry for executor metrics (`None` = unmetered).
    pub metrics: Option<Arc<Metrics>>,
    /// Per-query degree of parallelism for parallel regions — the cap
    /// on shared scheduler-pool workers one region may occupy (`0` =
    /// use the DOP recorded in the plan's Exchange nodes; `1` = run
    /// regions serially inline).
    pub workers: usize,
}

impl ExecContext {
    /// A context that spills to `mem` beyond `threshold` bytes.
    pub fn with_spill(mem: Arc<VerifiedMemory>, threshold: usize) -> Self {
        ExecContext {
            metrics: mem.metrics().cloned(),
            mem: Some(mem),
            spill_threshold: Some(threshold),
            workers: 0,
        }
    }
}

/// A materialized row buffer with verified-storage overflow.
pub struct SpilledRows {
    ctx: ExecContext,
    in_mem: Vec<Row>,
    in_mem_bytes: usize,
    /// Scratch pages owned by this buffer.
    pages: Vec<u64>,
    /// Addresses of spilled rows, in push order.
    spilled: Vec<CellAddr>,
}

impl SpilledRows {
    /// Empty buffer under `ctx`.
    pub fn new(ctx: ExecContext) -> Self {
        SpilledRows {
            ctx,
            in_mem: Vec::new(),
            in_mem_bytes: 0,
            pages: Vec::new(),
            spilled: Vec::new(),
        }
    }

    /// Total rows buffered.
    pub fn len(&self) -> usize {
        self.in_mem.len() + self.spilled.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of rows that overflowed to verified storage.
    pub fn spilled_rows(&self) -> usize {
        self.spilled.len()
    }

    fn should_spill(&self) -> bool {
        match (&self.ctx.mem, self.ctx.spill_threshold) {
            (Some(_), Some(t)) => self.in_mem_bytes >= t,
            _ => false,
        }
    }

    /// Append a row, spilling if the in-memory prefix is at capacity.
    pub fn push(&mut self, row: Row) -> Result<()> {
        if !self.should_spill() {
            self.in_mem_bytes += approx_row_bytes(&row);
            self.in_mem.push(row);
            return Ok(());
        }
        let mem = self.ctx.mem.as_ref().expect("checked by should_spill");
        let bytes = row.encode_to_vec();
        if let Some(m) = &self.ctx.metrics {
            if self.spilled.is_empty() {
                m.spill_events.inc();
            }
            m.spill_bytes.add(bytes.len() as u64);
        }
        // Try the most recent scratch page, then a fresh one.
        if let Some(&pid) = self.pages.last() {
            match mem.insert_in(pid, &bytes) {
                Ok(addr) => {
                    self.spilled.push(addr);
                    return Ok(());
                }
                Err(Error::PageFull { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        let pid = mem.allocate_page();
        self.pages.push(pid);
        let addr = mem.insert_in(pid, &bytes)?;
        self.spilled.push(addr);
        Ok(())
    }

    /// Random access by push index. Spilled rows come back through the
    /// protected read (verified, digest-folded).
    pub fn get(&self, i: usize) -> Result<Row> {
        if i < self.in_mem.len() {
            return Ok(self.in_mem[i].clone());
        }
        let addr = *self
            .spilled
            .get(i - self.in_mem.len())
            .ok_or_else(|| Error::InvalidArgument(format!("row index {i} out of range")))?;
        let mem = self.ctx.mem.as_ref().expect("spilled rows imply a memory");
        let bytes = mem.read(addr)?;
        Row::decode_from_slice(&bytes).map_err(|e| {
            Error::TamperDetected(format!("malformed spilled intermediate row at {addr}: {e}"))
        })
    }

    /// Read everything back into memory (verified reads for the spilled
    /// suffix) — used by consumers that must sort or merge.
    pub fn to_vec(&self) -> Result<Vec<Row>> {
        let mut out = Vec::with_capacity(self.len());
        for i in 0..self.len() {
            out.push(self.get(i)?);
        }
        Ok(out)
    }
}

impl Drop for SpilledRows {
    fn drop(&mut self) {
        // Free spilled cells through the protected path so the digests
        // stay balanced; ignore failures (poisoned memory etc.).
        if let Some(mem) = &self.ctx.mem {
            for addr in self.spilled.drain(..) {
                let _ = mem.delete(addr);
            }
            // Hand the now-empty scratch pages back to the free list so
            // repeated spilling queries reuse them instead of growing
            // `page_count()` forever. A page whose deletes failed above
            // (poisoned memory) still has live cells and is left alone.
            for pid in self.pages.drain(..) {
                let _ = mem.release_page(pid);
            }
        }
    }
}

fn approx_row_bytes(row: &Row) -> usize {
    row.values()
        .iter()
        .map(|v| match v {
            veridb_common::Value::Str(s) => 8 + s.len(),
            _ => 12,
        })
        .sum::<usize>()
        + 24
}

#[cfg(test)]
mod tests {
    use super::*;
    use veridb_common::{PrfBackend, Value, VeriDbConfig};
    use veridb_enclave::Enclave;

    fn memory() -> Arc<VerifiedMemory> {
        let enclave = Enclave::create("spill-test", 1 << 22, [21u8; 32]);
        let mut cfg = VeriDbConfig::default();
        cfg.verify_every_ops = None;
        cfg.prf = PrfBackend::SipHash;
        VerifiedMemory::from_config(enclave, &cfg)
    }

    fn row(i: i64) -> Row {
        Row::new(vec![Value::Int(i), Value::Str(format!("payload-{i}"))])
    }

    #[test]
    fn small_buffers_never_spill() {
        let mem = memory();
        let ctx = ExecContext::with_spill(Arc::clone(&mem), 1 << 20);
        let mut b = SpilledRows::new(ctx);
        for i in 0..100 {
            b.push(row(i)).unwrap();
        }
        assert_eq!(b.spilled_rows(), 0);
        assert_eq!(b.get(42).unwrap(), row(42));
        mem.verify_now().unwrap();
    }

    #[test]
    fn overflow_spills_and_reads_back_verified() {
        let mem = memory();
        let ctx = ExecContext::with_spill(Arc::clone(&mem), 256);
        let mut b = SpilledRows::new(ctx);
        for i in 0..500 {
            b.push(row(i)).unwrap();
        }
        assert!(b.spilled_rows() > 400, "most rows must spill");
        assert_eq!(b.len(), 500);
        for i in [0usize, 5, 250, 499] {
            assert_eq!(b.get(i).unwrap(), row(i as i64));
        }
        assert_eq!(b.to_vec().unwrap().len(), 500);
        // Spilled cells are protocol-covered.
        mem.verify_now().unwrap();
        // Dropping frees the cells and keeps digests balanced.
        drop(b);
        mem.verify_now().unwrap();
    }

    #[test]
    fn tampered_spilled_row_is_detected() {
        let mem = memory();
        let ctx = ExecContext::with_spill(Arc::clone(&mem), 64);
        let mut b = SpilledRows::new(ctx);
        for i in 0..50 {
            b.push(row(i)).unwrap();
        }
        assert!(b.spilled_rows() > 0);
        // The host corrupts a spilled intermediate result.
        let victim = b.spilled[0];
        veridb_wrcm::tamper::overwrite_cell(&mem, victim, b"junk").unwrap();
        // Reading it back may yield a decode alarm immediately…
        let immediate = b.get(b.in_mem.len());
        // …and the deferred verification must fail in any case.
        let deferred = mem.verify_now();
        assert!(
            immediate.is_err() || deferred.is_err(),
            "tampering with spilled state must be detected"
        );
        // Suppress the drop-path deletes against poisoned memory.
        std::mem::forget(b);
    }

    #[test]
    fn repeated_spilling_buffers_reuse_scratch_pages() {
        let mem = memory();
        let mut counts = Vec::new();
        for round in 0..6 {
            let ctx = ExecContext::with_spill(Arc::clone(&mem), 128);
            let mut b = SpilledRows::new(ctx);
            for i in 0..300 {
                b.push(row(i)).unwrap();
            }
            assert!(b.spilled_rows() > 0, "round {round} must spill");
            drop(b); // deletes cells AND releases scratch pages
            counts.push(mem.page_count());
        }
        // The first round allocates the scratch pages; every later round
        // must reuse them — page_count stays flat.
        assert!(
            counts.windows(2).all(|w| w[1] == w[0]),
            "page_count must not grow across repeated spilling buffers: {counts:?}"
        );
        assert!(mem.free_page_count() > 0);
        // And digests stay balanced throughout.
        mem.verify_now().unwrap();
        let snap = mem.enclave().metrics_snapshot();
        assert!(snap.spill_events >= 6);
        assert!(snap.spill_bytes > 0);
        assert!(snap.pages_reused > 0);
    }

    #[test]
    fn no_spill_context_keeps_everything_in_memory() {
        let mut b = SpilledRows::new(ExecContext::default());
        for i in 0..1000 {
            b.push(row(i)).unwrap();
        }
        assert_eq!(b.spilled_rows(), 0);
    }
}
