//! Bounded replay filter for portal query ids.
//!
//! The portal must reject every replayed qid (§5.1's query authorization),
//! but an exact seen-set grows without bound — millions of queries would
//! exhaust the EPC budget the enclave-resident portal state is charged
//! against. [`ReplayWindow`] keeps memory constant with a classic
//! low-watermark + sliding-window scheme:
//!
//! - qids **at or below the watermark** are summarily treated as seen;
//! - qids **above the watermark** are tracked exactly in a bounded
//!   ordered set.
//!
//! When the exact set exceeds its capacity, the smallest tracked qid is
//! evicted and becomes the new watermark. The security direction is
//! one-sided and preserved: a replayed qid is *always* rejected (it is
//! either still tracked, or at/below the watermark). The trade-off is
//! liveness, not safety — a client that issues a *fresh* qid from far in
//! the past, after more than `capacity` newer qids, is falsely rejected
//! and must re-sign under a current qid. Monotonic qid allocation (what
//! [`crate::client::Client`] does) never hits this.

use std::collections::BTreeSet;

/// Default number of exactly-tracked qids above the watermark.
pub const DEFAULT_REPLAY_WINDOW: usize = 1024;

/// A low-watermark + sliding-window replay filter over `u64` qids.
#[derive(Debug, Clone)]
pub struct ReplayWindow {
    /// Every qid `<=` this value counts as seen. `None` until the first
    /// eviction (initially nothing is filtered).
    watermark: Option<u64>,
    /// Exactly-tracked qids, all `>` watermark.
    recent: BTreeSet<u64>,
    capacity: usize,
}

impl ReplayWindow {
    /// A window tracking up to `capacity` qids exactly (minimum 1).
    pub fn new(capacity: usize) -> Self {
        ReplayWindow {
            watermark: None,
            recent: BTreeSet::new(),
            capacity: capacity.max(1),
        }
    }

    /// Has this qid been seen (exactly tracked, or at/below the
    /// watermark)?
    pub fn contains(&self, qid: u64) -> bool {
        self.watermark.is_some_and(|w| qid <= w) || self.recent.contains(&qid)
    }

    /// Record `qid` as seen. Returns `false` if it was already seen (a
    /// replay), `true` if newly recorded. Never forgets a recorded qid:
    /// eviction raises the watermark over it instead.
    pub fn insert(&mut self, qid: u64) -> bool {
        if self.contains(qid) {
            return false;
        }
        self.recent.insert(qid);
        while self.recent.len() > self.capacity {
            let evicted = self.recent.pop_first().expect("non-empty");
            self.watermark = Some(self.watermark.map_or(evicted, |w| w.max(evicted)));
        }
        true
    }

    /// The current low watermark (`None` before the first eviction).
    pub fn watermark(&self) -> Option<u64> {
        self.watermark
    }

    /// Number of exactly-tracked qids.
    pub fn tracked(&self) -> usize {
        self.recent.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_window_accepts_then_rejects() {
        let mut w = ReplayWindow::new(8);
        assert!(!w.contains(5));
        assert!(w.insert(5));
        assert!(w.contains(5));
        assert!(!w.insert(5), "replay must be rejected");
        // qid 0 is valid while nothing has been evicted.
        assert!(w.insert(0));
        assert!(!w.insert(0));
    }

    #[test]
    fn eviction_raises_watermark_and_bounds_memory() {
        let mut w = ReplayWindow::new(4);
        for qid in 1..=100u64 {
            assert!(w.insert(qid));
            assert!(w.tracked() <= 4);
        }
        assert_eq!(w.watermark(), Some(96));
        assert_eq!(w.tracked(), 4);
    }

    #[test]
    fn every_inserted_qid_stays_rejected_across_the_watermark() {
        let mut w = ReplayWindow::new(4);
        for qid in 1..=100u64 {
            w.insert(qid);
        }
        // All of them — watermarked and tracked alike — read as seen.
        for qid in 1..=100u64 {
            assert!(w.contains(qid), "qid {qid} must still be rejected");
            assert!(!w.insert(qid));
        }
        // Fresh qids above the window are still accepted.
        assert!(w.insert(101));
    }

    #[test]
    fn stale_fresh_qid_below_watermark_is_falsely_rejected() {
        // The documented trade-off: safety over liveness.
        let mut w = ReplayWindow::new(2);
        for qid in [10u64, 20, 30, 40] {
            w.insert(qid);
        }
        assert!(w.watermark().unwrap() >= 20);
        // qid 15 was never inserted but falls under the watermark.
        assert!(w.contains(15));
        assert!(!w.insert(15));
    }

    #[test]
    fn out_of_order_inserts_keep_window_consistent() {
        let mut w = ReplayWindow::new(3);
        for qid in [50u64, 10, 40, 20, 30, 60] {
            w.insert(qid);
        }
        assert!(w.tracked() <= 3);
        for qid in [50u64, 10, 40, 20, 30, 60] {
            assert!(w.contains(qid));
        }
    }
}
