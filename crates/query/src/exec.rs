//! Volcano execution of physical plans (§5.4).
//!
//! Operators pull one tuple at a time. Leaf scans are the verification
//! points: they wrap the storage layer's verified access methods
//! ([`veridb_storage::VerifiedScan`] and the point-lookup path), so any
//! omission or forgery surfaces as an error from `next()` before a single
//! wrong tuple can flow upward. Interior operators run on verified inputs
//! inside the enclave and need no further checks — the paper's reduction.
//!
//! Intermediate state (hash tables, sort buffers) is modeled as
//! enclave-resident and registered against the EPC budget, reproducing the
//! §5.4 discussion of large intermediate states.

use crate::ast::{AggFunc, Expr};
use crate::expr::{cmp_values, eval, passes};
use crate::planner::{AccessPath, PhysicalPlan};
use crate::spill::{ExecContext, SpilledRows};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use veridb_common::obs::{Metrics, OperatorKind};
use veridb_common::{Result, Row, Value};
use veridb_storage::{Table, VerifiedScan};

/// A pull-based operator.
pub trait Operator {
    /// Produce the next row, `None` when exhausted. Errors are
    /// verification alarms or evaluation failures and abort the query.
    fn next(&mut self) -> Result<Option<Row>>;
}

/// Instantiate the operator tree for a plan (no spilling).
pub fn open(plan: &PhysicalPlan) -> Result<Box<dyn Operator>> {
    open_ctx(plan, &ExecContext::default())
}

/// Instantiate the operator tree for a plan under an execution context
/// (spilling of large intermediate state per §5.4). When the context
/// carries a metrics registry every operator is wrapped in a
/// [`MeteredOp`] that counts rows produced per operator kind.
pub fn open_ctx(plan: &PhysicalPlan, ctx: &ExecContext) -> Result<Box<dyn Operator>> {
    let (kind, op): (OperatorKind, Box<dyn Operator>) = match plan {
        PhysicalPlan::TableScan {
            table,
            access,
            residual,
        } => (
            OperatorKind::Scan,
            Box::new(ScanOp::new(table, access, residual.clone())?),
        ),
        PhysicalPlan::Filter { input, pred } => (
            OperatorKind::Filter,
            Box::new(FilterOp {
                input: open_ctx(input, ctx)?,
                pred: pred.clone(),
            }),
        ),
        PhysicalPlan::Project { input, exprs, .. } => (
            OperatorKind::Project,
            Box::new(ProjectOp {
                input: open_ctx(input, ctx)?,
                exprs: exprs.clone(),
            }),
        ),
        PhysicalPlan::IndexNlJoin {
            outer,
            inner,
            inner_chain,
            outer_key,
            residual,
        } => (
            OperatorKind::IndexNlJoin,
            Box::new(IndexNlJoinOp {
                outer: open_ctx(outer, ctx)?,
                inner: Arc::clone(inner),
                inner_chain: *inner_chain,
                outer_key: *outer_key,
                residual: residual.clone(),
                pending: Vec::new(),
            }),
        ),
        PhysicalPlan::HashJoin {
            left,
            right,
            left_key,
            right_key,
            residual,
        } => (
            OperatorKind::HashJoin,
            Box::new(HashJoinOp::new(
                open_ctx(left, ctx)?,
                open_ctx(right, ctx)?,
                *left_key,
                *right_key,
                residual.clone(),
            )),
        ),
        // Parallel partitioned hash join (see `parallel`): build-side
        // morsels bucket rows by key hash, per-partition tables build
        // concurrently, probe runs in parallel — output byte-identical to
        // the serial HashJoin.
        PhysicalPlan::PartitionedJoin {
            left,
            right,
            left_key,
            right_key,
            residual,
            workers,
        } => (
            OperatorKind::PartitionedJoin,
            Box::new(crate::parallel::PartitionedJoinOp::new(
                left,
                right,
                *left_key,
                *right_key,
                residual.clone(),
                *workers,
                ctx,
            )),
        ),
        PhysicalPlan::MergeJoin {
            left,
            right,
            left_key,
            right_key,
            residual,
        } => (
            OperatorKind::MergeJoin,
            Box::new(MergeJoinOp::new(
                open_ctx(left, ctx)?,
                open_ctx(right, ctx)?,
                *left_key,
                *right_key,
                residual.clone(),
            )),
        ),
        PhysicalPlan::BlockNlJoin { left, right, pred } => (
            OperatorKind::BlockNlJoin,
            Box::new(BlockNlJoinOp {
                left: open_ctx(left, ctx)?,
                right_plan: (**right).clone(),
                right_rows: None,
                current_left: None,
                right_pos: 0,
                pred: pred.clone(),
                ctx: ctx.clone(),
            }),
        ),
        // Parallel grouped aggregation: per-morsel partial states merged at
        // a barrier (see `parallel`), avoiding a row funnel through Gather.
        PhysicalPlan::Aggregate { input, group, aggs }
            if matches!(**input, PhysicalPlan::Exchange { .. }) =>
        {
            let PhysicalPlan::Exchange {
                input: region,
                workers,
            } = &**input
            else {
                unreachable!("guarded by matches! above");
            };
            (
                OperatorKind::Aggregate,
                Box::new(crate::parallel::ParallelAggregateOp::new(
                    region,
                    *workers,
                    group.clone(),
                    aggs.clone(),
                    ctx,
                )),
            )
        }
        PhysicalPlan::Aggregate { input, group, aggs } => (
            OperatorKind::Aggregate,
            Box::new(AggregateOp::new(
                open_ctx(input, ctx)?,
                group.clone(),
                aggs.clone(),
            )),
        ),
        PhysicalPlan::Sort { input, keys } => (
            OperatorKind::Sort,
            Box::new(SortOp::new(open_ctx(input, ctx)?, keys.clone(), ctx)),
        ),
        PhysicalPlan::Limit { input, n } => (
            OperatorKind::Limit,
            Box::new(LimitOp {
                input: open_ctx(input, ctx)?,
                remaining: *n,
            }),
        ),
        PhysicalPlan::Distinct { input } => (
            OperatorKind::Distinct,
            Box::new(DistinctOp {
                input: open_ctx(input, ctx)?,
                seen: std::collections::HashSet::new(),
            }),
        ),
        PhysicalPlan::Gather { input } => {
            let (region, workers) = match &**input {
                PhysicalPlan::Exchange { input, workers } => (&**input, *workers),
                // Gather over a non-Exchange input degenerates to a
                // single-morsel region (defensive; the planner never
                // emits this shape).
                other => (other, 1),
            };
            (
                OperatorKind::Gather,
                Box::new(crate::parallel::GatherOp::new(region, workers, ctx)),
            )
        }
        // A bare Exchange (not consumed by Gather or Aggregate) still
        // executes correctly: gather its morsels in order.
        PhysicalPlan::Exchange { input, workers } => (
            OperatorKind::Gather,
            Box::new(crate::parallel::GatherOp::new(input, *workers, ctx)),
        ),
    };
    Ok(match &ctx.metrics {
        Some(m) => Box::new(MeteredOp {
            inner: op,
            metrics: Arc::clone(m),
            kind,
        }),
        None => op,
    })
}

/// Transparent wrapper counting rows each operator produces, by kind.
/// One relaxed atomic increment per row — only instantiated when the
/// execution context carries a metrics registry.
struct MeteredOp {
    inner: Box<dyn Operator>,
    metrics: Arc<Metrics>,
    kind: OperatorKind,
}

impl Operator for MeteredOp {
    fn next(&mut self) -> Result<Option<Row>> {
        let row = self.inner.next()?;
        if row.is_some() {
            self.metrics.operator_rows(self.kind).inc();
        }
        Ok(row)
    }
}

/// Run a plan to completion (no spilling).
pub fn run(plan: &PhysicalPlan) -> Result<Vec<Row>> {
    run_ctx(plan, &ExecContext::default())
}

/// Run a plan to completion under an execution context.
pub fn run_ctx(plan: &PhysicalPlan, ctx: &ExecContext) -> Result<Vec<Row>> {
    let mut op = open_ctx(plan, ctx)?;
    let mut out = Vec::new();
    while let Some(row) = op.next()? {
        out.push(row);
    }
    Ok(out)
}

// ---- scans -----------------------------------------------------------------

enum ScanSource {
    Range(VerifiedScan),
    Point(std::vec::IntoIter<Row>),
}

/// Rows pulled from the verified scan per refill. Draining the underlying
/// cursor in runs keeps it on its page-batched fast path (each pull beyond
/// the first usually pops an already-verified row) and amortizes the
/// residual evaluation loop.
const SCAN_OP_BATCH: usize = 64;

/// Leaf scan over a table's verified access methods.
struct ScanOp {
    source: ScanSource,
    residual: Option<Expr>,
    /// Rows verified and filtered, awaiting emission.
    buf: VecDeque<Row>,
}

impl ScanOp {
    fn new(table: &Arc<Table>, access: &AccessPath, residual: Option<Expr>) -> Result<Self> {
        let source = match access {
            AccessPath::Full => ScanSource::Range(table.seq_scan()),
            AccessPath::Range { chain, lo, hi } => {
                ScanSource::Range(table.range_scan(*chain, lo.clone(), hi.clone()))
            }
            AccessPath::Point { chain, key } => {
                if *chain == 0 {
                    // Primary key: verified point lookup (§5.2 Index
                    // Search); 0 or 1 rows.
                    let rows = match table.get_by_pk(key)? {
                        Some(r) => vec![r],
                        None => vec![],
                    };
                    ScanSource::Point(rows.into_iter())
                } else {
                    // Secondary chain: verified equality scan.
                    ScanSource::Range(table.scan_eq(*chain, key))
                }
            }
        };
        Ok(ScanOp {
            source,
            residual,
            buf: VecDeque::new(),
        })
    }

    /// Pull up to [`SCAN_OP_BATCH`] rows from a range source into `buf`,
    /// applying the residual predicate as they arrive. Returns `false` once
    /// the source is exhausted.
    fn refill(&mut self) -> Result<bool> {
        let ScanSource::Range(s) = &mut self.source else {
            return Ok(false);
        };
        let mut pulled = false;
        for _ in 0..SCAN_OP_BATCH {
            let Some(row) = s.next() else {
                return Ok(pulled);
            };
            let row = row?;
            pulled = true;
            let keep = match &self.residual {
                Some(pred) => passes(pred, &row)?,
                None => true,
            };
            if keep {
                self.buf.push_back(row);
            }
        }
        Ok(pulled)
    }
}

impl Operator for ScanOp {
    fn next(&mut self) -> Result<Option<Row>> {
        loop {
            if let Some(row) = self.buf.pop_front() {
                return Ok(Some(row));
            }
            match &mut self.source {
                ScanSource::Range(_) => {
                    if !self.refill()? {
                        return Ok(None);
                    }
                    // buf may still be empty (residual dropped the whole
                    // batch); loop and pull the next run.
                }
                ScanSource::Point(it) => {
                    let Some(row) = it.next() else {
                        return Ok(None);
                    };
                    if let Some(pred) = &self.residual {
                        if !passes(pred, &row)? {
                            continue;
                        }
                    }
                    return Ok(Some(row));
                }
            }
        }
    }
}

// ---- filter / project ---------------------------------------------------------

struct FilterOp {
    input: Box<dyn Operator>,
    pred: Expr,
}

impl Operator for FilterOp {
    fn next(&mut self) -> Result<Option<Row>> {
        while let Some(row) = self.input.next()? {
            if passes(&self.pred, &row)? {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

struct ProjectOp {
    input: Box<dyn Operator>,
    exprs: Vec<Expr>,
}

impl Operator for ProjectOp {
    fn next(&mut self) -> Result<Option<Row>> {
        match self.input.next()? {
            None => Ok(None),
            Some(row) => {
                let mut out = Vec::with_capacity(self.exprs.len());
                for e in &self.exprs {
                    out.push(eval(e, &row)?);
                }
                Ok(Some(Row::new(out)))
            }
        }
    }
}

// ---- joins -----------------------------------------------------------------------

/// The paper's Example 5.4 join: pull outer tuples, then a verified
/// IndexSearch / equality scan on the inner table per tuple.
struct IndexNlJoinOp {
    outer: Box<dyn Operator>,
    inner: Arc<Table>,
    inner_chain: usize,
    outer_key: usize,
    residual: Option<Expr>,
    /// Joined rows awaiting emission for the current outer tuple.
    pending: Vec<Row>,
}

impl Operator for IndexNlJoinOp {
    fn next(&mut self) -> Result<Option<Row>> {
        loop {
            if let Some(row) = self.pending.pop() {
                return Ok(Some(row));
            }
            let Some(outer_row) = self.outer.next()? else {
                return Ok(None);
            };
            let key = outer_row[self.outer_key].clone();
            if key.is_null() {
                continue; // NULL keys never join
            }
            let matches: Vec<Row> = if self.inner_chain == 0 {
                match self.inner.get_by_pk(&key)? {
                    Some(r) => vec![r],
                    None => vec![],
                }
            } else {
                self.inner.scan_eq(self.inner_chain, &key).collect_rows()?
            };
            for inner_row in matches {
                let joined = outer_row.joined(&inner_row);
                let keep = match &self.residual {
                    Some(p) => passes(p, &joined)?,
                    None => true,
                };
                if keep {
                    self.pending.push(joined);
                }
            }
            self.pending.reverse(); // preserve inner order
        }
    }
}

struct HashJoinOp {
    left: Box<dyn Operator>,
    right: Option<Box<dyn Operator>>,
    left_key: usize,
    right_key: usize,
    residual: Option<Expr>,
    table: HashMap<Value, Vec<Row>>,
    pending: Vec<Row>,
}

impl HashJoinOp {
    fn new(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        left_key: usize,
        right_key: usize,
        residual: Option<Expr>,
    ) -> Self {
        HashJoinOp {
            left,
            right: Some(right),
            left_key,
            right_key,
            residual,
            table: HashMap::new(),
            pending: Vec::new(),
        }
    }

    fn build(&mut self) -> Result<()> {
        if let Some(mut right) = self.right.take() {
            while let Some(row) = right.next()? {
                let k = row[self.right_key].clone();
                if k.is_null() {
                    continue;
                }
                self.table.entry(k).or_default().push(row);
            }
        }
        Ok(())
    }
}

impl Operator for HashJoinOp {
    fn next(&mut self) -> Result<Option<Row>> {
        self.build()?;
        loop {
            if let Some(row) = self.pending.pop() {
                return Ok(Some(row));
            }
            let Some(lrow) = self.left.next()? else {
                return Ok(None);
            };
            let k = &lrow[self.left_key];
            if k.is_null() {
                continue;
            }
            if let Some(matches) = self.table.get(k) {
                for rrow in matches {
                    let joined = lrow.joined(rrow);
                    let keep = match &self.residual {
                        Some(p) => passes(p, &joined)?,
                        None => true,
                    };
                    if keep {
                        self.pending.push(joined);
                    }
                }
                self.pending.reverse();
            }
        }
    }
}

/// Merge join over sorted inputs; buffers one duplicate group of the right
/// side at a time (the "larger intermediate state" the paper mentions for
/// Q19's MergeJoin plan).
struct MergeJoinOp {
    left: Box<dyn Operator>,
    right: Box<dyn Operator>,
    left_key: usize,
    right_key: usize,
    residual: Option<Expr>,
    rrow: Option<Row>,
    group: Vec<Row>,
    group_key: Option<Value>,
    emit: Vec<Row>,
}

impl MergeJoinOp {
    fn new(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        left_key: usize,
        right_key: usize,
        residual: Option<Expr>,
    ) -> Self {
        MergeJoinOp {
            left,
            right,
            left_key,
            right_key,
            residual,
            rrow: None,
            group: Vec::new(),
            group_key: None,
            emit: Vec::new(),
        }
    }

    fn advance_right_group(&mut self, key: &Value) -> Result<()> {
        // Load the right-side duplicate group for `key` (right is sorted).
        if self.group_key.as_ref() == Some(key) {
            return Ok(());
        }
        self.group.clear();
        self.group_key = None;
        loop {
            if self.rrow.is_none() {
                self.rrow = self.right.next()?;
            }
            let Some(r) = &self.rrow else { break };
            let rk = &r[self.right_key];
            if rk.is_null() {
                self.rrow = None;
                continue;
            }
            match cmp_values(rk, key)? {
                std::cmp::Ordering::Less => {
                    self.rrow = None; // discard and advance
                }
                std::cmp::Ordering::Equal => {
                    self.group.push(self.rrow.take().expect("checked"));
                }
                std::cmp::Ordering::Greater => break,
            }
        }
        if !self.group.is_empty() {
            self.group_key = Some(key.clone());
        }
        Ok(())
    }
}

impl Operator for MergeJoinOp {
    fn next(&mut self) -> Result<Option<Row>> {
        loop {
            if let Some(row) = self.emit.pop() {
                return Ok(Some(row));
            }
            let Some(lrow) = self.left.next()? else {
                return Ok(None);
            };
            let lk = lrow[self.left_key].clone();
            if lk.is_null() {
                continue;
            }
            self.advance_right_group(&lk)?;
            if self.group_key.as_ref() == Some(&lk) {
                for rrow in &self.group {
                    let joined = lrow.joined(rrow);
                    let keep = match &self.residual {
                        Some(p) => passes(p, &joined)?,
                        None => true,
                    };
                    if keep {
                        self.emit.push(joined);
                    }
                }
                self.emit.reverse();
            }
        }
    }
}

/// Block nested-loop join: materializes the right side once (the paper's
/// Q19 "NestedLoopJoin and materialize the Select result on inner loop").
/// The materialization point spills to verified storage beyond the
/// context's threshold (§5.4), instead of paying SGX secure-swap costs.
struct BlockNlJoinOp {
    left: Box<dyn Operator>,
    right_plan: PhysicalPlan,
    right_rows: Option<SpilledRows>,
    current_left: Option<Row>,
    right_pos: usize,
    pred: Option<Expr>,
    ctx: ExecContext,
}

impl Operator for BlockNlJoinOp {
    fn next(&mut self) -> Result<Option<Row>> {
        if self.right_rows.is_none() {
            let mut buf = SpilledRows::new(self.ctx.clone());
            let mut op = open_ctx(&self.right_plan, &self.ctx)?;
            while let Some(row) = op.next()? {
                buf.push(row)?;
            }
            self.right_rows = Some(buf);
        }
        let right = self.right_rows.as_ref().expect("materialized above");
        loop {
            if self.current_left.is_none() {
                self.current_left = self.left.next()?;
                self.right_pos = 0;
                if self.current_left.is_none() {
                    return Ok(None);
                }
            }
            let lrow = self.current_left.as_ref().expect("checked");
            while self.right_pos < right.len() {
                let rrow = right.get(self.right_pos)?;
                self.right_pos += 1;
                let joined = lrow.joined(&rrow);
                let keep = match &self.pred {
                    Some(p) => passes(p, &joined)?,
                    None => true,
                };
                if keep {
                    return Ok(Some(joined));
                }
            }
            self.current_left = None;
        }
    }
}

// ---- aggregation -----------------------------------------------------------------

/// Running state of one aggregate.
#[derive(Debug, Clone)]
pub(crate) enum AggState {
    Count(i64),
    Sum {
        acc: f64,
        any: bool,
        int_only: bool,
        int_acc: i64,
    },
    Avg {
        sum: f64,
        count: i64,
    },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    pub(crate) fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum {
                acc: 0.0,
                any: false,
                int_only: true,
                int_acc: 0,
            },
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    pub(crate) fn feed(&mut self, v: Option<Value>) -> Result<()> {
        match self {
            AggState::Count(n) => {
                // COUNT(*) feeds None→count all; COUNT(e) skips NULLs.
                match v {
                    None => *n += 1,
                    Some(Value::Null) => {}
                    Some(_) => *n += 1,
                }
            }
            AggState::Sum {
                acc,
                any,
                int_only,
                int_acc,
            } => {
                if let Some(v) = v {
                    if !v.is_null() {
                        match &v {
                            Value::Int(i) => {
                                *int_acc = int_acc.wrapping_add(*i);
                                *acc += *i as f64;
                            }
                            _ => {
                                *int_only = false;
                                *acc += v.as_f64()?;
                            }
                        }
                        *any = true;
                    }
                }
            }
            AggState::Avg { sum, count } => {
                if let Some(v) = v {
                    if !v.is_null() {
                        *sum += v.as_f64()?;
                        *count += 1;
                    }
                }
            }
            AggState::Min(slot) => {
                if let Some(v) = v {
                    if !v.is_null() {
                        let better = match slot {
                            None => true,
                            Some(cur) => cmp_values(&v, cur)? == std::cmp::Ordering::Less,
                        };
                        if better {
                            *slot = Some(v);
                        }
                    }
                }
            }
            AggState::Max(slot) => {
                if let Some(v) = v {
                    if !v.is_null() {
                        let better = match slot {
                            None => true,
                            Some(cur) => cmp_values(&v, cur)? == std::cmp::Ordering::Greater,
                        };
                        if better {
                            *slot = Some(v);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Fold another partial state (same aggregate function, disjoint input
    /// partition) into this one. Callers merge partials in a fixed order
    /// (morsel-index order), so float accumulation is deterministic for a
    /// given morsel tiling.
    pub(crate) fn merge(&mut self, other: AggState) -> Result<()> {
        match (self, other) {
            (AggState::Count(n), AggState::Count(m)) => *n += m,
            (
                AggState::Sum {
                    acc,
                    any,
                    int_only,
                    int_acc,
                },
                AggState::Sum {
                    acc: o_acc,
                    any: o_any,
                    int_only: o_int_only,
                    int_acc: o_int_acc,
                },
            ) => {
                *acc += o_acc;
                *any |= o_any;
                *int_only &= o_int_only;
                *int_acc = int_acc.wrapping_add(o_int_acc);
            }
            (
                AggState::Avg { sum, count },
                AggState::Avg {
                    sum: o_sum,
                    count: o_count,
                },
            ) => {
                *sum += o_sum;
                *count += o_count;
            }
            (AggState::Min(slot), AggState::Min(other)) => {
                if let Some(v) = other {
                    let better = match slot {
                        None => true,
                        Some(cur) => cmp_values(&v, cur)? == std::cmp::Ordering::Less,
                    };
                    if better {
                        *slot = Some(v);
                    }
                }
            }
            (AggState::Max(slot), AggState::Max(other)) => {
                if let Some(v) = other {
                    let better = match slot {
                        None => true,
                        Some(cur) => cmp_values(&v, cur)? == std::cmp::Ordering::Greater,
                    };
                    if better {
                        *slot = Some(v);
                    }
                }
            }
            // Partials are built from the same aggregate list, so the
            // variants always line up.
            _ => unreachable!("merging mismatched aggregate states"),
        }
        Ok(())
    }

    pub(crate) fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n),
            AggState::Sum {
                acc,
                any,
                int_only,
                int_acc,
            } => {
                if !any {
                    Value::Null
                } else if int_only {
                    Value::Int(int_acc)
                } else {
                    Value::Float(acc)
                }
            }
            AggState::Avg { sum, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / count as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

struct AggregateOp {
    input: Box<dyn Operator>,
    group: Vec<Expr>,
    aggs: Vec<(AggFunc, Option<Expr>)>,
    output: Option<std::vec::IntoIter<Row>>,
}

impl AggregateOp {
    fn new(input: Box<dyn Operator>, group: Vec<Expr>, aggs: Vec<(AggFunc, Option<Expr>)>) -> Self {
        AggregateOp {
            input,
            group,
            aggs,
            output: None,
        }
    }

    fn materialize(&mut self) -> Result<Vec<Row>> {
        let mut partial = GroupedPartial::default();
        partial.accumulate(self.input.as_mut(), &self.group, &self.aggs)?;
        partial.finish(&self.group, &self.aggs)
    }
}

/// Grouped aggregation state accumulated over one input partition:
/// per-group running [`AggState`]s plus first-seen group order. The serial
/// [`AggregateOp`] uses a single instance; the parallel aggregation path
/// builds one per morsel and merges them in morsel order.
#[derive(Debug, Default)]
pub(crate) struct GroupedPartial {
    /// Group keys in first-seen order (the executor's output order).
    pub(crate) order: Vec<Vec<Value>>,
    /// Per-group aggregate states.
    pub(crate) groups: HashMap<Vec<Value>, Vec<AggState>>,
}

impl GroupedPartial {
    /// Drain `input`, folding every row into this partial.
    pub(crate) fn accumulate(
        &mut self,
        input: &mut dyn Operator,
        group: &[Expr],
        aggs: &[(AggFunc, Option<Expr>)],
    ) -> Result<()> {
        while let Some(row) = input.next()? {
            let key: Vec<Value> = group.iter().map(|g| eval(g, &row)).collect::<Result<_>>()?;
            let states = match self.groups.get_mut(&key) {
                Some(s) => s,
                None => {
                    self.order.push(key.clone());
                    self.groups
                        .entry(key.clone())
                        .or_insert_with(|| aggs.iter().map(|(f, _)| AggState::new(*f)).collect())
                }
            };
            for (state, (_, arg)) in states.iter_mut().zip(aggs) {
                let v = match arg {
                    Some(e) => Some(eval(e, &row)?),
                    None => None,
                };
                state.feed(v)?;
            }
        }
        Ok(())
    }

    /// Fold another partition's partial into this one. Groups first seen
    /// in `other` are appended after this partial's groups, so merging
    /// partials in morsel order reproduces the serial first-seen order.
    pub(crate) fn merge(&mut self, other: GroupedPartial) -> Result<()> {
        let GroupedPartial { order, mut groups } = other;
        for key in order {
            let states = groups.remove(&key).expect("key recorded in order");
            match self.groups.get_mut(&key) {
                Some(mine) => {
                    for (m, s) in mine.iter_mut().zip(states) {
                        m.merge(s)?;
                    }
                }
                None => {
                    self.order.push(key.clone());
                    self.groups.insert(key, states);
                }
            }
        }
        Ok(())
    }

    /// Emit the final rows (group key columns then aggregate values).
    pub(crate) fn finish(
        self,
        group: &[Expr],
        aggs: &[(AggFunc, Option<Expr>)],
    ) -> Result<Vec<Row>> {
        let GroupedPartial { order, mut groups } = self;
        // Global aggregation over zero rows still emits one row of
        // identity values (COUNT(*)=0, SUM=NULL, …) per SQL semantics.
        if order.is_empty() && group.is_empty() {
            let states: Vec<AggState> = aggs.iter().map(|(f, _)| AggState::new(*f)).collect();
            let mut row = Vec::new();
            row.extend(states.into_iter().map(|s| s.finish()));
            return Ok(vec![Row::new(row)]);
        }
        let mut out = Vec::with_capacity(order.len());
        for key in order {
            let states = groups.remove(&key).expect("inserted above");
            let mut row = key;
            row.extend(states.into_iter().map(|s| s.finish()));
            out.push(Row::new(row));
        }
        Ok(out)
    }
}

impl Operator for AggregateOp {
    fn next(&mut self) -> Result<Option<Row>> {
        if self.output.is_none() {
            self.output = Some(self.materialize()?.into_iter());
        }
        Ok(self.output.as_mut().expect("set above").next())
    }
}

// ---- sort / limit -------------------------------------------------------------------

struct SortOp {
    input: Box<dyn Operator>,
    keys: Vec<(Expr, bool)>,
    ctx: ExecContext,
    output: Option<std::vec::IntoIter<Row>>,
}

impl SortOp {
    fn new(input: Box<dyn Operator>, keys: Vec<(Expr, bool)>, ctx: &ExecContext) -> Self {
        SortOp {
            input,
            keys,
            ctx: ctx.clone(),
            output: None,
        }
    }
}

impl Operator for SortOp {
    fn next(&mut self) -> Result<Option<Row>> {
        if self.output.is_none() {
            let mut rows = Vec::new();
            while let Some(r) = self.input.next()? {
                rows.push(r);
            }
            // Large inputs under a worker pool take the parallel tail:
            // per-worker sorted runs + tournament-tree merge, byte-identical
            // to the serial stable sort (see `parallel::parallel_sort`).
            let sorted =
                if self.ctx.workers > 1 && rows.len() >= crate::parallel::PARALLEL_SORT_MIN_ROWS {
                    crate::parallel::parallel_sort(rows, &self.keys, self.ctx.workers, &self.ctx)?
                } else {
                    // Precompute sort keys; Value's total order handles NULLs
                    // (first) and floats (total_cmp).
                    let mut keyed: Vec<(Vec<Value>, Row)> = rows
                        .into_iter()
                        .map(|r| -> Result<(Vec<Value>, Row)> {
                            let ks = self
                                .keys
                                .iter()
                                .map(|(e, _)| eval(e, &r))
                                .collect::<Result<Vec<Value>>>()?;
                            Ok((ks, r))
                        })
                        .collect::<Result<_>>()?;
                    let descs: Vec<bool> = self.keys.iter().map(|(_, d)| *d).collect();
                    keyed.sort_by(|(a, _), (b, _)| crate::parallel::cmp_sort_keys(a, b, &descs));
                    keyed.into_iter().map(|(_, r)| r).collect()
                };
            self.output = Some(sorted.into_iter());
        }
        Ok(self.output.as_mut().expect("set above").next())
    }
}

/// Hash-based duplicate elimination (`SELECT DISTINCT`).
struct DistinctOp {
    input: Box<dyn Operator>,
    seen: std::collections::HashSet<Row>,
}

impl Operator for DistinctOp {
    fn next(&mut self) -> Result<Option<Row>> {
        while let Some(row) = self.input.next()? {
            if self.seen.insert(row.clone()) {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

struct LimitOp {
    input: Box<dyn Operator>,
    remaining: u64,
}

impl Operator for LimitOp {
    fn next(&mut self) -> Result<Option<Row>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.input.next()? {
            Some(r) => {
                self.remaining -= 1;
                Ok(Some(r))
            }
            None => Ok(None),
        }
    }
}
