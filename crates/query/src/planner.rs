//! Query planning: name resolution, predicate pushdown, access-path
//! selection, and join-algorithm choice.
//!
//! Compilation happens inside the enclave (§3.3): the client authenticates
//! the SQL text, and everything from parse to plan is trusted code, so no
//! plan-equivalence verification is needed.
//!
//! The planner builds a left-deep join tree in FROM order and resolves all
//! column references to *global* indices into the concatenated row, which
//! makes pushdown a simple index-range test:
//!
//! - single-table conjuncts are pushed to their scan, where bounds on
//!   chained columns become verified range scans / point lookups,
//! - equi-join conjuncts pick the join algorithm: an index nested-loop
//!   join when the inner table has a chain on its join column (the
//!   paper's Example 5.4), a merge join when both inputs arrive sorted on
//!   their join columns, a hash join otherwise,
//! - everything else stays as residual filters.

use crate::ast::{AggFunc, BinOp, Expr, SelectItem, SelectStmt};
use crate::engine::{PlanOptions, PreferredJoin};
use std::collections::HashMap;
use std::ops::Bound;
use std::sync::Arc;
use veridb_common::{Error, Result, Value};
use veridb_storage::{Catalog, Table};

/// How a scan reaches its rows.
#[derive(Debug, Clone)]
pub enum AccessPath {
    /// Verified sequential scan (chain 0 order).
    Full,
    /// Verified range scan on a chain.
    Range {
        /// Chain index within the table.
        chain: usize,
        /// Lower bound on the chained column's value.
        lo: Bound<Value>,
        /// Upper bound on the chained column's value.
        hi: Bound<Value>,
    },
    /// Verified point lookup (primary key) or equality scan (secondary
    /// chain).
    Point {
        /// Chain index within the table.
        chain: usize,
        /// The key value.
        key: Value,
    },
}

/// A physical operator tree.
#[derive(Debug, Clone)]
pub enum PhysicalPlan {
    /// Leaf: verified access to one table.
    TableScan {
        /// The table.
        table: Arc<Table>,
        /// Access path.
        access: AccessPath,
        /// Residual predicate over the table's own columns (local refs).
        residual: Option<Expr>,
    },
    /// Filter over global-row input.
    Filter {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Predicate over the input row.
        pred: Expr,
    },
    /// Projection.
    Project {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Output expressions.
        exprs: Vec<Expr>,
        /// Output column names.
        names: Vec<String>,
    },
    /// Index nested-loop join: for each outer row, a verified point /
    /// equality lookup on the inner table's chain.
    IndexNlJoin {
        /// Outer input.
        outer: Box<PhysicalPlan>,
        /// Inner table.
        inner: Arc<Table>,
        /// Chain of the inner join column.
        inner_chain: usize,
        /// Index of the join key within the outer row.
        outer_key: usize,
        /// Residual predicate over the concatenated row.
        residual: Option<Expr>,
    },
    /// Hash join on one equi-key pair.
    HashJoin {
        /// Left (probe) input.
        left: Box<PhysicalPlan>,
        /// Right (build) input.
        right: Box<PhysicalPlan>,
        /// Key index within the left row.
        left_key: usize,
        /// Key index within the right row.
        right_key: usize,
        /// Residual predicate over the concatenated row.
        residual: Option<Expr>,
    },
    /// Merge join over inputs sorted on their key columns.
    MergeJoin {
        /// Left input (sorted on `left_key`).
        left: Box<PhysicalPlan>,
        /// Right input (sorted on `right_key`).
        right: Box<PhysicalPlan>,
        /// Key index within the left row.
        left_key: usize,
        /// Key index within the right row.
        right_key: usize,
        /// Residual predicate over the concatenated row.
        residual: Option<Expr>,
    },
    /// Block nested-loop join (cartesian product + predicate): the
    /// fallback when no equi-join condition exists.
    BlockNlJoin {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input (materialized).
        right: Box<PhysicalPlan>,
        /// Join predicate over the concatenated row (`None` = cross).
        pred: Option<Expr>,
    },
    /// Duplicate elimination over the full output row (`SELECT DISTINCT`).
    Distinct {
        /// Input plan.
        input: Box<PhysicalPlan>,
    },
    /// Hash aggregation.
    Aggregate {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Group-by expressions over the input row.
        group: Vec<Expr>,
        /// Aggregate calls: function + optional argument.
        aggs: Vec<(AggFunc, Option<Expr>)>,
    },
    /// Sort (materializing).
    Sort {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Keys: expression over the input row + descending flag.
        keys: Vec<(Expr, bool)>,
    },
    /// Limit.
    Limit {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Maximum rows.
        n: u64,
    },
    /// Parallel-region marker: the subtree below is executed once per
    /// morsel (a key sub-range of its driving verified scan) by a pool of
    /// `workers` threads. Exchange never appears bare in a final plan — it
    /// is always consumed by an enclosing [`PhysicalPlan::Gather`] or by a
    /// parallel-aware [`PhysicalPlan::Aggregate`].
    Exchange {
        /// The per-morsel subtree.
        input: Box<PhysicalPlan>,
        /// Worker pool size this region was planned for (`0` = inherit
        /// from the execution context at open time).
        workers: usize,
    },
    /// Merge the per-morsel output streams of an [`PhysicalPlan::Exchange`]
    /// back into one stream, in morsel-index order. Because morsels tile
    /// the driving scan's key range in chain order, this merge reproduces
    /// the serial scan's row order exactly.
    Gather {
        /// The Exchange (parallel region) below.
        input: Box<PhysicalPlan>,
    },
    /// Parallel partitioned hash join, emitted by [`parallelize`] in place
    /// of [`PhysicalPlan::HashJoin`]. Build-side rows are hashed into a
    /// fixed number of partitions (per-morsel buckets concatenated in
    /// morsel order, so per-key row order equals the serial build's
    /// insertion order), the per-partition hash tables are built
    /// concurrently, and the probe side is scanned in parallel — output
    /// rows are merged in morsel/chunk order, making the result
    /// byte-identical to the serial HashJoin.
    PartitionedJoin {
        /// Left (probe) input. A morsel-partitionable region is kept
        /// unwrapped (the operator morselizes it itself); anything else
        /// is materialized and probed in fixed chunks.
        left: Box<PhysicalPlan>,
        /// Right (build) input, same convention as `left`.
        right: Box<PhysicalPlan>,
        /// Key index within the left row.
        left_key: usize,
        /// Key index within the right row.
        right_key: usize,
        /// Residual predicate over the concatenated row.
        residual: Option<Expr>,
        /// Worker pool size this join was planned for (`0` = inherit from
        /// the execution context at open time).
        workers: usize,
    },
}

impl PhysicalPlan {
    /// Output width (number of columns) of this plan.
    pub fn width(&self) -> usize {
        match self {
            PhysicalPlan::TableScan { table, .. } => table.schema().len(),
            PhysicalPlan::Filter { input, .. } => input.width(),
            PhysicalPlan::Project { exprs, .. } => exprs.len(),
            PhysicalPlan::IndexNlJoin { outer, inner, .. } => outer.width() + inner.schema().len(),
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::MergeJoin { left, right, .. }
            | PhysicalPlan::BlockNlJoin { left, right, .. }
            | PhysicalPlan::PartitionedJoin { left, right, .. } => left.width() + right.width(),
            PhysicalPlan::Aggregate { group, aggs, .. } => group.len() + aggs.len(),
            PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::Distinct { input }
            | PhysicalPlan::Exchange { input, .. }
            | PhysicalPlan::Gather { input } => input.width(),
        }
    }

    /// A compact, indented rendering (EXPLAIN-style) for docs and tests.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(0, &mut out);
        out
    }

    fn explain_into(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match self {
            PhysicalPlan::TableScan {
                table,
                access,
                residual,
            } => {
                let acc = match access {
                    AccessPath::Full => "SeqScan".to_string(),
                    AccessPath::Range { chain, .. } => {
                        format!("RangeScan(chain {chain})")
                    }
                    AccessPath::Point { chain, key } => {
                        format!("IndexSearch(chain {chain} = {key})")
                    }
                };
                out.push_str(&format!(
                    "{pad}{acc} on {}{}\n",
                    table.name(),
                    if residual.is_some() {
                        " [filtered]"
                    } else {
                        ""
                    }
                ));
            }
            PhysicalPlan::Filter { input, .. } => {
                out.push_str(&format!("{pad}Filter\n"));
                input.explain_into(depth + 1, out);
            }
            PhysicalPlan::Project { input, names, .. } => {
                out.push_str(&format!("{pad}Project [{}]\n", names.join(", ")));
                input.explain_into(depth + 1, out);
            }
            PhysicalPlan::IndexNlJoin { outer, inner, .. } => {
                out.push_str(&format!(
                    "{pad}IndexNestedLoopJoin (inner: {})\n",
                    inner.name()
                ));
                outer.explain_into(depth + 1, out);
            }
            PhysicalPlan::HashJoin { left, right, .. } => {
                out.push_str(&format!("{pad}HashJoin\n"));
                left.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
            PhysicalPlan::MergeJoin { left, right, .. } => {
                out.push_str(&format!("{pad}MergeJoin\n"));
                left.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
            PhysicalPlan::BlockNlJoin { left, right, .. } => {
                out.push_str(&format!("{pad}NestedLoopJoin\n"));
                left.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
            PhysicalPlan::Aggregate { input, group, aggs } => {
                out.push_str(&format!(
                    "{pad}Aggregate [{} groups, {} aggs]\n",
                    group.len(),
                    aggs.len()
                ));
                input.explain_into(depth + 1, out);
            }
            PhysicalPlan::Sort { input, keys } => {
                out.push_str(&format!("{pad}Sort [{} keys]\n", keys.len()));
                input.explain_into(depth + 1, out);
            }
            PhysicalPlan::Limit { input, n } => {
                out.push_str(&format!("{pad}Limit {n}\n"));
                input.explain_into(depth + 1, out);
            }
            PhysicalPlan::Distinct { input } => {
                out.push_str(&format!("{pad}Distinct\n"));
                input.explain_into(depth + 1, out);
            }
            PhysicalPlan::Exchange { input, workers } => {
                out.push_str(&format!("{pad}Exchange [{workers} workers]\n"));
                input.explain_into(depth + 1, out);
            }
            PhysicalPlan::Gather { input } => {
                out.push_str(&format!("{pad}Gather\n"));
                input.explain_into(depth + 1, out);
            }
            PhysicalPlan::PartitionedJoin {
                left,
                right,
                workers,
                ..
            } => {
                out.push_str(&format!("{pad}PartitionedHashJoin [{workers} workers]\n"));
                left.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
        }
    }
}

/// True when `plan` is a morsel-partitionable pipeline: a verified full or
/// range scan, optionally under Filter/Project, optionally driving an
/// index nested-loop join. Such a subtree can be re-instantiated per key
/// sub-range of its driving scan and executed by independent workers, with
/// each worker's [`VerifiedScan`](veridb_storage::VerifiedScan) proving
/// completeness of its own sub-range.
pub(crate) fn partitionable(plan: &PhysicalPlan) -> bool {
    match plan {
        PhysicalPlan::TableScan { access, .. } => {
            matches!(access, AccessPath::Full | AccessPath::Range { .. })
        }
        PhysicalPlan::Filter { input, .. } | PhysicalPlan::Project { input, .. } => {
            partitionable(input)
        }
        PhysicalPlan::IndexNlJoin { outer, .. } => partitionable(outer),
        _ => false,
    }
}

/// Rewrite `plan` for a `workers`-thread pool by inserting
/// Exchange/Gather pairs around morsel-partitionable subtrees.
///
/// - A partitionable pipeline becomes `Gather(Exchange(pipeline))`: the
///   morsel-order merge reproduces the serial row order, so downstream
///   operators (including MergeJoin, which needs chain order) are
///   unaffected.
/// - An `Aggregate` over a partitionable input becomes
///   `Aggregate(Exchange(input))`: the executor special-cases this shape,
///   computing per-morsel partial states and merging them in morsel order
///   at a barrier, so grouped aggregation parallelizes without first
///   funnelling every input row through a single Gather.
/// - Other operators recurse structurally; join children are wrapped
///   independently, so a hash join can build and probe from two parallel
///   regions.
///
/// With `workers <= 1` the plan is returned untouched, bit-identical to
/// the serial planner's output.
pub(crate) fn parallelize(plan: PhysicalPlan, workers: usize) -> PhysicalPlan {
    if workers <= 1 {
        return plan;
    }
    let wrap = |p: PhysicalPlan| -> PhysicalPlan {
        if partitionable(&p) {
            PhysicalPlan::Gather {
                input: Box::new(PhysicalPlan::Exchange {
                    input: Box::new(p),
                    workers,
                }),
            }
        } else {
            p
        }
    };
    if partitionable(&plan) {
        return wrap(plan);
    }
    match plan {
        PhysicalPlan::Aggregate { input, group, aggs } if partitionable(&input) => {
            PhysicalPlan::Aggregate {
                input: Box::new(PhysicalPlan::Exchange { input, workers }),
                group,
                aggs,
            }
        }
        PhysicalPlan::Filter { input, pred } => PhysicalPlan::Filter {
            input: Box::new(parallelize(*input, workers)),
            pred,
        },
        PhysicalPlan::Project {
            input,
            exprs,
            names,
        } => PhysicalPlan::Project {
            input: Box::new(parallelize(*input, workers)),
            exprs,
            names,
        },
        PhysicalPlan::IndexNlJoin {
            outer,
            inner,
            inner_chain,
            outer_key,
            residual,
        } => PhysicalPlan::IndexNlJoin {
            outer: Box::new(parallelize(*outer, workers)),
            inner,
            inner_chain,
            outer_key,
            residual,
        },
        // Hash joins become partitioned joins: the build side is hashed
        // into per-morsel partition buckets and the per-partition tables
        // built concurrently; the probe side runs in parallel too. A
        // partitionable child is left unwrapped (the join operator
        // morselizes it itself); other children (e.g. a nested join) are
        // parallelized recursively and materialized by the operator.
        PhysicalPlan::HashJoin {
            left,
            right,
            left_key,
            right_key,
            residual,
        } => {
            let left = if partitionable(&left) {
                left
            } else {
                Box::new(parallelize(*left, workers))
            };
            let right = if partitionable(&right) {
                right
            } else {
                Box::new(parallelize(*right, workers))
            };
            PhysicalPlan::PartitionedJoin {
                left,
                right,
                left_key,
                right_key,
                residual,
                workers,
            }
        }
        PhysicalPlan::MergeJoin {
            left,
            right,
            left_key,
            right_key,
            residual,
        } => PhysicalPlan::MergeJoin {
            left: Box::new(parallelize(*left, workers)),
            right: Box::new(parallelize(*right, workers)),
            left_key,
            right_key,
            residual,
        },
        PhysicalPlan::BlockNlJoin { left, right, pred } => PhysicalPlan::BlockNlJoin {
            left: Box::new(parallelize(*left, workers)),
            right: Box::new(parallelize(*right, workers)),
            pred,
        },
        PhysicalPlan::Aggregate { input, group, aggs } => PhysicalPlan::Aggregate {
            input: Box::new(parallelize(*input, workers)),
            group,
            aggs,
        },
        PhysicalPlan::Distinct { input } => PhysicalPlan::Distinct {
            input: Box::new(parallelize(*input, workers)),
        },
        PhysicalPlan::Sort { input, keys } => PhysicalPlan::Sort {
            input: Box::new(parallelize(*input, workers)),
            keys,
        },
        PhysicalPlan::Limit { input, n } => PhysicalPlan::Limit {
            input: Box::new(parallelize(*input, workers)),
            n,
        },
        // Leaves that cannot partition, and already-parallel nodes.
        other @ (PhysicalPlan::TableScan { .. }
        | PhysicalPlan::Exchange { .. }
        | PhysicalPlan::Gather { .. }
        | PhysicalPlan::PartitionedJoin { .. }) => other,
    }
}

/// A planned query: the operator tree plus output column names.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// The physical plan (root emits the final projection).
    pub plan: PhysicalPlan,
    /// Output column names.
    pub columns: Vec<String>,
}

/// One table in the FROM clause, resolved.
struct FromTable {
    table: Arc<Table>,
    alias: String,
    /// Global index of this table's first column.
    offset: usize,
}

/// Resolution context for column names.
struct Scope {
    tables: Vec<FromTable>,
    total_width: usize,
}

impl Scope {
    fn resolve_column(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let mut found = None;
        for t in &self.tables {
            if let Some(q) = qualifier {
                if !q.eq_ignore_ascii_case(&t.alias) {
                    continue;
                }
            }
            if let Ok(idx) = t.table.schema().index_of(name) {
                if found.is_some() {
                    return Err(Error::Plan(format!("ambiguous column {name}")));
                }
                found = Some(t.offset + idx);
            }
        }
        found.ok_or_else(|| {
            Error::Plan(format!(
                "unknown column {}{}",
                qualifier.map(|q| format!("{q}.")).unwrap_or_default(),
                name
            ))
        })
    }

    /// Rewrite `Column` nodes into `ColumnRef` global indices.
    fn resolve_expr(&self, e: Expr) -> Result<Expr> {
        Ok(match e {
            Expr::Column { qualifier, name } => {
                Expr::ColumnRef(self.resolve_column(qualifier.as_deref(), &name)?)
            }
            Expr::ColumnRef(_) | Expr::Literal(_) | Expr::AggRef(_) => e,
            Expr::Binary { op, left, right } => Expr::Binary {
                op,
                left: Box::new(self.resolve_expr(*left)?),
                right: Box::new(self.resolve_expr(*right)?),
            },
            Expr::Neg(x) => Expr::Neg(Box::new(self.resolve_expr(*x)?)),
            Expr::Not(x) => Expr::Not(Box::new(self.resolve_expr(*x)?)),
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(self.resolve_expr(*expr)?),
                low: Box::new(self.resolve_expr(*low)?),
                high: Box::new(self.resolve_expr(*high)?),
                negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(self.resolve_expr(*expr)?),
                list: list
                    .into_iter()
                    .map(|x| self.resolve_expr(x))
                    .collect::<Result<_>>()?,
                negated,
            },
            Expr::Agg { func, arg } => Expr::Agg {
                func,
                arg: match arg {
                    Some(a) => Some(Box::new(self.resolve_expr(*a)?)),
                    None => None,
                },
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(self.resolve_expr(*expr)?),
                pattern: Box::new(self.resolve_expr(*pattern)?),
                negated,
            },
            Expr::Func { func, args } => Expr::Func {
                func,
                args: args
                    .into_iter()
                    .map(|a| self.resolve_expr(a))
                    .collect::<Result<_>>()?,
            },
            Expr::Subquery(_) | Expr::InSubquery { .. } => {
                return Err(Error::Plan(
                    "subquery survived lowering (correlated subqueries are \
                     not supported)"
                        .into(),
                ))
            }
        })
    }
}

/// Column indices referenced by an expression.
fn collect_refs(e: &Expr, out: &mut Vec<usize>) {
    match e {
        Expr::ColumnRef(i) => out.push(*i),
        Expr::Literal(_) | Expr::Column { .. } | Expr::AggRef(_) => {}
        Expr::Binary { left, right, .. } => {
            collect_refs(left, out);
            collect_refs(right, out);
        }
        Expr::Neg(x) | Expr::Not(x) => collect_refs(x, out),
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_refs(expr, out);
            collect_refs(low, out);
            collect_refs(high, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_refs(expr, out);
            for x in list {
                collect_refs(x, out);
            }
        }
        Expr::Agg { arg, .. } => {
            if let Some(a) = arg {
                collect_refs(a, out);
            }
        }
        Expr::Like { expr, pattern, .. } => {
            collect_refs(expr, out);
            collect_refs(pattern, out);
        }
        Expr::Func { args, .. } => {
            for a in args {
                collect_refs(a, out);
            }
        }
        Expr::Subquery(_) => {}
        Expr::InSubquery { expr, .. } => collect_refs(expr, out),
    }
}

/// Shift every `ColumnRef` by `-offset` (global → table-local).
fn shift_refs(e: Expr, offset: usize) -> Expr {
    match e {
        Expr::ColumnRef(i) => Expr::ColumnRef(i - offset),
        Expr::Literal(_) | Expr::Column { .. } | Expr::AggRef(_) => e,
        Expr::Binary { op, left, right } => Expr::Binary {
            op,
            left: Box::new(shift_refs(*left, offset)),
            right: Box::new(shift_refs(*right, offset)),
        },
        Expr::Neg(x) => Expr::Neg(Box::new(shift_refs(*x, offset))),
        Expr::Not(x) => Expr::Not(Box::new(shift_refs(*x, offset))),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(shift_refs(*expr, offset)),
            low: Box::new(shift_refs(*low, offset)),
            high: Box::new(shift_refs(*high, offset)),
            negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(shift_refs(*expr, offset)),
            list: list.into_iter().map(|x| shift_refs(x, offset)).collect(),
            negated,
        },
        Expr::Agg { func, arg } => Expr::Agg {
            func,
            arg: arg.map(|a| Box::new(shift_refs(*a, offset))),
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(shift_refs(*expr, offset)),
            pattern: Box::new(shift_refs(*pattern, offset)),
            negated,
        },
        Expr::Func { func, args } => Expr::Func {
            func,
            args: args.into_iter().map(|a| shift_refs(a, offset)).collect(),
        },
        Expr::Subquery(_) => e,
        Expr::InSubquery {
            expr,
            query,
            negated,
        } => Expr::InSubquery {
            expr: Box::new(shift_refs(*expr, offset)),
            query,
            negated,
        },
    }
}

/// Lower uncorrelated subqueries to literals by recursively planning and
/// executing them (§3.2's "nested queries" extension). A scalar subquery
/// must produce one column and at most one row; `IN (SELECT …)` must
/// produce one column.
fn lower_subqueries(e: Expr, catalog: &Catalog, opts: &PlanOptions) -> Result<Expr> {
    Ok(match e {
        Expr::Subquery(stmt) => {
            let planned = plan_select(catalog, *stmt, opts)?;
            let rows = crate::exec::run(&planned.plan)?;
            if planned.columns.len() != 1 {
                return Err(Error::Plan(format!(
                    "scalar subquery must return one column, got {}",
                    planned.columns.len()
                )));
            }
            match rows.len() {
                0 => Expr::Literal(Value::Null),
                1 => Expr::Literal(rows[0][0].clone()),
                n => return Err(Error::Plan(format!("scalar subquery returned {n} rows"))),
            }
        }
        Expr::InSubquery {
            expr,
            query,
            negated,
        } => {
            let planned = plan_select(catalog, *query, opts)?;
            let rows = crate::exec::run(&planned.plan)?;
            if planned.columns.len() != 1 {
                return Err(Error::Plan(format!(
                    "IN subquery must return one column, got {}",
                    planned.columns.len()
                )));
            }
            Expr::InList {
                expr: Box::new(lower_subqueries(*expr, catalog, opts)?),
                list: rows
                    .into_iter()
                    .map(|r| Expr::Literal(r[0].clone()))
                    .collect(),
                negated,
            }
        }
        Expr::Binary { op, left, right } => Expr::Binary {
            op,
            left: Box::new(lower_subqueries(*left, catalog, opts)?),
            right: Box::new(lower_subqueries(*right, catalog, opts)?),
        },
        Expr::Neg(x) => Expr::Neg(Box::new(lower_subqueries(*x, catalog, opts)?)),
        Expr::Not(x) => Expr::Not(Box::new(lower_subqueries(*x, catalog, opts)?)),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(lower_subqueries(*expr, catalog, opts)?),
            low: Box::new(lower_subqueries(*low, catalog, opts)?),
            high: Box::new(lower_subqueries(*high, catalog, opts)?),
            negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(lower_subqueries(*expr, catalog, opts)?),
            list: list
                .into_iter()
                .map(|x| lower_subqueries(x, catalog, opts))
                .collect::<Result<_>>()?,
            negated,
        },
        Expr::Agg { func, arg } => Expr::Agg {
            func,
            arg: match arg {
                Some(a) => Some(Box::new(lower_subqueries(*a, catalog, opts)?)),
                None => None,
            },
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(lower_subqueries(*expr, catalog, opts)?),
            pattern: Box::new(lower_subqueries(*pattern, catalog, opts)?),
            negated,
        },
        Expr::Func { func, args } => Expr::Func {
            func,
            args: args
                .into_iter()
                .map(|a| lower_subqueries(a, catalog, opts))
                .collect::<Result<_>>()?,
        },
        other => other,
    })
}

/// Plan a SELECT statement against the catalog.
pub fn plan_select(
    catalog: &Catalog,
    mut stmt: SelectStmt,
    opts: &PlanOptions,
) -> Result<PlannedQuery> {
    // Lower uncorrelated subqueries everywhere expressions occur.
    stmt.filter = match stmt.filter {
        Some(f) => Some(lower_subqueries(f, catalog, opts)?),
        None => None,
    };
    stmt.having = match stmt.having {
        Some(h) => Some(lower_subqueries(h, catalog, opts)?),
        None => None,
    };
    stmt.join_on = stmt
        .join_on
        .into_iter()
        .map(|e| lower_subqueries(e, catalog, opts))
        .collect::<Result<_>>()?;
    stmt.items = stmt
        .items
        .into_iter()
        .map(|item| -> Result<SelectItem> {
            Ok(match item {
                SelectItem::Wildcard => SelectItem::Wildcard,
                SelectItem::Expr(e, a) => SelectItem::Expr(lower_subqueries(e, catalog, opts)?, a),
            })
        })
        .collect::<Result<_>>()?;
    // -- resolve FROM --------------------------------------------------------
    let mut tables = Vec::new();
    let mut offset = 0usize;
    let mut seen_alias: HashMap<String, ()> = HashMap::new();
    for tr in &stmt.from {
        if seen_alias.insert(tr.alias.clone(), ()).is_some() {
            return Err(Error::Plan(format!("duplicate alias {}", tr.alias)));
        }
        let table = catalog.table(&tr.table)?;
        let width = table.schema().len();
        tables.push(FromTable {
            table,
            alias: tr.alias.clone(),
            offset,
        });
        offset += width;
    }
    let scope = Scope {
        tables,
        total_width: offset,
    };

    // -- gather and resolve predicates ---------------------------------------
    let mut conjuncts: Vec<Expr> = Vec::new();
    if let Some(f) = stmt.filter {
        conjuncts.extend(scope.resolve_expr(f)?.split_conjuncts());
    }
    for on in stmt.join_on {
        conjuncts.extend(scope.resolve_expr(on)?.split_conjuncts());
    }
    // Hoist factors common to every branch of an OR (A∧X ∨ A∧Y ⇒ A ∧ (…)).
    // TPC-H Q19's disjunction repeats its equi-join condition in every
    // branch; hoisting it lets the planner still pick a real join algorithm
    // while the full OR stays as a residual filter.
    let mut hoisted: Vec<Expr> = Vec::new();
    for c in &conjuncts {
        if let Expr::Binary { op: BinOp::Or, .. } = c {
            let branches = or_branches(c.clone());
            if branches.len() < 2 {
                continue;
            }
            let mut common: Vec<Expr> = branches[0].clone().split_conjuncts();
            for b in &branches[1..] {
                let parts = b.clone().split_conjuncts();
                common.retain(|x| parts.contains(x));
            }
            hoisted.extend(common);
        }
    }
    conjuncts.extend(hoisted);

    // -- partition conjuncts by the tables they touch -------------------------
    let table_range = |ti: usize| {
        let t = &scope.tables[ti];
        (t.offset, t.offset + t.table.schema().len())
    };
    let owner_of = |e: &Expr| -> Option<usize> {
        let mut refs = Vec::new();
        collect_refs(e, &mut refs);
        if refs.is_empty() {
            return None; // constant predicate: keep as residual on top
        }
        for ti in 0..scope.tables.len() {
            let (lo, hi) = table_range(ti);
            if refs.iter().all(|&r| r >= lo && r < hi) {
                return Some(ti);
            }
        }
        None
    };

    let mut per_table: Vec<Vec<Expr>> = vec![Vec::new(); scope.tables.len()];
    let mut multi: Vec<Expr> = Vec::new();
    for c in conjuncts {
        match owner_of(&c) {
            Some(ti) => per_table[ti].push(c),
            None => multi.push(c),
        }
    }

    // -- build scans with access paths ----------------------------------------
    let mut scans: Vec<PhysicalPlan> = Vec::new();
    for (ti, t) in scope.tables.iter().enumerate() {
        let local: Vec<Expr> = per_table[ti]
            .drain(..)
            .map(|e| shift_refs(e, t.offset))
            .collect();
        scans.push(build_scan(&t.table, local)?);
    }

    // -- left-deep join tree in FROM order -------------------------------------
    let mut plan = scans.remove(0);
    let mut joined_width = scope.tables[0].table.schema().len();
    for (ti, right_scan) in scans.into_iter().enumerate() {
        let ti = ti + 1; // actual table index
        let (r_lo, r_hi) = table_range(ti);
        debug_assert_eq!(r_lo, joined_width);
        let right_width = r_hi - r_lo;

        // Find an equi-join conjunct connecting the joined prefix and this
        // table; pull applicable residuals too.
        let mut equi: Option<(usize, usize)> = None; // (left global, right global)
        let mut residuals: Vec<Expr> = Vec::new();
        let mut rest: Vec<Expr> = Vec::new();
        for c in multi.drain(..) {
            let mut refs = Vec::new();
            collect_refs(&c, &mut refs);
            let applicable = refs.iter().all(|&r| r < r_hi);
            if !applicable {
                rest.push(c);
                continue;
            }
            if equi.is_none() {
                if let Expr::Binary {
                    op: BinOp::Eq,
                    ref left,
                    ref right,
                } = c
                {
                    if let (Expr::ColumnRef(a), Expr::ColumnRef(b)) =
                        (left.as_ref(), right.as_ref())
                    {
                        let (a, b) = (*a, *b);
                        let pair = if a < r_lo && b >= r_lo && b < r_hi {
                            Some((a, b))
                        } else if b < r_lo && a >= r_lo && a < r_hi {
                            Some((b, a))
                        } else {
                            None
                        };
                        if let Some(p) = pair {
                            equi = Some(p);
                            continue; // consumed by the join itself
                        }
                    }
                }
            }
            residuals.push(c);
        }
        multi = rest;
        let residual = Expr::conjoin(residuals);

        plan = build_join(
            plan,
            right_scan,
            &scope.tables[ti].table,
            equi.map(|(l, r)| (l, r - r_lo)),
            residual,
            joined_width,
            opts,
        )?;
        joined_width += right_width;
    }

    // Leftover predicates (shouldn't exist, but constants land here).
    if let Some(f) = Expr::conjoin(multi) {
        plan = PhysicalPlan::Filter {
            input: Box::new(plan),
            pred: f,
        };
    }

    // -- aggregation / projection -----------------------------------------------
    let group_exprs: Vec<Expr> = stmt
        .group_by
        .into_iter()
        .map(|g| scope.resolve_expr(g))
        .collect::<Result<_>>()?;

    let mut out_exprs: Vec<Expr> = Vec::new();
    let mut out_names: Vec<String> = Vec::new();
    for item in stmt.items {
        match item {
            SelectItem::Wildcard => {
                for t in &scope.tables {
                    for (ci, col) in t.table.schema().columns().iter().enumerate() {
                        out_exprs.push(Expr::ColumnRef(t.offset + ci));
                        out_names.push(col.name.clone());
                    }
                }
            }
            SelectItem::Expr(e, alias) => {
                let name = alias.unwrap_or_else(|| default_name(&e));
                out_exprs.push(scope.resolve_expr(e)?);
                out_names.push(name);
            }
        }
    }

    let has_aggs = !group_exprs.is_empty() || out_exprs.iter().any(|e| e.contains_agg());

    if has_aggs {
        // Collect aggregate calls and rewrite output expressions over the
        // aggregate operator's output row: [groups..., aggs...].
        let mut aggs: Vec<(AggFunc, Option<Expr>)> = Vec::new();
        let group_len = group_exprs.len();
        let rewritten: Vec<Expr> = out_exprs
            .into_iter()
            .map(|e| rewrite_for_agg(e, &group_exprs, &mut aggs, group_len))
            .collect::<Result<_>>()?;
        // Validate: rewritten expressions may only reference the agg output.
        for e in &rewritten {
            let mut refs = Vec::new();
            collect_refs(e, &mut refs);
            if refs.iter().any(|&r| r >= group_len + aggs.len()) {
                return Err(Error::Plan(
                    "select expression references a column that is neither \
                     grouped nor aggregated"
                        .into(),
                ));
            }
        }
        plan = PhysicalPlan::Aggregate {
            input: Box::new(plan),
            group: group_exprs.clone(),
            aggs: aggs.clone(),
        };
        // HAVING filters groups before projection; it sees the aggregate
        // output row [groups..., aggs...].
        if let Some(h) = stmt.having {
            let resolved = scope.resolve_expr(h)?;
            let rewritten_h = rewrite_for_agg(resolved, &group_exprs, &mut aggs, group_len)?;
            let mut refs = Vec::new();
            collect_refs(&rewritten_h, &mut refs);
            if refs.iter().any(|&r| r >= group_len + aggs.len()) {
                return Err(Error::Plan(
                    "HAVING references a column that is neither grouped nor \
                     aggregated"
                        .into(),
                ));
            }
            // Aggregates first used in HAVING extend the aggregate list.
            if let PhysicalPlan::Aggregate {
                aggs: plan_aggs, ..
            } = &mut plan
            {
                *plan_aggs = aggs.clone();
            }
            plan = PhysicalPlan::Filter {
                input: Box::new(plan),
                pred: rewritten_h,
            };
        }
        plan = PhysicalPlan::Project {
            input: Box::new(plan),
            exprs: rewritten,
            names: out_names.clone(),
        };
    } else {
        if stmt.having.is_some() {
            return Err(Error::Plan("HAVING requires GROUP BY or aggregates".into()));
        }
        plan = PhysicalPlan::Project {
            input: Box::new(plan),
            exprs: out_exprs,
            names: out_names.clone(),
        };
    }

    if stmt.distinct {
        plan = PhysicalPlan::Distinct {
            input: Box::new(plan),
        };
    }

    // -- order by / limit (over the projected output) -----------------------------
    if !stmt.order_by.is_empty() {
        let mut keys = Vec::new();
        for (e, desc) in stmt.order_by {
            let key = resolve_order_key(e, &out_names, &scope)?;
            keys.push((key, desc));
        }
        plan = PhysicalPlan::Sort {
            input: Box::new(plan),
            keys,
        };
    }
    if let Some(n) = stmt.limit {
        plan = PhysicalPlan::Limit {
            input: Box::new(plan),
            n,
        };
    }

    if opts.workers > 1 {
        plan = parallelize(plan, opts.workers);
    }

    Ok(PlannedQuery {
        plan,
        columns: out_names,
    })
}

/// ORDER BY keys resolve against the projected output: by alias/name, or
/// by 1-based position.
fn resolve_order_key(e: Expr, out_names: &[String], _scope: &Scope) -> Result<Expr> {
    match &e {
        Expr::Column {
            qualifier: None,
            name,
        } => {
            if let Some(i) = out_names.iter().position(|n| n.eq_ignore_ascii_case(name)) {
                return Ok(Expr::ColumnRef(i));
            }
            Err(Error::Plan(format!(
                "ORDER BY column {name} is not in the output"
            )))
        }
        Expr::Column {
            qualifier: Some(q),
            name,
        } => {
            let full = format!("{q}.{name}");
            if let Some(i) = out_names
                .iter()
                .position(|n| n.eq_ignore_ascii_case(&full) || n.eq_ignore_ascii_case(name))
            {
                return Ok(Expr::ColumnRef(i));
            }
            Err(Error::Plan(format!(
                "ORDER BY column {full} is not in the output"
            )))
        }
        Expr::Literal(Value::Int(i)) if *i >= 1 && (*i as usize) <= out_names.len() => {
            Ok(Expr::ColumnRef(*i as usize - 1))
        }
        _ => Err(Error::Plan(
            "ORDER BY supports output column names or 1-based positions".into(),
        )),
    }
}

fn default_name(e: &Expr) -> String {
    match e {
        Expr::Column { name, .. } => name.clone(),
        Expr::Agg { func, .. } => format!("{func:?}").to_lowercase(),
        _ => "expr".to_string(),
    }
}

/// Rewrite a select expression for evaluation over the aggregate output
/// row `[groups..., aggs...]`, registering aggregate calls as it goes.
fn rewrite_for_agg(
    e: Expr,
    group_exprs: &[Expr],
    aggs: &mut Vec<(AggFunc, Option<Expr>)>,
    group_len: usize,
) -> Result<Expr> {
    // A select expression that *is* a group expression references its slot.
    if let Some(i) = group_exprs.iter().position(|g| *g == e) {
        return Ok(Expr::ColumnRef(i));
    }
    Ok(match e {
        Expr::Agg { func, arg } => {
            let idx = group_len + aggs.len();
            aggs.push((func, arg.map(|a| *a)));
            Expr::ColumnRef(idx)
        }
        Expr::Binary { op, left, right } => Expr::Binary {
            op,
            left: Box::new(rewrite_for_agg(*left, group_exprs, aggs, group_len)?),
            right: Box::new(rewrite_for_agg(*right, group_exprs, aggs, group_len)?),
        },
        Expr::Neg(x) => Expr::Neg(Box::new(rewrite_for_agg(*x, group_exprs, aggs, group_len)?)),
        Expr::Not(x) => Expr::Not(Box::new(rewrite_for_agg(*x, group_exprs, aggs, group_len)?)),
        Expr::Func { func, args } => Expr::Func {
            func,
            args: args
                .into_iter()
                .map(|a| rewrite_for_agg(a, group_exprs, aggs, group_len))
                .collect::<Result<_>>()?,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(rewrite_for_agg(*expr, group_exprs, aggs, group_len)?),
            pattern: Box::new(rewrite_for_agg(*pattern, group_exprs, aggs, group_len)?),
            negated,
        },
        // A bare column that is not (part of) a group expression cannot
        // appear outside an aggregate argument.
        Expr::ColumnRef(_) => {
            return Err(Error::Plan(
                "select expression references a column that is neither \
                 grouped nor aggregated"
                    .into(),
            ))
        }
        other => other,
    })
}

/// Build the scan for one table from its pushed-down (table-local)
/// conjuncts: extract bounds on chained columns, keep the rest as a
/// residual filter.
fn build_scan(table: &Arc<Table>, conjuncts: Vec<Expr>) -> Result<PhysicalPlan> {
    #[derive(Default, Clone)]
    struct ColBounds {
        lo: Option<(Value, bool)>, // (value, inclusive)
        hi: Option<(Value, bool)>,
        eq: Option<Value>,
    }
    let mut bounds: HashMap<usize, ColBounds> = HashMap::new();
    let mut residual: Vec<Expr> = Vec::new();

    let tighten_lo = |slot: &mut Option<(Value, bool)>, v: Value, inc: bool| {
        let better = match slot {
            None => true,
            Some((cur, cur_inc)) => v > *cur || (v == *cur && !inc && *cur_inc),
        };
        if better {
            *slot = Some((v, inc));
        }
    };
    let tighten_hi = |slot: &mut Option<(Value, bool)>, v: Value, inc: bool| {
        let better = match slot {
            None => true,
            Some((cur, cur_inc)) => v < *cur || (v == *cur && !inc && *cur_inc),
        };
        if better {
            *slot = Some((v, inc));
        }
    };

    for c in conjuncts {
        let mut consumed = false;
        if let Expr::Binary {
            op,
            ref left,
            ref right,
        } = c
        {
            if op.is_comparison() {
                let (col, lit, op) = match (left.as_ref(), right.as_ref()) {
                    (Expr::ColumnRef(i), Expr::Literal(v)) => (Some(*i), Some(v.clone()), op),
                    (Expr::Literal(v), Expr::ColumnRef(i)) => {
                        // flip the operator
                        let flipped = match op {
                            BinOp::Lt => BinOp::Gt,
                            BinOp::Le => BinOp::Ge,
                            BinOp::Gt => BinOp::Lt,
                            BinOp::Ge => BinOp::Le,
                            other => other,
                        };
                        (Some(*i), Some(v.clone()), flipped)
                    }
                    _ => (None, None, op),
                };
                if let (Some(col), Some(lit)) = (col, lit) {
                    if table.chain_for_column(col).is_some() {
                        let b = bounds.entry(col).or_default();
                        match op {
                            BinOp::Eq => {
                                b.eq = Some(lit);
                                consumed = true;
                            }
                            BinOp::Lt => {
                                tighten_hi(&mut b.hi, lit, false);
                                consumed = true;
                            }
                            BinOp::Le => {
                                tighten_hi(&mut b.hi, lit, true);
                                consumed = true;
                            }
                            BinOp::Gt => {
                                tighten_lo(&mut b.lo, lit, false);
                                consumed = true;
                            }
                            BinOp::Ge => {
                                tighten_lo(&mut b.lo, lit, true);
                                consumed = true;
                            }
                            _ => {}
                        }
                    }
                }
            }
        } else if let Expr::Between {
            ref expr,
            ref low,
            ref high,
            negated: false,
        } = c
        {
            if let (Expr::ColumnRef(i), Expr::Literal(lo), Expr::Literal(hi)) =
                (expr.as_ref(), low.as_ref(), high.as_ref())
            {
                if table.chain_for_column(*i).is_some() {
                    let b = bounds.entry(*i).or_default();
                    tighten_lo(&mut b.lo, lo.clone(), true);
                    tighten_hi(&mut b.hi, hi.clone(), true);
                    consumed = true;
                }
            }
        }
        if !consumed {
            residual.push(c);
        }
    }

    // Pick the best access path: equality beats range; among ranges prefer
    // two-sided, then the primary chain.
    let mut access = AccessPath::Full;
    let mut best_score = 0i32;
    for (&col, b) in &bounds {
        let chain = table.chain_for_column(col).expect("checked above");
        let score = if b.eq.is_some() {
            100
        } else {
            (b.lo.is_some() as i32) + (b.hi.is_some() as i32)
        } + if chain == 0 { 1 } else { 0 };
        if score > best_score {
            best_score = score;
            access = if let Some(eq) = &b.eq {
                AccessPath::Point {
                    chain,
                    key: eq.clone(),
                }
            } else {
                AccessPath::Range {
                    chain,
                    lo: match &b.lo {
                        None => Bound::Unbounded,
                        Some((v, true)) => Bound::Included(v.clone()),
                        Some((v, false)) => Bound::Excluded(v.clone()),
                    },
                    hi: match &b.hi {
                        None => Bound::Unbounded,
                        Some((v, true)) => Bound::Included(v.clone()),
                        Some((v, false)) => Bound::Excluded(v.clone()),
                    },
                }
            };
        }
    }
    // Bounds that were *not* chosen must be re-applied as residuals.
    for (&col, b) in &bounds {
        let covered = match &access {
            AccessPath::Point { chain, .. } | AccessPath::Range { chain, .. } => {
                table.chain_for_column(col) == Some(*chain)
            }
            AccessPath::Full => false,
        };
        if covered {
            continue;
        }
        if let Some(eq) = &b.eq {
            residual.push(Expr::Binary {
                op: BinOp::Eq,
                left: Box::new(Expr::ColumnRef(col)),
                right: Box::new(Expr::Literal(eq.clone())),
            });
        }
        if let Some((v, inc)) = &b.lo {
            residual.push(Expr::Binary {
                op: if *inc { BinOp::Ge } else { BinOp::Gt },
                left: Box::new(Expr::ColumnRef(col)),
                right: Box::new(Expr::Literal(v.clone())),
            });
        }
        if let Some((v, inc)) = &b.hi {
            residual.push(Expr::Binary {
                op: if *inc { BinOp::Le } else { BinOp::Lt },
                left: Box::new(Expr::ColumnRef(col)),
                right: Box::new(Expr::Literal(v.clone())),
            });
        }
    }

    Ok(PhysicalPlan::TableScan {
        table: Arc::clone(table),
        access,
        residual: Expr::conjoin(residual),
    })
}

/// Sortedness of a plan's output: `Some(col)` when the rows arrive ordered
/// by that output column.
fn sorted_on(plan: &PhysicalPlan) -> Option<usize> {
    match plan {
        PhysicalPlan::TableScan { table, access, .. } => match access {
            AccessPath::Full => Some(table.column_of_chain(0)),
            AccessPath::Range { chain, .. } => Some(table.column_of_chain(*chain)),
            AccessPath::Point { .. } => Some(0), // trivially sorted
        },
        PhysicalPlan::Filter { input, .. } => sorted_on(input),
        _ => None,
    }
}

/// Choose and build the join of `left` (global prefix) with a scan of
/// `right_table`.
fn build_join(
    left: PhysicalPlan,
    right_scan: PhysicalPlan,
    right_table: &Arc<Table>,
    equi: Option<(usize, usize)>, // (left global idx, right local idx)
    residual: Option<Expr>,
    left_width: usize,
    opts: &PlanOptions,
) -> Result<PhysicalPlan> {
    let Some((lkey, rkey_local)) = equi else {
        // No equi condition: block nested loop with the residual as the
        // join predicate.
        return Ok(PhysicalPlan::BlockNlJoin {
            left: Box::new(left),
            right: Box::new(right_scan),
            pred: residual,
        });
    };

    let inner_chain = right_table.chain_for_column(rkey_local);
    let can_merge = sorted_on(&left) == Some(lkey) && sorted_on(&right_scan) == Some(rkey_local);
    let prefer = opts.prefer_join;

    let use_merge = match prefer {
        PreferredJoin::Merge => true,
        PreferredJoin::Auto => false, // index NLJ is the paper's default
        _ => false,
    };
    if use_merge {
        // Merge join needs sorted inputs; sort explicitly when they are not.
        let left = if sorted_on(&left) == Some(lkey) {
            left
        } else {
            PhysicalPlan::Sort {
                input: Box::new(left),
                keys: vec![(Expr::ColumnRef(lkey), false)],
            }
        };
        let right = if sorted_on(&right_scan) == Some(rkey_local) {
            right_scan
        } else {
            PhysicalPlan::Sort {
                input: Box::new(right_scan),
                keys: vec![(Expr::ColumnRef(rkey_local), false)],
            }
        };
        return Ok(PhysicalPlan::MergeJoin {
            left: Box::new(left),
            right: Box::new(right),
            left_key: lkey,
            right_key: rkey_local,
            residual,
        });
    }

    match prefer {
        PreferredJoin::Hash => Ok(PhysicalPlan::HashJoin {
            left: Box::new(left),
            right: Box::new(right_scan),
            left_key: lkey,
            right_key: rkey_local,
            residual,
        }),
        PreferredJoin::NestedLoop => {
            // The paper's Q19 "NestedLoopJoin and materialize the Select
            // result on inner loop": a block nested-loop over the
            // materialized inner scan, with the equi condition folded into
            // the join predicate. (The index-driven nested loop is what
            // `Auto` picks; forcing NestedLoop means the compute-bound
            // variant the paper contrasts against MergeJoin.)
            Ok(PhysicalPlan::BlockNlJoin {
                left: Box::new(left),
                right: Box::new(right_scan),
                pred: {
                    let eq = Expr::Binary {
                        op: BinOp::Eq,
                        left: Box::new(Expr::ColumnRef(lkey)),
                        right: Box::new(Expr::ColumnRef(left_width + rkey_local)),
                    };
                    Some(match residual {
                        Some(r) => Expr::Binary {
                            op: BinOp::And,
                            left: Box::new(eq),
                            right: Box::new(r),
                        },
                        None => eq,
                    })
                },
            })
        }
        PreferredJoin::Auto | PreferredJoin::Merge => {
            // Auto: index NLJ when the inner chain exists and the inner
            // scan is a plain one; merge when both sides arrive sorted;
            // hash otherwise.
            if let Some(chain) = inner_chain {
                if let PhysicalPlan::TableScan {
                    residual: r,
                    access: AccessPath::Full,
                    ..
                } = &right_scan
                {
                    let inner_residual = r.clone().map(|e| shift_up(e, left_width));
                    let combined = match (residual.clone(), inner_residual) {
                        (Some(a), Some(b)) => Some(Expr::Binary {
                            op: BinOp::And,
                            left: Box::new(a),
                            right: Box::new(b),
                        }),
                        (a, b) => a.or(b),
                    };
                    return Ok(PhysicalPlan::IndexNlJoin {
                        outer: Box::new(left),
                        inner: Arc::clone(right_table),
                        inner_chain: chain,
                        outer_key: lkey,
                        residual: combined,
                    });
                }
            }
            if can_merge {
                return Ok(PhysicalPlan::MergeJoin {
                    left: Box::new(left),
                    right: Box::new(right_scan),
                    left_key: lkey,
                    right_key: rkey_local,
                    residual,
                });
            }
            Ok(PhysicalPlan::HashJoin {
                left: Box::new(left),
                right: Box::new(right_scan),
                left_key: lkey,
                right_key: rkey_local,
                residual,
            })
        }
    }
}

/// Shift table-local refs up by `offset` (table-local → global).
fn shift_up(e: Expr, offset: usize) -> Expr {
    match e {
        Expr::ColumnRef(i) => Expr::ColumnRef(i + offset),
        Expr::Literal(_) | Expr::Column { .. } | Expr::AggRef(_) => e,
        Expr::Binary { op, left, right } => Expr::Binary {
            op,
            left: Box::new(shift_up(*left, offset)),
            right: Box::new(shift_up(*right, offset)),
        },
        Expr::Neg(x) => Expr::Neg(Box::new(shift_up(*x, offset))),
        Expr::Not(x) => Expr::Not(Box::new(shift_up(*x, offset))),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(shift_up(*expr, offset)),
            low: Box::new(shift_up(*low, offset)),
            high: Box::new(shift_up(*high, offset)),
            negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(shift_up(*expr, offset)),
            list: list.into_iter().map(|x| shift_up(x, offset)).collect(),
            negated,
        },
        Expr::Agg { func, arg } => Expr::Agg {
            func,
            arg: arg.map(|a| Box::new(shift_up(*a, offset))),
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(shift_up(*expr, offset)),
            pattern: Box::new(shift_up(*pattern, offset)),
            negated,
        },
        Expr::Func { func, args } => Expr::Func {
            func,
            args: args.into_iter().map(|a| shift_up(a, offset)).collect(),
        },
        Expr::Subquery(_) => e,
        Expr::InSubquery {
            expr,
            query,
            negated,
        } => Expr::InSubquery {
            expr: Box::new(shift_up(*expr, offset)),
            query,
            negated,
        },
    }
}

/// Flatten an OR tree into its branches.
fn or_branches(e: Expr) -> Vec<Expr> {
    match e {
        Expr::Binary {
            op: BinOp::Or,
            left,
            right,
        } => {
            let mut out = or_branches(*left);
            out.extend(or_branches(*right));
            out
        }
        other => vec![other],
    }
}

/// Expose the scan builder for planner unit tests.
#[doc(hidden)]
pub fn build_scan_for_test(table: &Arc<Table>, conjuncts: Vec<Expr>) -> Result<PhysicalPlan> {
    build_scan(table, conjuncts)
}

#[allow(dead_code)]
fn unused_scope_width(s: &Scope) -> usize {
    s.total_width
}
