//! Expression evaluation over resolved rows.
//!
//! By execution time every `Expr::Column` has been rewritten to
//! `Expr::ColumnRef(i)` (an index into the operator's input row) and every
//! aggregate to `Expr::AggRef(i)`. Evaluation is fully dynamic-typed over
//! [`Value`], with SQL-ish NULL propagation: any arithmetic or comparison
//! with NULL yields NULL, and a NULL predicate is treated as false.

use crate::ast::{BinOp, Expr};
use veridb_common::{Error, Result, Row, Value};

/// Evaluate `expr` against `row`.
pub fn eval(expr: &Expr, row: &Row) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::ColumnRef(i) => {
            if *i >= row.len() {
                return Err(Error::Plan(format!(
                    "column reference {i} out of range for row of width {}",
                    row.len()
                )));
            }
            Ok(row[*i].clone())
        }
        Expr::AggRef(i) => {
            // Aggregate outputs are appended to the group row by the
            // aggregate operator; same access pattern as columns.
            if *i >= row.len() {
                return Err(Error::Plan(format!(
                    "aggregate reference {i} out of range for row of width {}",
                    row.len()
                )));
            }
            Ok(row[*i].clone())
        }
        Expr::Column { qualifier, name } => Err(Error::Plan(format!(
            "unresolved column {}{} reached execution",
            qualifier
                .as_deref()
                .map(|q| format!("{q}."))
                .unwrap_or_default(),
            name
        ))),
        Expr::Agg { .. } => Err(Error::Plan("unresolved aggregate reached execution".into())),
        Expr::Subquery(_) | Expr::InSubquery { .. } => {
            Err(Error::Plan("unlowered subquery reached execution".into()))
        }
        Expr::Neg(e) => match eval(e, row)? {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            v => Err(Error::Type(format!("cannot negate {v}"))),
        },
        Expr::Not(e) => match eval_truth(e, row)? {
            Truth::True => Ok(Value::Int(0)),
            Truth::False => Ok(Value::Int(1)),
            Truth::Null => Ok(Value::Null),
        },
        Expr::Binary { op, left, right } => eval_binary(*op, left, right, row),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval(expr, row)?;
            let lo = eval(low, row)?;
            let hi = eval(high, row)?;
            if v.is_null() || lo.is_null() || hi.is_null() {
                return Ok(Value::Null);
            }
            let within = cmp_values(&v, &lo)? >= std::cmp::Ordering::Equal
                && cmp_values(&v, &hi)? <= std::cmp::Ordering::Equal;
            Ok(bool_value(within != *negated))
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(expr, row)?;
            let p = eval(pattern, row)?;
            if v.is_null() || p.is_null() {
                return Ok(Value::Null);
            }
            let hit = like_match(v.as_str()?, p.as_str()?);
            Ok(bool_value(hit != *negated))
        }
        Expr::Func { func, args } => {
            use crate::ast::ScalarFunc;
            let vals: Vec<Value> = args.iter().map(|a| eval(a, row)).collect::<Result<_>>()?;
            if vals.iter().any(|v| v.is_null()) {
                return Ok(Value::Null);
            }
            match func {
                ScalarFunc::Upper => Ok(Value::Str(vals[0].as_str()?.to_uppercase())),
                ScalarFunc::Lower => Ok(Value::Str(vals[0].as_str()?.to_lowercase())),
                ScalarFunc::Length => Ok(Value::Int(vals[0].as_str()?.chars().count() as i64)),
                ScalarFunc::Abs => match &vals[0] {
                    Value::Int(i) => Ok(Value::Int(i.wrapping_abs())),
                    Value::Float(f) => Ok(Value::Float(f.abs())),
                    v => Err(Error::Type(format!("ABS of non-numeric {v}"))),
                },
                ScalarFunc::Substr => {
                    if vals.len() < 2 || vals.len() > 3 {
                        return Err(Error::Type("SUBSTR takes 2 or 3 arguments".into()));
                    }
                    let sch: Vec<char> = vals[0].as_str()?.chars().collect();
                    // SQL semantics: 1-based start; clamp to bounds.
                    let start = (vals[1].as_i64()?.max(1) - 1) as usize;
                    let len = match vals.get(2) {
                        Some(n) => n.as_i64()?.max(0) as usize,
                        None => sch.len(),
                    };
                    let out: String = sch.iter().skip(start).take(len).collect();
                    Ok(Value::Str(out))
                }
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut found = false;
            for item in list {
                let iv = eval(item, row)?;
                if !iv.is_null() && cmp_values(&v, &iv)? == std::cmp::Ordering::Equal {
                    found = true;
                    break;
                }
            }
            Ok(bool_value(found != *negated))
        }
    }
}

/// Three-valued logic outcome of a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truth {
    /// Definitely true.
    True,
    /// Definitely false.
    False,
    /// Unknown (NULL involved).
    Null,
}

/// Evaluate `expr` as a predicate. SQL semantics: rows pass a filter only
/// on `True`.
pub fn eval_truth(expr: &Expr, row: &Row) -> Result<Truth> {
    match expr {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            // Short-circuit: False AND x = False without evaluating x
            // (sound under three-valued logic and critical for join
            // predicates of the form `equi AND <expensive residual>`).
            match eval_truth(left, row)? {
                Truth::False => Ok(Truth::False),
                l => match (l, eval_truth(right, row)?) {
                    (_, Truth::False) => Ok(Truth::False),
                    (Truth::True, Truth::True) => Ok(Truth::True),
                    _ => Ok(Truth::Null),
                },
            }
        }
        Expr::Binary {
            op: BinOp::Or,
            left,
            right,
        } => match eval_truth(left, row)? {
            Truth::True => Ok(Truth::True),
            l => match (l, eval_truth(right, row)?) {
                (_, Truth::True) => Ok(Truth::True),
                (Truth::False, Truth::False) => Ok(Truth::False),
                _ => Ok(Truth::Null),
            },
        },
        Expr::Not(e) => Ok(match eval_truth(e, row)? {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Null => Truth::Null,
        }),
        other => match eval(other, row)? {
            Value::Null => Ok(Truth::Null),
            Value::Int(0) => Ok(Truth::False),
            Value::Int(_) => Ok(Truth::True),
            Value::Float(0.0) => Ok(Truth::False),
            Value::Float(_) => Ok(Truth::True),
            v => Err(Error::Type(format!("{v} is not a boolean"))),
        },
    }
}

/// True iff the predicate evaluates to `True` (filter semantics).
pub fn passes(expr: &Expr, row: &Row) -> Result<bool> {
    Ok(eval_truth(expr, row)? == Truth::True)
}

fn bool_value(b: bool) -> Value {
    Value::Int(if b { 1 } else { 0 })
}

/// Compare two non-null values, rejecting incomparable type mixes.
pub fn cmp_values(a: &Value, b: &Value) -> Result<std::cmp::Ordering> {
    use Value::*;
    match (a, b) {
        (Int(_) | Float(_), Int(_) | Float(_)) | (Str(_), Str(_)) | (Date(_), Date(_)) => {
            Ok(a.cmp(b))
        }
        // Dates stored as ints compare against int literals.
        (Date(d), Int(i)) => Ok((*d as i64).cmp(i)),
        (Int(i), Date(d)) => Ok(i.cmp(&(*d as i64))),
        _ => Err(Error::Type(format!("cannot compare {a} with {b}"))),
    }
}

fn eval_binary(op: BinOp, left: &Expr, right: &Expr, row: &Row) -> Result<Value> {
    if matches!(op, BinOp::And | BinOp::Or) {
        // Route through three-valued logic.
        return Ok(
            match eval_truth(
                &Expr::Binary {
                    op,
                    left: Box::new(left.clone()),
                    right: Box::new(right.clone()),
                },
                row,
            )? {
                Truth::True => Value::Int(1),
                Truth::False => Value::Int(0),
                Truth::Null => Value::Null,
            },
        );
    }
    let l = eval(left, row)?;
    let r = eval(right, row)?;
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    if op.is_comparison() {
        let ord = cmp_values(&l, &r)?;
        let b = match op {
            BinOp::Eq => ord == std::cmp::Ordering::Equal,
            BinOp::Ne => ord != std::cmp::Ordering::Equal,
            BinOp::Lt => ord == std::cmp::Ordering::Less,
            BinOp::Le => ord != std::cmp::Ordering::Greater,
            BinOp::Gt => ord == std::cmp::Ordering::Greater,
            BinOp::Ge => ord != std::cmp::Ordering::Less,
            _ => unreachable!(),
        };
        return Ok(bool_value(b));
    }
    // Arithmetic: ints stay ints (except division), mixes go to float.
    match (op, &l, &r) {
        (BinOp::Add, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_add(*b))),
        (BinOp::Sub, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_sub(*b))),
        (BinOp::Mul, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_mul(*b))),
        (BinOp::Div, Value::Int(a), Value::Int(b)) => {
            if *b == 0 {
                Ok(Value::Null) // SQL-ish: division by zero yields NULL
            } else {
                Ok(Value::Float(*a as f64 / *b as f64))
            }
        }
        (BinOp::Add, _, _) => Ok(Value::Float(l.as_f64()? + r.as_f64()?)),
        (BinOp::Sub, _, _) => Ok(Value::Float(l.as_f64()? - r.as_f64()?)),
        (BinOp::Mul, _, _) => Ok(Value::Float(l.as_f64()? * r.as_f64()?)),
        (BinOp::Div, _, _) => {
            let d = r.as_f64()?;
            if d == 0.0 {
                Ok(Value::Null)
            } else {
                Ok(Value::Float(l.as_f64()? / d))
            }
        }
        _ => unreachable!("comparisons handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr as E;

    fn row() -> Row {
        Row::new(vec![
            Value::Int(10),
            Value::Float(2.5),
            Value::Str("abc".into()),
            Value::Null,
            Value::Date(100),
        ])
    }

    fn cref(i: usize) -> E {
        E::ColumnRef(i)
    }

    fn bin(op: BinOp, l: E, r: E) -> E {
        E::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    #[test]
    fn arithmetic() {
        let r = row();
        assert_eq!(
            eval(&bin(BinOp::Add, cref(0), E::int(5)), &r).unwrap(),
            Value::Int(15)
        );
        assert_eq!(
            eval(&bin(BinOp::Mul, cref(0), cref(1)), &r).unwrap(),
            Value::Float(25.0)
        );
        assert_eq!(
            eval(&bin(BinOp::Div, E::int(7), E::int(2)), &r).unwrap(),
            Value::Float(3.5)
        );
        assert_eq!(
            eval(&bin(BinOp::Div, E::int(7), E::int(0)), &r).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval(&E::Neg(Box::new(cref(1))), &r).unwrap(),
            Value::Float(-2.5)
        );
    }

    #[test]
    fn comparisons_and_mixed_numeric() {
        let r = row();
        assert_eq!(
            eval(&bin(BinOp::Gt, cref(0), cref(1)), &r).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            eval(&bin(BinOp::Eq, cref(2), E::Literal("abc".into())), &r).unwrap(),
            Value::Int(1)
        );
        assert!(eval(&bin(BinOp::Lt, cref(2), E::int(5)), &r).is_err());
    }

    #[test]
    fn null_propagation() {
        let r = row();
        assert_eq!(
            eval(&bin(BinOp::Add, cref(3), E::int(1)), &r).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval(&bin(BinOp::Eq, cref(3), cref(3)), &r).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval_truth(&bin(BinOp::Eq, cref(3), E::int(1)), &r).unwrap(),
            Truth::Null
        );
        assert!(!passes(&bin(BinOp::Eq, cref(3), E::int(1)), &r).unwrap());
    }

    #[test]
    fn three_valued_logic() {
        let r = row();
        let null_pred = bin(BinOp::Eq, cref(3), E::int(1));
        let true_pred = bin(BinOp::Eq, cref(0), E::int(10));
        let false_pred = bin(BinOp::Eq, cref(0), E::int(11));
        // NULL OR TRUE = TRUE
        assert_eq!(
            eval_truth(&bin(BinOp::Or, null_pred.clone(), true_pred.clone()), &r).unwrap(),
            Truth::True
        );
        // NULL AND FALSE = FALSE
        assert_eq!(
            eval_truth(&bin(BinOp::And, null_pred.clone(), false_pred), &r).unwrap(),
            Truth::False
        );
        // NOT NULL = NULL
        assert_eq!(
            eval_truth(&E::Not(Box::new(null_pred)), &r).unwrap(),
            Truth::Null
        );
    }

    #[test]
    fn between_and_in() {
        let r = row();
        let between = E::Between {
            expr: Box::new(cref(0)),
            low: Box::new(E::int(5)),
            high: Box::new(E::int(15)),
            negated: false,
        };
        assert!(passes(&between, &r).unwrap());
        let not_between = E::Between {
            expr: Box::new(cref(0)),
            low: Box::new(E::int(5)),
            high: Box::new(E::int(15)),
            negated: true,
        };
        assert!(!passes(&not_between, &r).unwrap());

        let inlist = E::InList {
            expr: Box::new(cref(2)),
            list: vec![E::Literal("xyz".into()), E::Literal("abc".into())],
            negated: false,
        };
        assert!(passes(&inlist, &r).unwrap());
        let notin = E::InList {
            expr: Box::new(cref(2)),
            list: vec![E::Literal("xyz".into())],
            negated: true,
        };
        assert!(passes(&notin, &r).unwrap());
    }

    #[test]
    fn date_comparisons() {
        let r = row();
        assert!(passes(&bin(BinOp::Ge, cref(4), E::Literal(Value::Date(100))), &r).unwrap());
        assert!(passes(&bin(BinOp::Lt, cref(4), E::Literal(Value::Date(101))), &r).unwrap());
    }

    #[test]
    fn unresolved_columns_are_plan_errors() {
        let r = row();
        assert!(matches!(eval(&E::col("ghost"), &r), Err(Error::Plan(_))));
        assert!(matches!(eval(&E::ColumnRef(99), &r), Err(Error::Plan(_))));
    }
}

/// SQL LIKE matching: `%` matches any (possibly empty) run, `_` matches
/// exactly one character. Implemented with the classic two-pointer
/// backtracking algorithm (linear in practice, no regex engine needed).
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    let (mut star_p, mut star_s) = (usize::MAX, 0usize);
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star_p = pi;
            star_s = si;
            pi += 1;
        } else if star_p != usize::MAX {
            // Backtrack: let the last % absorb one more character.
            star_s += 1;
            si = star_s;
            pi = star_p + 1;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod like_tests {
    use super::like_match;

    #[test]
    fn like_basics() {
        assert!(like_match("hello", "hello"));
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%o"));
        assert!(like_match("hello", "%ell%"));
        assert!(like_match("hello", "h_llo"));
        assert!(like_match("hello", "%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(!like_match("hello", "h_lo"));
        assert!(!like_match("hello", "hell"));
        assert!(!like_match("hello", "ello"));
    }

    #[test]
    fn like_multiple_wildcards_backtrack() {
        assert!(like_match("abcXdefXghi", "a%X%i"));
        assert!(like_match("aaab", "%ab"));
        assert!(!like_match("aaab", "%ba"));
        assert!(like_match("mississippi", "m%iss%ppi"));
        assert!(!like_match("mississippi", "m%iss%qpi"));
        assert!(like_match("Brand#12", "Brand#1_"));
    }
}
