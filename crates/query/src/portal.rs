//! The in-enclave query portal (§5.1).
//!
//! Entry point of client queries. Responsibilities, straight from the
//! paper:
//!
//! - **Query authorization**: each query arrives with a unique id and a
//!   MAC under the pre-exchanged channel key; the portal rejects MAC
//!   failures and replayed qids (otherwise the host could synthesize or
//!   replay mutations).
//! - **Result endorsement**: results are MACed (qid ‖ sequence number ‖
//!   result digest) so the client can check they come from the genuine
//!   enclave. Endorsement is *refused* when the deferred verifier has
//!   raised an alarm — no result is endorsed over tampered storage.
//! - **Rollback defense**: a strictly increasing sequence number is
//!   assigned per query and returned with the result; any state rollback
//!   of the enclave forces the counter backwards and the client observes
//!   a repeated sequence number (`Error::RollbackDetected`).

use crate::engine::{PlanOptions, QueryEngine, QueryResult};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::Arc;
use veridb_common::{Error, Result};
use veridb_enclave::{Enclave, Mac, MacKey};
use veridb_wrcm::VerifiedMemory;

/// A client-signed query.
#[derive(Debug, Clone)]
pub struct SignedQuery {
    /// Client-unique query id.
    pub qid: u64,
    /// The SQL text.
    pub sql: String,
    /// `MAC_k(qid ‖ sql)`.
    pub mac: Mac,
}

/// An enclave-endorsed result.
#[derive(Debug, Clone)]
pub struct EndorsedResult {
    /// Echo of the query id.
    pub qid: u64,
    /// The portal's sequence number for this query (rollback defense).
    pub sequence: u64,
    /// The query result.
    pub result: QueryResult,
    /// `MAC_k(qid ‖ sequence ‖ digest(result))`.
    pub mac: Mac,
}

/// Digest a result deterministically for endorsement.
pub(crate) fn result_digest(result: &QueryResult) -> [u8; 32] {
    let mut buf = Vec::new();
    for c in &result.columns {
        buf.extend_from_slice(c.as_bytes());
        buf.push(0);
    }
    for r in &result.rows {
        r.encode(&mut buf);
    }
    veridb_enclave::mac::sha256(&[b"result", &buf])
}

/// The in-enclave portal for one client channel.
pub struct QueryPortal {
    engine: Arc<QueryEngine>,
    mem: Arc<VerifiedMemory>,
    enclave: Enclave,
    key: MacKey,
    seen_qids: Mutex<HashSet<u64>>,
    /// Planning options applied to queries through this portal.
    pub options: PlanOptions,
}

impl QueryPortal {
    /// Open a portal over `engine`, deriving the channel MAC key from the
    /// enclave (clients obtain the matching key through the attestation
    /// handshake — see [`crate::client::Client::attest`]).
    pub fn new(engine: Arc<QueryEngine>, mem: Arc<VerifiedMemory>, channel: &str) -> Self {
        let enclave = mem.enclave().clone();
        let key = enclave.mac_key(&format!("channel-{channel}"));
        QueryPortal {
            engine,
            mem,
            enclave,
            key,
            seen_qids: Mutex::new(HashSet::new()),
            options: PlanOptions::default(),
        }
    }

    /// The channel MAC key, as handed to an attested client. Real SGX
    /// would run a key-exchange inside the attestation; the simulation
    /// hands the derived key to the holder of a verified quote.
    pub fn channel_key_for_attested_client(&self) -> MacKey {
        self.key.clone()
    }

    /// Submit an authenticated query; returns an endorsed result.
    pub fn submit(&self, q: &SignedQuery) -> Result<EndorsedResult> {
        // 1. Authorization: the MAC proves the client issued this exact
        //    query; the qid set rejects replays.
        if !self
            .key
            .verify(&[&q.qid.to_le_bytes(), q.sql.as_bytes()], &q.mac)
        {
            return Err(Error::AuthFailed(format!(
                "query {} failed MAC verification",
                q.qid
            )));
        }
        if !self.seen_qids.lock().insert(q.qid) {
            return Err(Error::ReplayDetected { qid: q.qid });
        }

        // Never execute over storage already known to be tampered.
        if let Some(alarm) = self.mem.poisoned() {
            return Err(alarm);
        }

        // 2. Execute inside the enclave (one ECall for the whole query —
        //    the engine and storage primitives are colocated, §3.3).
        let result = self
            .enclave
            .ecall(|| self.engine.execute_with(&q.sql, &self.options))?;

        // 3. Refuse endorsement if deferred verification has found
        //    tampering at any point.
        if let Some(alarm) = self.mem.poisoned() {
            return Err(alarm);
        }

        // 4. Endorse with the next sequence number.
        let sequence = self.enclave.next_timestamp();
        let digest = result_digest(&result);
        let mac = self
            .key
            .sign(&[&q.qid.to_le_bytes(), &sequence.to_le_bytes(), &digest]);
        Ok(EndorsedResult {
            qid: q.qid,
            sequence,
            result,
            mac,
        })
    }

    /// Run a full verification pass and report (used before endorsing
    /// critical results, or periodically by operations).
    pub fn verify_storage(&self) -> Result<veridb_wrcm::VerifyReport> {
        self.mem.verify_now()
    }

    /// The portal's engine (for tests and examples).
    pub fn engine(&self) -> &Arc<QueryEngine> {
        &self.engine
    }
}

impl std::fmt::Debug for QueryPortal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryPortal")
            .field("seen_qids", &self.seen_qids.lock().len())
            .finish_non_exhaustive()
    }
}
