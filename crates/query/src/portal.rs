//! The in-enclave query portal (§5.1).
//!
//! Entry point of client queries. Responsibilities, straight from the
//! paper:
//!
//! - **Query authorization**: each query arrives with a unique id and a
//!   MAC under the pre-exchanged channel key; the portal rejects MAC
//!   failures and replayed qids (otherwise the host could synthesize or
//!   replay mutations).
//! - **Result endorsement**: results are MACed (qid ‖ sequence number ‖
//!   result digest) so the client can check they come from the genuine
//!   enclave. Endorsement is *refused* when the deferred verifier has
//!   raised an alarm — no result is endorsed over tampered storage.
//! - **Rollback defense**: a strictly increasing sequence number is
//!   assigned per query and returned with the result; any state rollback
//!   of the enclave forces the counter backwards and the client observes
//!   a repeated sequence number (`Error::RollbackDetected`).

use crate::engine::{PlanOptions, QueryEngine, QueryResult};
use crate::replay::{ReplayWindow, DEFAULT_REPLAY_WINDOW};
use parking_lot::Mutex;
use std::sync::Arc;
use veridb_common::{Error, Result};
use veridb_enclave::{Enclave, Mac, MacKey};
use veridb_wrcm::VerifiedMemory;

/// A client-signed query.
#[derive(Debug, Clone)]
pub struct SignedQuery {
    /// Client-unique query id.
    pub qid: u64,
    /// The SQL text.
    pub sql: String,
    /// `MAC_k(qid ‖ sql)`.
    pub mac: Mac,
}

/// An enclave-endorsed result.
#[derive(Debug, Clone)]
pub struct EndorsedResult {
    /// Echo of the query id.
    pub qid: u64,
    /// The portal's sequence number for this query (rollback defense).
    pub sequence: u64,
    /// The query result.
    pub result: QueryResult,
    /// `MAC_k(qid ‖ sequence ‖ digest(result))`.
    pub mac: Mac,
}

/// Digest a result deterministically for endorsement.
pub(crate) fn result_digest(result: &QueryResult) -> [u8; 32] {
    let mut buf = Vec::new();
    for c in &result.columns {
        buf.extend_from_slice(c.as_bytes());
        buf.push(0);
    }
    for r in &result.rows {
        r.encode(&mut buf);
    }
    veridb_enclave::mac::sha256(&[b"result", &buf])
}

/// The in-enclave portal for one client channel.
pub struct QueryPortal {
    engine: Arc<QueryEngine>,
    mem: Arc<VerifiedMemory>,
    enclave: Enclave,
    key: MacKey,
    /// Bounded replay filter (low watermark + sliding window) — constant
    /// enclave memory no matter how many queries the channel carries.
    seen_qids: Mutex<ReplayWindow>,
    /// Planning options applied to queries through this portal.
    pub options: PlanOptions,
}

impl QueryPortal {
    /// Open a portal over `engine`, deriving the channel MAC key from the
    /// enclave (clients obtain the matching key through the attestation
    /// handshake — see [`crate::client::Client::attest`]).
    pub fn new(engine: Arc<QueryEngine>, mem: Arc<VerifiedMemory>, channel: &str) -> Self {
        Self::with_replay_window(engine, mem, channel, DEFAULT_REPLAY_WINDOW)
    }

    /// Open a portal with an explicit replay-window capacity. Concurrent
    /// remote clients with pipelined queries need a wider window than the
    /// default; `VeriDb::portal` passes `config.replay_window` through here.
    pub fn with_replay_window(
        engine: Arc<QueryEngine>,
        mem: Arc<VerifiedMemory>,
        channel: &str,
        replay_window: usize,
    ) -> Self {
        let enclave = mem.enclave().clone();
        let key = enclave.mac_key(&format!("channel-{channel}"));
        QueryPortal {
            engine,
            mem,
            enclave,
            key,
            seen_qids: Mutex::new(ReplayWindow::new(replay_window)),
            options: PlanOptions::default(),
        }
    }

    /// The channel MAC key, as handed to an attested client. Real SGX
    /// would run a key-exchange inside the attestation; the simulation
    /// hands the derived key to the holder of a verified quote.
    pub fn channel_key_for_attested_client(&self) -> MacKey {
        self.key.clone()
    }

    /// Submit an authenticated query; returns an endorsed result.
    ///
    /// The qid is consumed only when a result is endorsed: a query that
    /// fails transiently (a `PageFull`, a planner error, a poisoned-check
    /// refusal) leaves its qid unspent, so the client may retry with the
    /// original signature.
    pub fn submit(&self, q: &SignedQuery) -> Result<EndorsedResult> {
        // 1. Authorization: the MAC proves the client issued this exact
        //    query; the replay window rejects spent qids. Peek only — the
        //    qid is not consumed until endorsement (step 4).
        if !self
            .key
            .verify(&[&q.qid.to_le_bytes(), q.sql.as_bytes()], &q.mac)
        {
            return Err(Error::AuthFailed(format!(
                "query {} failed MAC verification",
                q.qid
            )));
        }
        if self.seen_qids.lock().contains(q.qid) {
            return Err(self.reject_replay(q.qid));
        }

        // Never execute over storage already known to be tampered.
        if let Some(alarm) = self.mem.poisoned() {
            return Err(alarm);
        }

        // 2. Execute inside the enclave (one ECall for the whole query —
        //    the engine and storage primitives are colocated, §3.3). An
        //    error here propagates with the qid still unspent.
        let result = self
            .enclave
            .ecall(|| self.engine.execute_with(&q.sql, &self.options))?;

        // 3. Refuse endorsement if deferred verification has found
        //    tampering at any point.
        if let Some(alarm) = self.mem.poisoned() {
            return Err(alarm);
        }

        // 4. Commit the qid now that a result will be endorsed. A
        //    concurrent duplicate submission of the same qid races here;
        //    exactly one wins the insert, the other is a replay.
        if !self.seen_qids.lock().insert(q.qid) {
            return Err(self.reject_replay(q.qid));
        }

        // 5. Endorse with the next sequence number.
        let sequence = self.enclave.next_timestamp();
        let digest = result_digest(&result);
        let mac = self
            .key
            .sign(&[&q.qid.to_le_bytes(), &sequence.to_le_bytes(), &digest]);
        Ok(EndorsedResult {
            qid: q.qid,
            sequence,
            result,
            mac,
        })
    }

    fn reject_replay(&self, qid: u64) -> Error {
        if let Some(m) = self.mem.metrics() {
            m.replays_rejected.inc();
        }
        Error::ReplayDetected { qid }
    }

    /// Run a full verification pass and report (used before endorsing
    /// critical results, or periodically by operations).
    pub fn verify_storage(&self) -> Result<veridb_wrcm::VerifyReport> {
        self.mem.verify_now()
    }

    /// The portal's engine (for tests and examples).
    pub fn engine(&self) -> &Arc<QueryEngine> {
        &self.engine
    }
}

impl std::fmt::Debug for QueryPortal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let seen = self.seen_qids.lock();
        f.debug_struct("QueryPortal")
            .field("replay_watermark", &seen.watermark())
            .field("tracked_qids", &seen.tracked())
            .finish_non_exhaustive()
    }
}
