//! Abstract syntax for the supported SQL subset.
//!
//! The subset covers everything the paper's evaluation runs — SPJA
//! queries (select-project-join-aggregate, §3.2) including TPC-H Q1/Q6/Q19
//! and the TPC-C transaction statements — plus the DDL/DML needed to
//! stand the schemas up.

use veridb_common::{ColumnType, Value};

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col TYPE [PRIMARY KEY] [CHAINED], …)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions: `(name, type, chained)`. The first column
        /// (or the one marked PRIMARY KEY, which must be first) is the
        /// primary key.
        columns: Vec<(String, ColumnType, bool)>,
    },
    /// `DROP TABLE name`.
    DropTable {
        /// Table name.
        name: String,
    },
    /// `INSERT INTO name VALUES (…), (…)`.
    Insert {
        /// Table name.
        table: String,
        /// One literal tuple per row.
        rows: Vec<Vec<Expr>>,
    },
    /// `UPDATE name SET col = expr, … [WHERE pred]`.
    Update {
        /// Table name.
        table: String,
        /// Assignments.
        sets: Vec<(String, Expr)>,
        /// Row filter.
        filter: Option<Expr>,
    },
    /// `DELETE FROM name [WHERE pred]`.
    Delete {
        /// Table name.
        table: String,
        /// Row filter.
        filter: Option<Expr>,
    },
    /// A `SELECT` query.
    Select(SelectStmt),
    /// `EXPLAIN SELECT …`: render the physical plan instead of running.
    Explain(SelectStmt),
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Select list.
    pub items: Vec<SelectItem>,
    /// FROM tables (comma-joined or explicit `JOIN … ON`).
    pub from: Vec<TableRef>,
    /// `ON` predicates of explicit joins, in join order.
    pub join_on: Vec<Expr>,
    /// WHERE predicate.
    pub filter: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate (over groups/aggregates).
    pub having: Option<Expr>,
    /// ORDER BY keys.
    pub order_by: Vec<(Expr, bool)>, // (expr, descending)
    /// LIMIT.
    pub limit: Option<u64>,
}

/// One entry of a select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Wildcard,
    /// An expression with an optional alias.
    Expr(Expr, Option<String>),
}

/// A table reference with an optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Table name.
    pub table: String,
    /// Alias (`FROM quote AS q`), defaulting to the table name.
    pub alias: String,
}

/// Scalar (non-aggregate) function kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFunc {
    /// `UPPER(s)`.
    Upper,
    /// `LOWER(s)`.
    Lower,
    /// `LENGTH(s)` (characters).
    Length,
    /// `ABS(x)`.
    Abs,
    /// `SUBSTR(s, start [, len])` — 1-based start, like SQL.
    Substr,
}

impl ScalarFunc {
    /// Parse a scalar function name.
    pub fn from_name(name: &str) -> Option<ScalarFunc> {
        match name.to_ascii_lowercase().as_str() {
            "upper" => Some(ScalarFunc::Upper),
            "lower" => Some(ScalarFunc::Lower),
            "length" => Some(ScalarFunc::Length),
            "abs" => Some(ScalarFunc::Abs),
            "substr" | "substring" => Some(ScalarFunc::Substr),
            _ => None,
        }
    }
}

/// Aggregate function kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` or `COUNT(expr)`.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)`.
    Avg,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
}

impl AggFunc {
    /// Parse an aggregate function name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        match name.to_ascii_lowercase().as_str() {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "avg" => Some(AggFunc::Avg),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            _ => None,
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinOp {
    /// True for comparison operators.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A column reference: optional qualifier + name (pre-resolution).
    Column {
        /// Table / alias qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// A resolved column (index into the operator's input row). Produced
    /// by the planner, never the parser.
    ColumnRef(usize),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary negation (`-x`).
    Neg(Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// `expr BETWEEN low AND high` (inclusive).
    Between {
        /// The tested expression.
        expr: Box<Expr>,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
        /// `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr IN (v1, v2, …)`.
    InList {
        /// The tested expression.
        expr: Box<Expr>,
        /// The candidate list.
        list: Vec<Expr>,
        /// `NOT IN`.
        negated: bool,
    },
    /// An aggregate call. Only valid in select lists / HAVING position.
    Agg {
        /// Function.
        func: AggFunc,
        /// Argument; `None` for `COUNT(*)`.
        arg: Option<Box<Expr>>,
    },
    /// A resolved aggregate output (index into the aggregate operator's
    /// output). Produced by the planner.
    AggRef(usize),
    /// `expr [NOT] LIKE pattern` (`%` = any run, `_` = any one char).
    Like {
        /// The tested expression.
        expr: Box<Expr>,
        /// The pattern expression (usually a literal).
        pattern: Box<Expr>,
        /// `NOT LIKE`.
        negated: bool,
    },
    /// A scalar function call.
    Func {
        /// Which function.
        func: ScalarFunc,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// An uncorrelated scalar subquery `(SELECT …)`; the planner lowers it
    /// to a literal before execution (§3.2's "nested queries" extension).
    Subquery(Box<SelectStmt>),
    /// `expr [NOT] IN (SELECT …)`; lowered to an IN-list by the planner.
    InSubquery {
        /// The tested expression.
        expr: Box<Expr>,
        /// The subquery producing the candidate set (one column).
        query: Box<SelectStmt>,
        /// `NOT IN`.
        negated: bool,
    },
}

impl Expr {
    /// Convenience: column without qualifier.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.to_owned(),
        }
    }

    /// Convenience: literal integer.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Value::Int(v))
    }

    /// Does this expression (transitively) contain an aggregate call?
    pub fn contains_agg(&self) -> bool {
        match self {
            Expr::Agg { .. } | Expr::AggRef(_) => true,
            Expr::Literal(_) | Expr::Column { .. } | Expr::ColumnRef(_) => false,
            Expr::Binary { left, right, .. } => left.contains_agg() || right.contains_agg(),
            Expr::Neg(e) | Expr::Not(e) => e.contains_agg(),
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_agg() || low.contains_agg() || high.contains_agg(),
            Expr::InList { expr, list, .. } => {
                expr.contains_agg() || list.iter().any(|e| e.contains_agg())
            }
            Expr::Like { expr, pattern, .. } => expr.contains_agg() || pattern.contains_agg(),
            Expr::Func { args, .. } => args.iter().any(|a| a.contains_agg()),
            // Subqueries are lowered before aggregate analysis; their
            // internals don't count as aggregates of the outer query.
            Expr::Subquery(_) => false,
            Expr::InSubquery { expr, .. } => expr.contains_agg(),
        }
    }

    /// Split a conjunction into its conjuncts.
    pub fn split_conjuncts(self) -> Vec<Expr> {
        match self {
            Expr::Binary {
                op: BinOp::And,
                left,
                right,
            } => {
                let mut out = left.split_conjuncts();
                out.extend(right.split_conjuncts());
                out
            }
            other => vec![other],
        }
    }

    /// Rebuild a conjunction from conjuncts (`None` for an empty list).
    pub fn conjoin(mut exprs: Vec<Expr>) -> Option<Expr> {
        let first = if exprs.is_empty() {
            return None;
        } else {
            exprs.remove(0)
        };
        Some(exprs.into_iter().fold(first, |acc, e| Expr::Binary {
            op: BinOp::And,
            left: Box::new(acc),
            right: Box::new(e),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_splitting_round_trips() {
        let e = Expr::Binary {
            op: BinOp::And,
            left: Box::new(Expr::Binary {
                op: BinOp::And,
                left: Box::new(Expr::col("a")),
                right: Box::new(Expr::col("b")),
            }),
            right: Box::new(Expr::col("c")),
        };
        let parts = e.clone().split_conjuncts();
        assert_eq!(parts.len(), 3);
        let back = Expr::conjoin(parts).unwrap();
        // Rebuild is left-assoc; splitting again yields the same parts.
        assert_eq!(back.split_conjuncts().len(), 3);
        assert_eq!(Expr::conjoin(vec![]), None);
    }

    #[test]
    fn aggregate_detection() {
        let agg = Expr::Agg {
            func: AggFunc::Sum,
            arg: Some(Box::new(Expr::col("x"))),
        };
        assert!(agg.contains_agg());
        let nested = Expr::Binary {
            op: BinOp::Mul,
            left: Box::new(agg),
            right: Box::new(Expr::int(2)),
        };
        assert!(nested.contains_agg());
        assert!(!Expr::col("x").contains_agg());
    }

    #[test]
    fn agg_func_names() {
        assert_eq!(AggFunc::from_name("SUM"), Some(AggFunc::Sum));
        assert_eq!(AggFunc::from_name("count"), Some(AggFunc::Count));
        assert_eq!(AggFunc::from_name("median"), None);
    }
}
