//! The parse → plan → execute entry point.

use crate::ast::{SelectItem, SelectStmt, Statement, TableRef};
use crate::exec;
use crate::expr::eval;
use crate::parser::parse;
use crate::planner::{plan_select, PlannedQuery};
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;
use veridb_common::{ColumnDef, Error, Result, Row, Schema, Value};
use veridb_storage::Catalog;

/// Statement kind tags for durability-log records. The values are the
/// wire format of `veridb-log`'s record codec (that crate re-declares
/// them as `KIND_*`; the two lists are kept in sync by the round-trip
/// tests in `veridb` core).
pub mod stmt_kind {
    /// `CREATE TABLE`.
    pub const CREATE_TABLE: u8 = 1;
    /// `DROP TABLE`.
    pub const DROP_TABLE: u8 = 2;
    /// `INSERT`.
    pub const INSERT: u8 = 3;
    /// `UPDATE`.
    pub const UPDATE: u8 = 4;
    /// `DELETE`.
    pub const DELETE: u8 = 5;
}

/// Where the engine announces protected writes so they survive a crash.
///
/// The engine calls [`append`](DurabilitySink::append) *before* applying
/// a mutation, with its commit-order lock held — so the log's record
/// order is exactly the apply order — and expects the sink to only
/// buffer (no I/O under the lock). After the lock is released the engine
/// calls [`wait_durable`](DurabilitySink::wait_durable) and does not
/// report success to the client until the record is on stable storage
/// (group commit happens inside the sink).
///
/// Write-ahead discipline: a statement that *fails* during apply stays
/// in the log. Replay re-executes it and deterministically re-fails at
/// the same point, reproducing whatever partial effects the original
/// had — recovered state always equals pre-crash state for every
/// *acknowledged* statement, and errored statements were never
/// acknowledged.
pub trait DurabilitySink: Send + Sync {
    /// Buffer one statement; returns a ticket to wait on. Called with
    /// the commit-order lock held — must not block on I/O.
    fn append(&self, kind: u8, sql: &str) -> Result<u64>;
    /// Block until `ticket` is on stable storage.
    fn wait_durable(&self, ticket: u64) -> Result<()>;
}

/// The log-record kind for `stmt`, or `None` for reads (SELECT/EXPLAIN).
fn statement_kind(stmt: &Statement) -> Option<u8> {
    Some(match stmt {
        Statement::CreateTable { .. } => stmt_kind::CREATE_TABLE,
        Statement::DropTable { .. } => stmt_kind::DROP_TABLE,
        Statement::Insert { .. } => stmt_kind::INSERT,
        Statement::Update { .. } => stmt_kind::UPDATE,
        Statement::Delete { .. } => stmt_kind::DELETE,
        Statement::Select(_) | Statement::Explain(_) => return None,
    })
}

/// Join-algorithm preference, used by the Figure 12 Q19 experiment to
/// compare the MergeJoin and NestedLoopJoin plans the paper discusses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PreferredJoin {
    /// Planner decides: index nested-loop when the inner side has a chain
    /// on the join column, merge when inputs arrive sorted, hash otherwise.
    #[default]
    Auto,
    /// Force hash joins.
    Hash,
    /// Force merge joins (sorting inputs if needed).
    Merge,
    /// Force nested-loop joins (index-driven when possible, block
    /// nested-loop with a materialized inner otherwise).
    NestedLoop,
}

/// Planner options.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlanOptions {
    /// Join algorithm preference.
    pub prefer_join: PreferredJoin,
    /// Per-query degree of parallelism for morsel-driven execution —
    /// a cap on how many of the process-wide scheduler pool's workers
    /// one parallel region may occupy, not a thread count (no threads
    /// are created per query). `0` (the default) inherits the
    /// engine-level setting ([`QueryEngine::set_workers`]); `1` forces
    /// a serial plan with no Exchange/Gather nodes.
    pub workers: usize,
}

/// The outcome of a query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Row>,
}

impl QueryResult {
    fn affected(n: u64) -> QueryResult {
        QueryResult {
            columns: vec!["rows_affected".into()],
            rows: vec![Row::new(vec![Value::Int(n as i64)])],
        }
    }

    /// Render as an aligned text table (examples / debugging).
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.values().iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        out.push('\n');
        for (i, _) in self.columns.iter().enumerate() {
            out.push_str(&format!("{}  ", "-".repeat(widths[i])));
        }
        out.push('\n');
        for row in rendered {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// The in-enclave SQL engine bound to one catalog.
pub struct QueryEngine {
    catalog: Arc<Catalog>,
    /// Spill threshold for large intermediate state (bytes; 0 = disabled).
    /// When set, materialization points overflow into verified storage
    /// (§5.4) instead of growing enclave-resident buffers.
    spill_threshold: std::sync::atomic::AtomicUsize,
    /// Default per-query degree of parallelism (DOP cap on the shared
    /// scheduler pool), used when [`PlanOptions::workers`] is `0`.
    workers: std::sync::atomic::AtomicUsize,
    /// Serializes mutations (and their log appends): DML was already
    /// effectively serial through the storage layer's per-table locks;
    /// this lock pins down a *total* order so the durability log's
    /// record order provably matches the apply order.
    commit_order: Mutex<()>,
    /// Durability sink, if the database is running durable.
    sink: RwLock<Option<Arc<dyn DurabilitySink>>>,
}

impl QueryEngine {
    /// Wrap a catalog.
    pub fn new(catalog: Arc<Catalog>) -> Self {
        QueryEngine {
            catalog,
            spill_threshold: std::sync::atomic::AtomicUsize::new(0),
            workers: std::sync::atomic::AtomicUsize::new(1),
            commit_order: Mutex::new(()),
            sink: RwLock::new(None),
        }
    }

    /// Install (or remove, with `None`) the durability sink. Recovery
    /// installs it only *after* replay, so replayed statements are not
    /// re-logged.
    pub fn set_sink(&self, sink: Option<Arc<dyn DurabilitySink>>) {
        *self.sink.write() = sink;
    }

    /// Run `f` with the engine quiesced: the commit-order lock is held,
    /// so no mutation can start, finish, or append to the durability log
    /// while `f` observes the database (sealing a snapshot, shipping a
    /// log range whose tip must stay put, …). Reads are unaffected.
    pub fn quiesce<T>(&self, f: impl FnOnce() -> Result<T>) -> Result<T> {
        let _commit = self.commit_order.lock();
        f()
    }

    /// Enable (or disable with `None`) spilling of large intermediate
    /// state into verified storage.
    pub fn set_spill_threshold(&self, bytes: Option<usize>) {
        self.spill_threshold
            .store(bytes.unwrap_or(0), std::sync::atomic::Ordering::Relaxed);
    }

    /// Set the default per-query degree of parallelism (clamped to at
    /// least 1). This caps how many shared-pool workers one query's
    /// parallel regions use; it no longer sizes any private pool.
    /// Queries pick this up unless their [`PlanOptions::workers`]
    /// overrides it.
    pub fn set_workers(&self, workers: usize) {
        self.workers
            .store(workers.max(1), std::sync::atomic::Ordering::Relaxed);
    }

    /// `opts` with `workers == 0` resolved to the engine default.
    fn resolve_opts(&self, opts: &PlanOptions) -> PlanOptions {
        let mut o = *opts;
        if o.workers == 0 {
            o.workers = self.workers.load(std::sync::atomic::Ordering::Relaxed);
        }
        o
    }

    fn exec_context(&self, workers: usize) -> crate::spill::ExecContext {
        let t = self
            .spill_threshold
            .load(std::sync::atomic::Ordering::Relaxed);
        let mut ctx = if t == 0 {
            crate::spill::ExecContext {
                metrics: self.catalog.memory().metrics().cloned(),
                ..Default::default()
            }
        } else {
            crate::spill::ExecContext::with_spill(Arc::clone(self.catalog.memory()), t)
        };
        ctx.workers = workers;
        ctx
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// Execute one SQL statement with default planning options.
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        self.execute_with(sql, &PlanOptions::default())
    }

    /// Execute one SQL statement.
    pub fn execute_with(&self, sql: &str, opts: &PlanOptions) -> Result<QueryResult> {
        if let Some(m) = self.catalog.memory().metrics() {
            m.queries_executed.inc();
        }
        let opts = &self.resolve_opts(opts);
        let stmt = parse(sql)?;
        let Some(kind) = statement_kind(&stmt) else {
            // Reads never take the commit-order lock.
            return self.apply(stmt, opts);
        };
        let (sink, ticket, applied) = {
            let _commit = self.commit_order.lock();
            let sink = self.sink.read().clone();
            let ticket = match &sink {
                Some(s) => Some(s.append(kind, sql)?),
                None => None,
            };
            (sink, ticket, self.apply(stmt, opts))
        };
        let result = applied?;
        if let (Some(s), Some(t)) = (sink, ticket) {
            s.wait_durable(t)?;
        }
        Ok(result)
    }

    /// Execute one statement for log replay: no durability-sink append
    /// (the statement came *from* the log) and no commit-order lock (the
    /// caller already holds it via [`quiesce`](Self::quiesce), or is
    /// single-threaded recovery running before any client can connect).
    pub fn execute_replay(&self, sql: &str) -> Result<QueryResult> {
        let opts = &self.resolve_opts(&PlanOptions::default());
        self.apply(parse(sql)?, opts)
    }

    /// Apply one parsed statement against the catalog. Mutations must be
    /// called with the commit-order lock held (see `execute_with`).
    fn apply(&self, stmt: Statement, opts: &PlanOptions) -> Result<QueryResult> {
        match stmt {
            Statement::CreateTable { name, columns } => {
                let defs: Vec<ColumnDef> = columns
                    .into_iter()
                    .map(|(n, ty, chained)| {
                        let mut d = ColumnDef::new(&n, ty);
                        d.chained = chained;
                        d
                    })
                    .collect();
                self.catalog.create_table(&name, Schema::new(defs)?)?;
                Ok(QueryResult::affected(0))
            }
            Statement::DropTable { name } => {
                self.catalog.drop_table(&name)?;
                Ok(QueryResult::affected(0))
            }
            Statement::Insert { table, rows } => {
                let t = self.catalog.table(&table)?;
                let empty = Row::default();
                let mut n = 0;
                for exprs in rows {
                    let vals: Vec<Value> = exprs
                        .iter()
                        .map(|e| eval(e, &empty))
                        .collect::<Result<_>>()?;
                    t.insert(Row::new(vals))?;
                    n += 1;
                }
                Ok(QueryResult::affected(n))
            }
            Statement::Update {
                table,
                sets,
                filter,
            } => {
                let t = self.catalog.table(&table)?;
                let pk_col = t.schema().primary_key();
                let matching = self.matching_rows(&table, filter, opts)?;
                // Resolve SET expressions against the table's own columns.
                let set_cols: Vec<(usize, crate::ast::Expr)> = sets
                    .into_iter()
                    .map(|(c, e)| -> Result<(usize, crate::ast::Expr)> {
                        Ok((t.schema().index_of(&c)?, resolve_local(&t, e)?))
                    })
                    .collect::<Result<_>>()?;
                let mut n = 0;
                for row in matching {
                    let pk = row[pk_col].clone();
                    let mut failed = None;
                    t.update_with(&pk, |r| {
                        let mut vals = r.values().to_vec();
                        for (ci, e) in &set_cols {
                            match eval(e, r) {
                                Ok(v) => vals[*ci] = v,
                                Err(e) => {
                                    failed = Some(e);
                                    return;
                                }
                            }
                        }
                        *r = Row::new(vals);
                    })?;
                    if let Some(e) = failed {
                        return Err(e);
                    }
                    n += 1;
                }
                Ok(QueryResult::affected(n))
            }
            Statement::Delete { table, filter } => {
                let t = self.catalog.table(&table)?;
                let pk_col = t.schema().primary_key();
                let matching = self.matching_rows(&table, filter, opts)?;
                let mut n = 0;
                for row in matching {
                    t.delete(&row[pk_col])?;
                    n += 1;
                }
                Ok(QueryResult::affected(n))
            }
            Statement::Select(stmt) => {
                let PlannedQuery { plan, columns } = plan_select(&self.catalog, stmt, opts)?;
                let rows = exec::run_ctx(&plan, &self.exec_context(opts.workers))?;
                Ok(QueryResult { columns, rows })
            }
            Statement::Explain(stmt) => {
                let PlannedQuery { plan, .. } = plan_select(&self.catalog, stmt, opts)?;
                let rows = plan
                    .explain()
                    .lines()
                    .map(|l| Row::new(vec![Value::Str(l.to_owned())]))
                    .collect();
                Ok(QueryResult {
                    columns: vec!["plan".into()],
                    rows,
                })
            }
        }
    }

    /// Render a query's physical plan (EXPLAIN).
    pub fn explain(&self, sql: &str, opts: &PlanOptions) -> Result<String> {
        let opts = &self.resolve_opts(opts);
        match parse(sql)? {
            Statement::Select(stmt) => Ok(plan_select(&self.catalog, stmt, opts)?.plan.explain()),
            other => Err(Error::Plan(format!("cannot EXPLAIN {other:?}"))),
        }
    }

    /// Rows of `table` matching `filter`, fetched through the verified
    /// access paths (DML shares the read path's planning).
    fn matching_rows(
        &self,
        table: &str,
        filter: Option<crate::ast::Expr>,
        opts: &PlanOptions,
    ) -> Result<Vec<Row>> {
        let stmt = SelectStmt {
            distinct: false,
            items: vec![SelectItem::Wildcard],
            from: vec![TableRef {
                table: table.to_owned(),
                alias: table.to_owned(),
            }],
            join_on: vec![],
            filter,
            group_by: vec![],
            having: None,
            order_by: vec![],
            limit: None,
        };
        let PlannedQuery { plan, .. } = plan_select(&self.catalog, stmt, opts)?;
        exec::run_ctx(&plan, &self.exec_context(opts.workers))
    }
}

/// Resolve an expression's columns against one table's local schema.
fn resolve_local(
    table: &Arc<veridb_storage::Table>,
    e: crate::ast::Expr,
) -> Result<crate::ast::Expr> {
    use crate::ast::Expr;
    Ok(match e {
        Expr::Column { name, .. } => Expr::ColumnRef(table.schema().index_of(&name)?),
        Expr::Literal(_) | Expr::ColumnRef(_) | Expr::AggRef(_) => e,
        Expr::Binary { op, left, right } => Expr::Binary {
            op,
            left: Box::new(resolve_local(table, *left)?),
            right: Box::new(resolve_local(table, *right)?),
        },
        Expr::Neg(x) => Expr::Neg(Box::new(resolve_local(table, *x)?)),
        Expr::Not(x) => Expr::Not(Box::new(resolve_local(table, *x)?)),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(resolve_local(table, *expr)?),
            low: Box::new(resolve_local(table, *low)?),
            high: Box::new(resolve_local(table, *high)?),
            negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(resolve_local(table, *expr)?),
            list: list
                .into_iter()
                .map(|x| resolve_local(table, x))
                .collect::<Result<_>>()?,
            negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(resolve_local(table, *expr)?),
            pattern: Box::new(resolve_local(table, *pattern)?),
            negated,
        },
        Expr::Func { func, args } => Expr::Func {
            func,
            args: args
                .into_iter()
                .map(|a| resolve_local(table, a))
                .collect::<Result<_>>()?,
        },
        Expr::Agg { .. } => return Err(Error::Plan("aggregates are not allowed in SET".into())),
        Expr::Subquery(_) | Expr::InSubquery { .. } => {
            return Err(Error::Plan("subqueries are not allowed in SET".into()))
        }
    })
}
