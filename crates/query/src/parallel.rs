//! Morsel-driven parallel execution of Exchange/Gather regions.
//!
//! A parallel region (the subtree under [`PhysicalPlan::Exchange`]) is a
//! scan-driven pipeline. The driving verified scan's key range is split
//! into **morsels** — contiguous sub-ranges sampled from the untrusted
//! index ([`Table::morsel_ranges`]) that tile the original range exactly —
//! and a fixed pool of worker threads claims morsels from a shared atomic
//! counter, instantiating the region's operator tree once per morsel.
//!
//! Verification is unchanged: each worker's leaf scan is an ordinary
//! [`VerifiedScan`](veridb_storage::VerifiedScan) over its sub-range, so
//! conditions 1–3 (§5.2) hold per morsel, and completeness of the whole
//! range follows from the tiling — the untrusted split points can skew
//! load balance but never correctness. Workers read through their own
//! batched cursors against the already-thread-safe wrcm partitions, so
//! RS/WS accounting stays balanced exactly as in the serial path.
//!
//! Determinism: the number of morsels is fixed by [`MORSEL_TARGET`]
//! (independent of the pool size) and results are merged in morsel-index
//! order, which equals the serial scan's chain order. Row order is thus
//! identical to serial execution for any worker count; float aggregates
//! are bit-identical across worker counts ≥ 2 (partial-sum association is
//! fixed by the tiling, not by scheduling).

use crate::ast::{AggFunc, Expr};
use crate::exec::{open_ctx, GroupedPartial, Operator};
use crate::planner::{AccessPath, PhysicalPlan};
use crate::spill::ExecContext;
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use veridb_common::{Result, Row, Value};
use veridb_storage::Table;

/// Morsel count a parallel region aims for, independent of the worker
/// pool size. Keeping the tiling fixed makes results (including float
/// partial-sum rounding) identical for every pool size, and a few dozen
/// morsels give enough scheduling slack to absorb skewed ranges.
pub(crate) const MORSEL_TARGET: usize = 32;

/// The region's driving verified scan: the table plus the chain and key
/// range that morsels partition.
type DriverScan<'a> = (&'a Arc<Table>, usize, Bound<Value>, Bound<Value>);

/// Found by walking the partitionable spine (Filter/Project inputs,
/// IndexNlJoin outer).
fn driver_scan(plan: &PhysicalPlan) -> Option<DriverScan<'_>> {
    match plan {
        PhysicalPlan::TableScan { table, access, .. } => match access {
            AccessPath::Full => Some((table, 0, Bound::Unbounded, Bound::Unbounded)),
            AccessPath::Range { chain, lo, hi } => Some((table, *chain, lo.clone(), hi.clone())),
            AccessPath::Point { .. } => None,
        },
        PhysicalPlan::Filter { input, .. } | PhysicalPlan::Project { input, .. } => {
            driver_scan(input)
        }
        PhysicalPlan::IndexNlJoin { outer, .. } => driver_scan(outer),
        _ => None,
    }
}

/// `plan` with its driving scan's access path narrowed to `[lo, hi]`.
/// Only the spine nodes are rebuilt; everything else is cloned.
fn with_driver_range(plan: &PhysicalPlan, lo: &Bound<Value>, hi: &Bound<Value>) -> PhysicalPlan {
    match plan {
        PhysicalPlan::TableScan {
            table,
            access,
            residual,
        } => {
            let chain = match access {
                AccessPath::Full => 0,
                AccessPath::Range { chain, .. } => *chain,
                // Point drivers are never morselized (driver_scan skips
                // them), so reaching here means "leave untouched".
                AccessPath::Point { .. } => return plan.clone(),
            };
            PhysicalPlan::TableScan {
                table: Arc::clone(table),
                access: AccessPath::Range {
                    chain,
                    lo: lo.clone(),
                    hi: hi.clone(),
                },
                residual: residual.clone(),
            }
        }
        PhysicalPlan::Filter { input, pred } => PhysicalPlan::Filter {
            input: Box::new(with_driver_range(input, lo, hi)),
            pred: pred.clone(),
        },
        PhysicalPlan::Project {
            input,
            exprs,
            names,
        } => PhysicalPlan::Project {
            input: Box::new(with_driver_range(input, lo, hi)),
            exprs: exprs.clone(),
            names: names.clone(),
        },
        PhysicalPlan::IndexNlJoin {
            outer,
            inner,
            inner_chain,
            outer_key,
            residual,
        } => PhysicalPlan::IndexNlJoin {
            outer: Box::new(with_driver_range(outer, lo, hi)),
            inner: Arc::clone(inner),
            inner_chain: *inner_chain,
            outer_key: *outer_key,
            residual: residual.clone(),
        },
        other => other.clone(),
    }
}

/// One plan instance per morsel, in chain (morsel-index) order. Falls back
/// to a single instance of the whole region when the driving scan cannot
/// be found or the table is too small to split.
fn morsel_plans(region: &PhysicalPlan) -> Vec<PhysicalPlan> {
    let Some((table, chain, lo, hi)) = driver_scan(region) else {
        return vec![region.clone()];
    };
    let ranges = table.morsel_ranges(chain, &lo, &hi, MORSEL_TARGET);
    if ranges.len() <= 1 {
        return vec![region.clone()];
    }
    ranges
        .iter()
        .map(|(l, h)| with_driver_range(region, l, h))
        .collect()
}

/// Execute one closure per morsel plan on a pool of `pool` threads and
/// return the per-morsel results in morsel-index order.
///
/// The closure returns `(result, rows_processed)`; row counts feed the
/// per-worker observability counters. With one morsel or one worker the
/// plans run inline on the calling thread (no pool, no extra metrics).
/// The first error in morsel-index order aborts the region; remaining
/// workers stop claiming new morsels once any error is recorded.
fn run_morsels<T, F>(
    plans: &[PhysicalPlan],
    pool: usize,
    ctx: &ExecContext,
    work: F,
) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(&PhysicalPlan, &ExecContext) -> Result<(T, u64)> + Sync,
{
    if plans.len() <= 1 || pool <= 1 {
        let mut out = Vec::with_capacity(plans.len());
        for p in plans {
            out.push(work(p, ctx)?.0);
        }
        return Ok(out);
    }
    if let Some(m) = &ctx.metrics {
        m.parallel_regions.inc();
        m.morsels_dispatched.add(plans.len() as u64);
    }
    let threads = pool.min(plans.len());
    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let mut slots: Vec<Option<Result<T>>> = Vec::new();
    slots.resize_with(plans.len(), || None);
    let collected: Vec<Vec<(usize, Result<T>)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let next = &next;
                let failed = &failed;
                let work = &work;
                s.spawn(move || {
                    let started = std::time::Instant::now();
                    let mut rows_done: u64 = 0;
                    let mut local: Vec<(usize, Result<T>)> = Vec::new();
                    loop {
                        if failed.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= plans.len() {
                            break;
                        }
                        if let Some(m) = &ctx.metrics {
                            m.worker_morsels(w).inc();
                        }
                        match work(&plans[i], ctx) {
                            Ok((t, n)) => {
                                rows_done += n;
                                local.push((i, Ok(t)));
                            }
                            Err(e) => {
                                failed.store(true, Ordering::Relaxed);
                                local.push((i, Err(e)));
                            }
                        }
                    }
                    if let Some(m) = &ctx.metrics {
                        m.worker_rows(w).add(rows_done);
                        m.worker_busy_ns(w).add(started.elapsed().as_nanos() as u64);
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("morsel worker panicked"))
            .collect()
    });
    for (i, r) in collected.into_iter().flatten() {
        slots[i] = Some(r);
    }
    let mut out = Vec::with_capacity(plans.len());
    for slot in slots {
        match slot {
            Some(Ok(t)) => out.push(t),
            // Lowest-indexed recorded error wins. Morsels are claimed in
            // index order, so every slot below an error is filled; an
            // empty slot can only follow a recorded error, which this
            // scan returns first.
            Some(Err(e)) => return Err(e),
            None => unreachable!("unclaimed morsel implies an earlier recorded error"),
        }
    }
    Ok(out)
}

/// Merge operator over a parallel region: materializes every morsel's
/// output via the worker pool on first `next()`, then streams the rows in
/// morsel-index order (= the serial scan's row order).
pub(crate) struct GatherOp {
    region: PhysicalPlan,
    /// Pool size recorded in the plan's Exchange node.
    planned_workers: usize,
    ctx: ExecContext,
    output: Option<std::vec::IntoIter<Row>>,
}

impl GatherOp {
    pub(crate) fn new(region: &PhysicalPlan, planned_workers: usize, ctx: &ExecContext) -> Self {
        GatherOp {
            region: region.clone(),
            planned_workers,
            ctx: ctx.clone(),
            output: None,
        }
    }

    fn pool(&self) -> usize {
        let p = if self.ctx.workers > 0 {
            self.ctx.workers
        } else {
            self.planned_workers
        };
        p.max(1)
    }
}

impl Operator for GatherOp {
    fn next(&mut self) -> Result<Option<Row>> {
        if self.output.is_none() {
            let plans = morsel_plans(&self.region);
            let per_morsel = run_morsels(&plans, self.pool(), &self.ctx, |p, c| {
                let mut op = open_ctx(p, c)?;
                let mut rows = Vec::new();
                while let Some(r) = op.next()? {
                    rows.push(r);
                }
                let n = rows.len() as u64;
                Ok((rows, n))
            })?;
            let rows: Vec<Row> = per_morsel.into_iter().flatten().collect();
            self.output = Some(rows.into_iter());
        }
        Ok(self.output.as_mut().expect("set above").next())
    }
}

/// Counts rows an inner operator produces (for per-worker metrics).
struct CountingOp<'a> {
    inner: Box<dyn Operator>,
    n: &'a mut u64,
}

impl Operator for CountingOp<'_> {
    fn next(&mut self) -> Result<Option<Row>> {
        let r = self.inner.next()?;
        if r.is_some() {
            *self.n += 1;
        }
        Ok(r)
    }
}

/// Parallel grouped aggregation: each morsel accumulates a private
/// [`GroupedPartial`] (hash states + first-seen group order); the partials
/// are merged at the pool barrier in morsel order, reproducing the serial
/// executor's group order and (for a fixed tiling) its float rounding.
/// Rows never funnel through a single stream before being aggregated.
pub(crate) struct ParallelAggregateOp {
    region: PhysicalPlan,
    planned_workers: usize,
    group: Vec<Expr>,
    aggs: Vec<(AggFunc, Option<Expr>)>,
    ctx: ExecContext,
    output: Option<std::vec::IntoIter<Row>>,
}

impl ParallelAggregateOp {
    pub(crate) fn new(
        region: &PhysicalPlan,
        planned_workers: usize,
        group: Vec<Expr>,
        aggs: Vec<(AggFunc, Option<Expr>)>,
        ctx: &ExecContext,
    ) -> Self {
        ParallelAggregateOp {
            region: region.clone(),
            planned_workers,
            group,
            aggs,
            ctx: ctx.clone(),
            output: None,
        }
    }

    fn pool(&self) -> usize {
        let p = if self.ctx.workers > 0 {
            self.ctx.workers
        } else {
            self.planned_workers
        };
        p.max(1)
    }

    fn materialize(&self) -> Result<Vec<Row>> {
        let plans = morsel_plans(&self.region);
        let group = &self.group;
        let aggs = &self.aggs;
        let partials = run_morsels(&plans, self.pool(), &self.ctx, |p, c| {
            let mut n: u64 = 0;
            let mut input = CountingOp {
                inner: open_ctx(p, c)?,
                n: &mut n,
            };
            let mut partial = GroupedPartial::default();
            partial.accumulate(&mut input, group, aggs)?;
            Ok((partial, n))
        })?;
        let mut merged = GroupedPartial::default();
        for p in partials {
            merged.merge(p)?;
        }
        merged.finish(group, aggs)
    }
}

impl Operator for ParallelAggregateOp {
    fn next(&mut self) -> Result<Option<Row>> {
        if self.output.is_none() {
            self.output = Some(self.materialize()?.into_iter());
        }
        Ok(self.output.as_mut().expect("set above").next())
    }
}
