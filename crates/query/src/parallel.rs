//! Morsel-driven parallel execution of Exchange/Gather regions, the
//! partitioned hash join, and the parallel sort tail.
//!
//! A parallel region (the subtree under [`PhysicalPlan::Exchange`]) is a
//! scan-driven pipeline. The driving verified scan's key range is split
//! into **morsels** — contiguous sub-ranges sampled from the untrusted
//! index ([`Table::morsel_ranges`]) that tile the original range exactly —
//! and submitted as one **job** to the process-wide scheduler pool
//! ([`veridb_common::sched`]): morsel indices are seeded round-robin
//! across per-job lanes; an attached pool worker pops the front of its
//! own lane and, when empty, steals from the back of a victim's. Steals
//! are counted per lane (`query.worker*.steals`), so a skewed tiling
//! shows up in `.stats` as steal traffic instead of idle workers. The
//! pool is shared by every concurrent query in the process — its fixed
//! worker set bounds total threads, and the per-job `dop` cap (the
//! `--workers` knob) decides how much of it one query may occupy, so a
//! lone query gets the whole pool while many queries share it without
//! oversubscription. Workers finishing one query's region migrate to
//! another's (`query.cross_job_steals`), and scheduler admission latency
//! is visible as `query.sched_wait_us`.
//!
//! Verification is unchanged: each worker's leaf scan is an ordinary
//! [`VerifiedScan`](veridb_storage::VerifiedScan) over its sub-range, so
//! conditions 1–3 (§5.2) hold per morsel, and completeness of the whole
//! range follows from the tiling — the untrusted split points can skew
//! load balance but never correctness. Workers read through their own
//! batched cursors against the already-thread-safe wrcm partitions, so
//! RS/WS accounting stays balanced exactly as in the serial path.
//!
//! Determinism: the number of morsels is fixed by [`MORSEL_TARGET`]
//! (independent of the pool size) and results are merged in morsel-index
//! order, which equals the serial scan's chain order. Scheduling — which
//! worker runs which morsel, in what real-time order — never affects the
//! merge order, so work stealing preserves the guarantee: row order is
//! identical to serial execution for any worker count, and float
//! aggregates are bit-identical across worker counts ≥ 2 (partial-sum
//! association is fixed by the tiling, not by scheduling).
//!
//! The same scheduler backs two post-scan parallel operators:
//!
//! - [`PartitionedJoinOp`]: build-side morsels emit partition-hashed row
//!   buckets; buckets are concatenated in morsel order per partition (so
//!   every key's row list preserves the serial build's insertion order),
//!   the per-partition hash tables are built concurrently, and the probe
//!   side runs in parallel with outputs merged in morsel/chunk order —
//!   byte-identical to the serial [`HashJoin`](PhysicalPlan::HashJoin).
//! - [`parallel_sort`]: contiguous input chunks are key-precomputed and
//!   stably sorted as independent runs (spill-capable via
//!   [`SpilledRows`]), then merged through a tournament tree whose ties
//!   break on run index — reproducing a global stable sort exactly.

use crate::ast::{AggFunc, Expr};
use crate::exec::{open_ctx, GroupedPartial, Operator};
use crate::expr::{eval, passes};
use crate::planner::{partitionable, AccessPath, PhysicalPlan};
use crate::spill::{ExecContext, SpilledRows};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use veridb_common::obs::Metrics;
use veridb_common::{sched, Result, Row, Value};
use veridb_storage::Table;

/// Morsel count a parallel region aims for, independent of the worker
/// pool size. Keeping the tiling fixed makes results (including float
/// partial-sum rounding) identical for every pool size. The target is
/// deliberately several× the maximum pool size: finer morsels give the
/// work-stealing scheduler slack to rebalance skewed ranges (the
/// 256-row floor in [`Table::morsel_ranges`] still bounds the count for
/// small tables).
pub(crate) const MORSEL_TARGET: usize = 64;

/// Number of hash partitions a [`PartitionedJoinOp`] build fans into.
/// Fixed (power of two) so the partitioning is independent of the pool
/// size; partitions only group build rows into independently-buildable
/// tables and never affect output order.
pub(crate) const JOIN_PARTITIONS: usize = 32;

/// Probe-side chunk size when the probe input is not morsel-partitionable
/// (e.g. the output of a nested join) and is probed from a materialized
/// buffer instead. Chunk boundaries cannot affect the output: the probe
/// is a pure per-row map and chunks are concatenated in input order.
const PROBE_CHUNK_ROWS: usize = 1024;

/// Below this many rows a sort stays on the serial single-`sort_by` path
/// — run setup and merge bookkeeping would cost more than they save.
pub(crate) const PARALLEL_SORT_MIN_ROWS: usize = 1024;

/// The region's driving verified scan: the table plus the chain and key
/// range that morsels partition.
type DriverScan<'a> = (&'a Arc<Table>, usize, Bound<Value>, Bound<Value>);

/// Found by walking the partitionable spine (Filter/Project inputs,
/// IndexNlJoin outer).
fn driver_scan(plan: &PhysicalPlan) -> Option<DriverScan<'_>> {
    match plan {
        PhysicalPlan::TableScan { table, access, .. } => match access {
            AccessPath::Full => Some((table, 0, Bound::Unbounded, Bound::Unbounded)),
            AccessPath::Range { chain, lo, hi } => Some((table, *chain, lo.clone(), hi.clone())),
            AccessPath::Point { .. } => None,
        },
        PhysicalPlan::Filter { input, .. } | PhysicalPlan::Project { input, .. } => {
            driver_scan(input)
        }
        PhysicalPlan::IndexNlJoin { outer, .. } => driver_scan(outer),
        _ => None,
    }
}

/// `plan` with its driving scan's access path narrowed to `[lo, hi]`.
/// Only the spine nodes are rebuilt; everything else is cloned.
fn with_driver_range(plan: &PhysicalPlan, lo: &Bound<Value>, hi: &Bound<Value>) -> PhysicalPlan {
    match plan {
        PhysicalPlan::TableScan {
            table,
            access,
            residual,
        } => {
            let chain = match access {
                AccessPath::Full => 0,
                AccessPath::Range { chain, .. } => *chain,
                // Point drivers are never morselized (driver_scan skips
                // them), so reaching here means "leave untouched".
                AccessPath::Point { .. } => return plan.clone(),
            };
            PhysicalPlan::TableScan {
                table: Arc::clone(table),
                access: AccessPath::Range {
                    chain,
                    lo: lo.clone(),
                    hi: hi.clone(),
                },
                residual: residual.clone(),
            }
        }
        PhysicalPlan::Filter { input, pred } => PhysicalPlan::Filter {
            input: Box::new(with_driver_range(input, lo, hi)),
            pred: pred.clone(),
        },
        PhysicalPlan::Project {
            input,
            exprs,
            names,
        } => PhysicalPlan::Project {
            input: Box::new(with_driver_range(input, lo, hi)),
            exprs: exprs.clone(),
            names: names.clone(),
        },
        PhysicalPlan::IndexNlJoin {
            outer,
            inner,
            inner_chain,
            outer_key,
            residual,
        } => PhysicalPlan::IndexNlJoin {
            outer: Box::new(with_driver_range(outer, lo, hi)),
            inner: Arc::clone(inner),
            inner_chain: *inner_chain,
            outer_key: *outer_key,
            residual: residual.clone(),
        },
        other => other.clone(),
    }
}

/// One plan instance per morsel, in chain (morsel-index) order. Falls back
/// to a single instance of the whole region when the driving scan cannot
/// be found or the table is too small to split.
fn morsel_plans(region: &PhysicalPlan) -> Vec<PhysicalPlan> {
    let Some((table, chain, lo, hi)) = driver_scan(region) else {
        return vec![region.clone()];
    };
    let ranges = table.morsel_ranges(chain, &lo, &hi, MORSEL_TARGET);
    if ranges.len() <= 1 {
        return vec![region.clone()];
    }
    ranges
        .iter()
        .map(|(l, h)| with_driver_range(region, l, h))
        .collect()
}

// ---- shared-pool work-stealing execution ------------------------------------------

/// Execute `work(0..n)` as one job on the process-wide scheduler pool
/// ([`sched`]) and return results in index order.
///
/// `dop` caps how many pool workers may execute this job concurrently
/// (the `--workers` knob); the pool itself is sized once per process, so
/// concurrent queries share a fixed set of threads instead of spawning
/// their own. Task indices are seeded round-robin across per-job lanes;
/// an attached worker pops the front of its own lane and steals from the
/// back of a victim's, exactly as the old per-query scoped pool did —
/// lane numbers feed the per-worker observability counters.
///
/// The closure returns `(result, rows_processed)`; row counts feed the
/// per-worker observability counters. With one task or a DOP of one the
/// closures run inline on the calling thread (no pool, no extra metrics).
/// The lowest-indexed recorded error aborts the region; workers stop
/// claiming new tasks once any error is recorded (or a task panics).
pub(crate) fn run_indexed<T, F>(
    n: usize,
    dop: usize,
    metrics: &Option<Arc<Metrics>>,
    work: F,
) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Result<(T, u64)> + Sync,
{
    if n <= 1 || dop <= 1 {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(work(i)?.0);
        }
        return Ok(out);
    }
    if let Some(m) = metrics {
        m.parallel_regions.inc();
        m.morsels_dispatched.add(n as u64);
    }
    let failed = AtomicBool::new(false);
    let slots: Vec<Mutex<Option<Result<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let stats = sched::run_job(n, dop, &|t: sched::JobTask| {
        if failed.load(Ordering::Relaxed) {
            // Another task already recorded an error; abort without
            // running (mirrors the old pre-claim failure check).
            return false;
        }
        let started = std::time::Instant::now();
        if let Some(m) = metrics {
            m.worker_morsels(t.lane).inc();
            if t.stolen {
                m.worker_steals(t.lane).inc();
                m.morsels_stolen.inc();
            }
            if t.cross_job {
                m.worker_cross_steals(t.lane).inc();
                m.cross_job_steals.inc();
            }
        }
        let result = work(t.index);
        let ok = result.is_ok();
        if let Some(m) = metrics {
            if let Ok((_, rows)) = &result {
                m.worker_rows(t.lane).add(*rows);
            }
            m.worker_busy_ns(t.lane)
                .add(started.elapsed().as_nanos() as u64);
        }
        if !ok {
            failed.store(true, Ordering::Relaxed);
        }
        *slots[t.index].lock() = Some(result.map(|(value, _rows)| value));
        ok
    });
    if let Some(m) = metrics {
        m.sched_wait_us.record(stats.sched_wait_us);
        let pct = (stats.workers_attached * 100) / stats.pool_size.max(1);
        m.pool_utilization.set(pct as u64);
    }
    // Lowest-indexed recorded error wins. Under work stealing an
    // abandoned (never-claimed) index can sit anywhere relative to the
    // error, so scan for errors before requiring every slot be filled.
    let mut out = Vec::with_capacity(n);
    let mut panicked = false;
    for slot in &slots {
        match slot.lock().take() {
            Some(Ok(value)) => out.push(value),
            Some(Err(e)) => return Err(e),
            // A missing slot with no recorded error means the task body
            // panicked inside the pool (the scheduler caught it and
            // failed the job without a result).
            None => panicked = true,
        }
    }
    if panicked || failed.load(Ordering::Relaxed) {
        return Err(veridb_common::Error::Plan(
            "parallel region aborted: a morsel task panicked on the scheduler pool".into(),
        ));
    }
    Ok(out)
}

/// Execute one closure per morsel plan via [`run_indexed`] and return the
/// per-morsel results in morsel-index order.
fn run_morsels<T, F>(
    plans: &[PhysicalPlan],
    pool: usize,
    ctx: &ExecContext,
    work: F,
) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(&PhysicalPlan, &ExecContext) -> Result<(T, u64)> + Sync,
{
    run_indexed(plans.len(), pool, &ctx.metrics, |i| work(&plans[i], ctx))
}

/// Resolve the degree-of-parallelism cap for an operator: the execution
/// context's worker count when set, else the value recorded at plan
/// time. This caps how many *shared-pool* workers the operator's job may
/// occupy; it no longer sizes a private pool.
fn pool_size(ctx: &ExecContext, planned_workers: usize) -> usize {
    let p = if ctx.workers > 0 {
        ctx.workers
    } else {
        planned_workers
    };
    p.max(1)
}

/// Merge operator over a parallel region: materializes every morsel's
/// output via the worker pool on first `next()`, then streams the rows in
/// morsel-index order (= the serial scan's row order).
pub(crate) struct GatherOp {
    region: PhysicalPlan,
    /// Pool size recorded in the plan's Exchange node.
    planned_workers: usize,
    ctx: ExecContext,
    output: Option<std::vec::IntoIter<Row>>,
}

impl GatherOp {
    pub(crate) fn new(region: &PhysicalPlan, planned_workers: usize, ctx: &ExecContext) -> Self {
        GatherOp {
            region: region.clone(),
            planned_workers,
            ctx: ctx.clone(),
            output: None,
        }
    }
}

impl Operator for GatherOp {
    fn next(&mut self) -> Result<Option<Row>> {
        if self.output.is_none() {
            let plans = morsel_plans(&self.region);
            let pool = pool_size(&self.ctx, self.planned_workers);
            let per_morsel = run_morsels(&plans, pool, &self.ctx, |p, c| {
                let mut op = open_ctx(p, c)?;
                let mut rows = Vec::new();
                while let Some(r) = op.next()? {
                    rows.push(r);
                }
                let n = rows.len() as u64;
                Ok((rows, n))
            })?;
            let rows: Vec<Row> = per_morsel.into_iter().flatten().collect();
            self.output = Some(rows.into_iter());
        }
        Ok(self.output.as_mut().expect("set above").next())
    }
}

/// Counts rows an inner operator produces (for per-worker metrics).
struct CountingOp<'a> {
    inner: Box<dyn Operator>,
    n: &'a mut u64,
}

impl Operator for CountingOp<'_> {
    fn next(&mut self) -> Result<Option<Row>> {
        let r = self.inner.next()?;
        if r.is_some() {
            *self.n += 1;
        }
        Ok(r)
    }
}

/// Parallel grouped aggregation: each morsel accumulates a private
/// [`GroupedPartial`] (hash states + first-seen group order); the partials
/// are merged at the pool barrier in morsel order, reproducing the serial
/// executor's group order and (for a fixed tiling) its float rounding.
/// Rows never funnel through a single stream before being aggregated.
pub(crate) struct ParallelAggregateOp {
    region: PhysicalPlan,
    planned_workers: usize,
    group: Vec<Expr>,
    aggs: Vec<(AggFunc, Option<Expr>)>,
    ctx: ExecContext,
    output: Option<std::vec::IntoIter<Row>>,
}

impl ParallelAggregateOp {
    pub(crate) fn new(
        region: &PhysicalPlan,
        planned_workers: usize,
        group: Vec<Expr>,
        aggs: Vec<(AggFunc, Option<Expr>)>,
        ctx: &ExecContext,
    ) -> Self {
        ParallelAggregateOp {
            region: region.clone(),
            planned_workers,
            group,
            aggs,
            ctx: ctx.clone(),
            output: None,
        }
    }

    fn materialize(&self) -> Result<Vec<Row>> {
        let plans = morsel_plans(&self.region);
        let pool = pool_size(&self.ctx, self.planned_workers);
        let group = &self.group;
        let aggs = &self.aggs;
        let partials = run_morsels(&plans, pool, &self.ctx, |p, c| {
            let mut n: u64 = 0;
            let mut input = CountingOp {
                inner: open_ctx(p, c)?,
                n: &mut n,
            };
            let mut partial = GroupedPartial::default();
            partial.accumulate(&mut input, group, aggs)?;
            Ok((partial, n))
        })?;
        let mut merged = GroupedPartial::default();
        for p in partials {
            merged.merge(p)?;
        }
        merged.finish(group, aggs)
    }
}

impl Operator for ParallelAggregateOp {
    fn next(&mut self) -> Result<Option<Row>> {
        if self.output.is_none() {
            self.output = Some(self.materialize()?.into_iter());
        }
        Ok(self.output.as_mut().expect("set above").next())
    }
}

// ---- partitioned hash join ---------------------------------------------------------

type PartTable = HashMap<Value, Vec<Row>>;

/// Hash partition of one join-key value. Uses the std `DefaultHasher`
/// with its fixed default keys, so build and probe agree within a
/// process; the choice never leaks into results (partitions only group
/// rows into independently-built tables).
fn partition_of(v: &Value) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    v.hash(&mut h);
    (h.finish() as usize) & (JOIN_PARTITIONS - 1)
}

/// Bucket `rows` by join-key hash partition, preserving input order
/// within each bucket. Null keys are dropped — inner equi-join semantics,
/// exactly as the serial build skips them.
pub(crate) fn bucket_rows(rows: Vec<Row>, key: usize) -> Vec<Vec<Row>> {
    let mut buckets: Vec<Vec<Row>> = (0..JOIN_PARTITIONS).map(|_| Vec::new()).collect();
    for row in rows {
        let k = &row[key];
        if k.is_null() {
            continue;
        }
        buckets[partition_of(k)].push(row);
    }
    buckets
}

/// Build the per-partition hash tables from per-morsel bucket sets, in
/// parallel over partitions. Buckets are concatenated in morsel order
/// first, so each key's row vector preserves the build stream's order —
/// the serial HashJoin's insertion order — making probe output
/// byte-identical to serial execution.
pub(crate) fn build_partition_tables(
    morsel_buckets: Vec<Vec<Vec<Row>>>,
    key: usize,
    pool: usize,
    metrics: &Option<Arc<Metrics>>,
) -> Result<Vec<PartTable>> {
    let mut parts: Vec<Vec<Row>> = (0..JOIN_PARTITIONS).map(|_| Vec::new()).collect();
    for buckets in morsel_buckets {
        for (p, rows) in buckets.into_iter().enumerate() {
            parts[p].extend(rows);
        }
    }
    // Ownership handoff to the pool: each build task takes its partition's
    // rows out of the shared cell exactly once.
    let cells: Vec<Mutex<Vec<Row>>> = parts.into_iter().map(Mutex::new).collect();
    run_indexed(JOIN_PARTITIONS, pool, metrics, |p| {
        let rows = std::mem::take(&mut *cells[p].lock());
        let n = rows.len() as u64;
        let mut table = PartTable::new();
        for row in rows {
            table.entry(row[key].clone()).or_default().push(row);
        }
        Ok((table, n))
    })
}

/// Probe one left row against the partition tables, appending joined rows
/// that pass the residual. Match order is the per-key build order, the
/// same order the serial HashJoin emits.
fn probe_one(
    lrow: &Row,
    tables: &[PartTable],
    left_key: usize,
    residual: &Option<Expr>,
    out: &mut Vec<Row>,
) -> Result<()> {
    let k = &lrow[left_key];
    if k.is_null() {
        return Ok(());
    }
    if let Some(matches) = tables[partition_of(k)].get(k) {
        for rrow in matches {
            let joined = lrow.joined(rrow);
            let keep = match residual {
                Some(p) => passes(p, &joined)?,
                None => true,
            };
            if keep {
                out.push(joined);
            }
        }
    }
    Ok(())
}

/// Parallel partitioned hash join (see [`PhysicalPlan::PartitionedJoin`]).
///
/// Build: if the right input is morsel-partitionable its morsels run on
/// the pool, each emitting partition-hashed buckets; otherwise the input
/// is executed once (itself possibly parallel inside) and bucketed. The
/// per-partition tables are then built concurrently. Probe: partitionable
/// left inputs probe per morsel; others are materialized and probed in
/// fixed-size chunks. Both merge outputs in morsel/chunk order, so the
/// result is byte-identical to the serial HashJoin for any pool size.
pub(crate) struct PartitionedJoinOp {
    left: PhysicalPlan,
    right: PhysicalPlan,
    left_key: usize,
    right_key: usize,
    residual: Option<Expr>,
    planned_workers: usize,
    ctx: ExecContext,
    output: Option<std::vec::IntoIter<Row>>,
}

impl PartitionedJoinOp {
    pub(crate) fn new(
        left: &PhysicalPlan,
        right: &PhysicalPlan,
        left_key: usize,
        right_key: usize,
        residual: Option<Expr>,
        planned_workers: usize,
        ctx: &ExecContext,
    ) -> Self {
        PartitionedJoinOp {
            left: left.clone(),
            right: right.clone(),
            left_key,
            right_key,
            residual,
            planned_workers,
            ctx: ctx.clone(),
            output: None,
        }
    }

    fn materialize(&self) -> Result<Vec<Row>> {
        let pool = pool_size(&self.ctx, self.planned_workers);
        let right_key = self.right_key;
        // Build phase: partition-hashed buckets per morsel, in morsel
        // order.
        let morsel_buckets: Vec<Vec<Vec<Row>>> = if partitionable(&self.right) {
            let plans = morsel_plans(&self.right);
            run_morsels(&plans, pool, &self.ctx, |p, c| {
                let mut op = open_ctx(p, c)?;
                let mut rows = Vec::new();
                while let Some(r) = op.next()? {
                    rows.push(r);
                }
                let n = rows.len() as u64;
                Ok((bucket_rows(rows, right_key), n))
            })?
        } else {
            let mut op = open_ctx(&self.right, &self.ctx)?;
            let mut rows = Vec::new();
            while let Some(r) = op.next()? {
                rows.push(r);
            }
            vec![bucket_rows(rows, right_key)]
        };
        let tables = build_partition_tables(morsel_buckets, right_key, pool, &self.ctx.metrics)?;
        // Probe phase: outputs merged in morsel/chunk order = left input
        // order.
        let left_key = self.left_key;
        let residual = &self.residual;
        let tables = &tables;
        let per_chunk: Vec<Vec<Row>> = if partitionable(&self.left) {
            let plans = morsel_plans(&self.left);
            run_morsels(&plans, pool, &self.ctx, |p, c| {
                let mut op = open_ctx(p, c)?;
                let mut out = Vec::new();
                let mut scanned: u64 = 0;
                while let Some(lrow) = op.next()? {
                    scanned += 1;
                    probe_one(&lrow, tables, left_key, residual, &mut out)?;
                }
                Ok((out, scanned))
            })?
        } else {
            let mut op = open_ctx(&self.left, &self.ctx)?;
            let mut lrows = Vec::new();
            while let Some(r) = op.next()? {
                lrows.push(r);
            }
            let chunks = lrows.len().div_ceil(PROBE_CHUNK_ROWS).max(1);
            let lrows = &lrows;
            run_indexed(chunks, pool, &self.ctx.metrics, |ci| {
                let lo = ci * PROBE_CHUNK_ROWS;
                let hi = ((ci + 1) * PROBE_CHUNK_ROWS).min(lrows.len());
                let mut out = Vec::new();
                for lrow in &lrows[lo..hi] {
                    probe_one(lrow, tables, left_key, residual, &mut out)?;
                }
                Ok((out, (hi - lo) as u64))
            })?
        };
        Ok(per_chunk.into_iter().flatten().collect())
    }
}

impl Operator for PartitionedJoinOp {
    fn next(&mut self) -> Result<Option<Row>> {
        if self.output.is_none() {
            self.output = Some(self.materialize()?.into_iter());
        }
        Ok(self.output.as_mut().expect("set above").next())
    }
}

// ---- parallel sort tail ------------------------------------------------------------

/// Compare two precomputed key vectors under per-key descending flags.
/// Value's total order handles NULLs (first) and floats (total_cmp).
pub(crate) fn cmp_sort_keys(a: &[Value], b: &[Value], descs: &[bool]) -> std::cmp::Ordering {
    for ((x, y), desc) in a.iter().zip(b.iter()).zip(descs) {
        let ord = x.cmp(y);
        let ord = if *desc { ord.reverse() } else { ord };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// One sorted run: precomputed sort keys (in run-sorted order) plus the
/// rows themselves in a spill-capable buffer — large runs overflow into
/// verified storage through the same [`SpilledRows`] machinery every
/// other materializing operator uses, so tampering with a spilled run is
/// caught by deferred verification like any base-table corruption.
struct SortRun {
    keys: Vec<Vec<Value>>,
    rows: SpilledRows,
}

/// Tournament tree (winner tree) over sorted runs: a complete binary
/// tree whose leaves are run cursors and whose internal nodes cache the
/// winning run of their subtree, giving O(log k) replay per emitted row.
/// Ties break on the lower run index; since runs are contiguous input
/// chunks, that reproduces a global stable sort's order exactly.
struct TournamentTree<'a> {
    runs: &'a [SortRun],
    descs: &'a [bool],
    pos: Vec<usize>,
    /// Leaves occupy `node[size..size+k]`; `node[1]` is the winner.
    /// `usize::MAX` marks an exhausted (or padding) slot.
    node: Vec<usize>,
    size: usize,
}

const EXHAUSTED: usize = usize::MAX;

impl<'a> TournamentTree<'a> {
    fn new(runs: &'a [SortRun], descs: &'a [bool]) -> Self {
        let k = runs.len();
        let size = k.next_power_of_two().max(1);
        let mut t = TournamentTree {
            runs,
            descs,
            pos: vec![0; k],
            node: vec![EXHAUSTED; 2 * size],
            size,
        };
        for (r, run) in runs.iter().enumerate() {
            t.node[size + r] = if run.keys.is_empty() { EXHAUSTED } else { r };
        }
        for n in (1..size).rev() {
            t.node[n] = t.winner(t.node[2 * n], t.node[2 * n + 1]);
        }
        t
    }

    fn winner(&self, a: usize, b: usize) -> usize {
        match (a, b) {
            (EXHAUSTED, other) | (other, EXHAUSTED) => other,
            (a, b) => {
                let ka = &self.runs[a].keys[self.pos[a]];
                let kb = &self.runs[b].keys[self.pos[b]];
                match cmp_sort_keys(ka, kb, self.descs) {
                    std::cmp::Ordering::Greater => b,
                    // Less or Equal: the lower run index wins ties (the
                    // leaf layout puts lower indices on the `a` side).
                    _ => a.min(b),
                }
            }
        }
    }

    /// Pop the globally next row, advancing its run's cursor and
    /// replaying the path from that leaf to the root.
    fn pop(&mut self) -> Result<Option<Row>> {
        let w = self.node[1];
        if w == EXHAUSTED {
            return Ok(None);
        }
        let row = self.runs[w].rows.get(self.pos[w])?;
        self.pos[w] += 1;
        let mut n = self.size + w;
        self.node[n] = if self.pos[w] >= self.runs[w].keys.len() {
            EXHAUSTED
        } else {
            w
        };
        while n > 1 {
            n /= 2;
            self.node[n] = self.winner(self.node[2 * n], self.node[2 * n + 1]);
        }
        Ok(Some(row))
    }
}

/// Sort `rows` by `keys` on the worker pool: contiguous chunks become
/// per-worker sorted runs (keys precomputed once, stable in-run sort,
/// spill-capable storage), merged through a tournament tree whose ties
/// break on run index. The output is byte-identical to the serial
/// stable `sort_by` for any pool size — chunk boundaries cannot be
/// observed because the merge is stable across runs in input order.
pub(crate) fn parallel_sort(
    mut rows: Vec<Row>,
    keys: &[(Expr, bool)],
    pool: usize,
    ctx: &ExecContext,
) -> Result<Vec<Row>> {
    let n = rows.len();
    let descs: Vec<bool> = keys.iter().map(|(_, d)| *d).collect();
    let run_count = pool.min(n.div_ceil(PARALLEL_SORT_MIN_ROWS / 2)).max(1);
    // Carve contiguous chunks (ownership moves, no row clones).
    let chunk = n.div_ceil(run_count);
    let mut chunks: Vec<Vec<Row>> = Vec::with_capacity(run_count);
    for _ in 0..run_count {
        let rest = rows.split_off(chunk.min(rows.len()));
        chunks.push(std::mem::replace(&mut rows, rest));
    }
    let cells: Vec<Mutex<Vec<Row>>> = chunks.into_iter().map(Mutex::new).collect();
    let descs_ref = &descs;
    let mut runs = run_indexed(run_count, pool, &ctx.metrics, |r| {
        let chunk_rows = std::mem::take(&mut *cells[r].lock());
        let n = chunk_rows.len() as u64;
        let mut keyed: Vec<(Vec<Value>, Row)> = chunk_rows
            .into_iter()
            .map(|row| -> Result<(Vec<Value>, Row)> {
                let ks = keys
                    .iter()
                    .map(|(e, _)| eval(e, &row))
                    .collect::<Result<Vec<Value>>>()?;
                Ok((ks, row))
            })
            .collect::<Result<_>>()?;
        keyed.sort_by(|(a, _), (b, _)| cmp_sort_keys(a, b, descs_ref));
        let mut run = SortRun {
            keys: Vec::with_capacity(keyed.len()),
            rows: SpilledRows::new(ctx.clone()),
        };
        for (ks, row) in keyed {
            run.keys.push(ks);
            run.rows.push(row)?;
        }
        Ok((run, n))
    })?;
    if runs.len() == 1 {
        return runs.remove(0).rows.to_vec();
    }
    let mut tree = TournamentTree::new(&runs, &descs);
    let mut out = Vec::with_capacity(n);
    while let Some(row) = tree.pop()? {
        out.push(row);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    // ---- scheduler ----------------------------------------------------

    /// Skewed-range work-stealing on the shared pool: lane 0's seeded
    /// morsels are 10× the cost of everyone else's. Results must arrive
    /// in index order, every morsel is claimed exactly once, stealing
    /// must happen (a lone pool worker drains the other lanes by
    /// stealing; multiple workers steal lane 0's backlog), and — when the
    /// process pool really has `DOP` workers — no lane's claim count may
    /// exceed 2× the mean.
    #[test]
    fn skewed_work_is_stolen_and_claims_stay_balanced() {
        const N: usize = 32;
        const DOP: usize = 4;
        let m = Arc::new(Metrics::new());
        let metrics = Some(Arc::clone(&m));
        // Lane w is seeded indices i with i % DOP == w; make lane 0's
        // seed slow so other workers drain their own lanes and steal
        // from the back of lane 0's.
        let out = run_indexed(N, DOP, &metrics, |i| {
            let slow = i % DOP == 0;
            std::thread::sleep(std::time::Duration::from_millis(if slow { 10 } else { 1 }));
            Ok((i, 1))
        })
        .unwrap();
        assert_eq!(out, (0..N).collect::<Vec<_>>(), "index-order merge");
        let snap = m.snapshot();
        let total: u64 = snap.worker_morsels.iter().sum();
        assert_eq!(total, N as u64, "every morsel claimed exactly once");
        assert!(snap.morsels_stolen > 0, "skewed seed must trigger stealing");
        assert_eq!(
            snap.morsels_stolen,
            snap.worker_steals.iter().sum::<u64>(),
            "aggregate steal counter matches per-worker counts"
        );
        assert_eq!(
            snap.sched_wait_us.count, 1,
            "one region records one scheduler wait sample"
        );
        // Claim balance needs real parallelism: with fewer pool workers
        // than DOP (e.g. a 1-core CI box) a single worker legitimately
        // claims most morsels through steals.
        if sched::pool_size() >= DOP {
            let mean = N as u64 / DOP as u64;
            for (w, &c) in snap.worker_morsels.iter().take(DOP).enumerate() {
                assert!(
                    c <= 2 * mean,
                    "lane {w} claimed {c} morsels (> 2x mean {mean}): {:?}",
                    snap.worker_morsels
                );
            }
        }
    }

    /// First-error-wins must survive stealing: whichever worker hits an
    /// error, the lowest-indexed recorded error is returned and workers
    /// stop claiming.
    #[test]
    fn lowest_indexed_error_wins_under_stealing() {
        use veridb_common::Error;
        let metrics = None;
        let err = run_indexed::<usize, _>(16, 4, &metrics, |i| {
            if i >= 10 {
                Err(Error::InvalidArgument(format!("boom {i}")))
            } else {
                Ok((i, 1))
            }
        })
        .unwrap_err();
        let msg = format!("{err}");
        // Exactly which of 10..16 is recorded first depends on timing,
        // but the returned one must be the lowest *recorded* index, and
        // must always be an injected error.
        assert!(msg.contains("boom"), "unexpected error: {msg}");
    }

    /// A panicking task body must surface as a query error (the shared
    /// pool catches it and fails the job), never tear down pool workers.
    #[test]
    fn panicking_task_becomes_an_error_not_a_crash() {
        let metrics = None;
        let err = run_indexed::<usize, _>(8, 4, &metrics, |i| {
            if i == 5 {
                panic!("morsel panic");
            }
            Ok((i, 1))
        })
        .unwrap_err();
        assert!(
            format!("{err}").contains("panicked"),
            "unexpected error: {err}"
        );
        // The pool survives and still runs work.
        let ok = run_indexed::<usize, _>(4, 2, &metrics, |i| Ok((i, 1))).unwrap();
        assert_eq!(ok, vec![0, 1, 2, 3]);
    }

    #[test]
    fn inline_path_skips_pool_and_metrics() {
        let m = Arc::new(Metrics::new());
        let metrics = Some(Arc::clone(&m));
        let out = run_indexed(5, 1, &metrics, |i| Ok((i * 2, 1))).unwrap();
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
        assert_eq!(m.snapshot().parallel_regions, 0);
        assert_eq!(m.snapshot().morsels_dispatched, 0);
    }

    // ---- commutativity proptests over join build and sort merge -------

    fn int_rows(vals: &[(i64, i64)]) -> Vec<Row> {
        vals.iter()
            .map(|(k, p)| Row::new(vec![Value::Int(*k), Value::Int(*p)]))
            .collect()
    }

    /// Serial hash-join reference: build right in stream order, probe
    /// left in stream order, emit matches in per-key insertion order —
    /// the exact semantics of `exec::HashJoinOp`.
    fn serial_hash_join(left: &[Row], right: &[Row]) -> Vec<Row> {
        let mut table: HashMap<Value, Vec<Row>> = HashMap::new();
        for row in right {
            let k = row[0].clone();
            if k.is_null() {
                continue;
            }
            table.entry(k).or_default().push(row.clone());
        }
        let mut out = Vec::new();
        for lrow in left {
            let k = &lrow[0];
            if k.is_null() {
                continue;
            }
            if let Some(matches) = table.get(k) {
                for rrow in matches {
                    out.push(lrow.joined(rrow));
                }
            }
        }
        out
    }

    proptest! {
        /// Partitioned build commutativity: bucketing the build rows by
        /// an arbitrary morsel split, building per-partition tables on a
        /// pool, and probing in chunks must reproduce the serial hash
        /// join byte-for-byte — for any split point, pool size, and key
        /// distribution (small key domain forces heavy duplicates).
        #[test]
        fn partitioned_join_build_matches_serial(
            left in proptest::collection::vec((0i64..16, 0i64..1000), 0..80),
            right in proptest::collection::vec((0i64..16, 0i64..1000), 0..80),
            split in 0usize..80,
            pool in 1usize..5,
        ) {
            let left = int_rows(&left);
            let right = int_rows(&right);
            let expect = serial_hash_join(&left, &right);

            let split = split.min(right.len());
            let (a, b) = right.split_at(split);
            let morsel_buckets = vec![
                bucket_rows(a.to_vec(), 0),
                bucket_rows(b.to_vec(), 0),
            ];
            let tables = build_partition_tables(morsel_buckets, 0, pool, &None).unwrap();
            let mut got = Vec::new();
            for lrow in &left {
                probe_one(lrow, &tables, 0, &None, &mut got).unwrap();
            }
            prop_assert_eq!(got, expect);
        }

        /// Sort-merge commutativity: chunked stable runs merged through
        /// the tournament tree must equal one global stable sort, for
        /// any chunking and any mix of ascending/descending keys with
        /// heavy duplicate keys (ties exercise run-index stability).
        #[test]
        fn parallel_sort_merge_matches_stable_sort(
            vals in proptest::collection::vec((0i64..8, 0i64..1000), 0..200),
            pool in 1usize..5,
            desc in any::<bool>(),
        ) {
            let rows = int_rows(&vals);
            let keys = vec![(Expr::ColumnRef(0), desc)];
            let descs = vec![desc];

            // Serial reference: precomputed keys + stable sort_by.
            let mut keyed: Vec<(Vec<Value>, Row)> = rows
                .iter()
                .map(|r| (vec![r[0].clone()], r.clone()))
                .collect();
            keyed.sort_by(|(a, _), (b, _)| cmp_sort_keys(a, b, &descs));
            let expect: Vec<Row> = keyed.into_iter().map(|(_, r)| r).collect();

            let got = parallel_sort(rows, &keys, pool, &ExecContext::default()).unwrap();
            prop_assert_eq!(got, expect);
        }
    }

    /// The tournament tree must also be correct at run counts that are
    /// not powers of two and with exhausted/empty runs interleaved.
    #[test]
    fn tournament_tree_handles_ragged_runs() {
        let mk_run = |vals: &[i64]| {
            let mut run = SortRun {
                keys: Vec::new(),
                rows: SpilledRows::new(ExecContext::default()),
            };
            for v in vals {
                run.keys.push(vec![Value::Int(*v)]);
                run.rows.push(Row::new(vec![Value::Int(*v)])).unwrap();
            }
            run
        };
        let runs = vec![
            mk_run(&[1, 4, 9]),
            mk_run(&[]),
            mk_run(&[2, 2, 2, 2, 11]),
            mk_run(&[0]),
            mk_run(&[3, 5]),
        ];
        let descs = vec![false];
        let mut tree = TournamentTree::new(&runs, &descs);
        let mut got = Vec::new();
        while let Some(r) = tree.pop().unwrap() {
            got.push(match &r[0] {
                Value::Int(i) => *i,
                other => panic!("unexpected value {other:?}"),
            });
        }
        assert_eq!(got, vec![0, 1, 2, 2, 2, 2, 3, 4, 5, 9, 11]);
    }
}
