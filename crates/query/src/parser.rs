//! Hand-written recursive-descent SQL parser for the supported subset.
//!
//! The parser runs inside the enclave (compilation is part of the trusted
//! computing base, §3.3). It is deliberately strict: anything outside the
//! supported grammar is a parse error, never a silent reinterpretation.

use crate::ast::{AggFunc, BinOp, Expr, ScalarFunc, SelectItem, SelectStmt, Statement, TableRef};
use crate::lexer::{lex, Token};
use veridb_common::{ColumnType, Error, Result, Value};

/// Keywords that terminate an expression / select-item context.
const RESERVED: &[&str] = &[
    "select", "from", "where", "group", "order", "by", "limit", "and", "or", "not", "between",
    "in", "as", "on", "join", "inner", "asc", "desc", "values", "set", "insert", "update",
    "delete", "create", "drop", "table", "into", "primary", "key", "chained", "having", "distinct",
    "explain", "like",
];

fn is_reserved(word: &str) -> bool {
    RESERVED.iter().any(|k| word.eq_ignore_ascii_case(k))
}

/// Parse one SQL statement.
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_if(|t| matches!(t, Token::Semi));
    if !p.at_end() {
        return Err(Error::Parse(format!(
            "trailing tokens after statement: {:?}",
            p.peek()
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| Error::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat_if(&mut self, f: impl Fn(&Token) -> bool) -> bool {
        if self.peek().map(&f).unwrap_or(false) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        self.eat_if(|t| t.is_kw(kw))
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect(&mut self, tok: Token) -> Result<()> {
        if self.eat_if(|t| *t == tok) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected {tok:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Token::Ident(s) if !is_reserved(&s) => Ok(s.to_ascii_lowercase()),
            t => Err(Error::Parse(format!("expected identifier, found {t:?}"))),
        }
    }

    // ---- statements ------------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_kw("create") {
            self.expect_kw("table")?;
            return self.create_table();
        }
        if self.eat_kw("drop") {
            self.expect_kw("table")?;
            return Ok(Statement::DropTable {
                name: self.ident()?,
            });
        }
        if self.eat_kw("insert") {
            self.expect_kw("into")?;
            return self.insert();
        }
        if self.eat_kw("update") {
            return self.update();
        }
        if self.eat_kw("delete") {
            self.expect_kw("from")?;
            return self.delete();
        }
        if self.eat_kw("select") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.eat_kw("explain") {
            self.expect_kw("select")?;
            return Ok(Statement::Explain(self.select()?));
        }
        Err(Error::Parse(format!(
            "unsupported statement: {:?}",
            self.peek()
        )))
    }

    fn column_type(&mut self) -> Result<ColumnType> {
        let name = match self.next()? {
            Token::Ident(s) => s.to_ascii_lowercase(),
            t => return Err(Error::Parse(format!("expected type, found {t:?}"))),
        };
        let ty = match name.as_str() {
            "int" | "integer" | "bigint" | "smallint" => ColumnType::Int,
            "float" | "double" | "real" | "decimal" | "numeric" => ColumnType::Float,
            "text" | "string" | "varchar" | "char" => ColumnType::Str,
            "date" => ColumnType::Date,
            other => return Err(Error::Parse(format!("unsupported column type {other}"))),
        };
        // Optional length/precision, e.g. VARCHAR(25), DECIMAL(15,2).
        if self.eat_if(|t| matches!(t, Token::LParen)) {
            loop {
                match self.next()? {
                    Token::RParen => break,
                    Token::Int(_) | Token::Comma => continue,
                    t => {
                        return Err(Error::Parse(format!(
                            "unexpected token in type suffix: {t:?}"
                        )))
                    }
                }
            }
        }
        Ok(ty)
    }

    fn create_table(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect(Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty = self.column_type()?;
            let mut chained = false;
            loop {
                if self.eat_kw("primary") {
                    self.expect_kw("key")?;
                    if !columns.is_empty() {
                        return Err(Error::Parse("PRIMARY KEY must be the first column".into()));
                    }
                    chained = true;
                } else if self.eat_kw("chained") {
                    chained = true;
                } else {
                    break;
                }
            }
            columns.push((col, ty, chained));
            if !self.eat_if(|t| matches!(t, Token::Comma)) {
                break;
            }
        }
        self.expect(Token::RParen)?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn insert(&mut self) -> Result<Statement> {
        let table = self.ident()?;
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect(Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_if(|t| matches!(t, Token::Comma)) {
                    break;
                }
            }
            self.expect(Token::RParen)?;
            rows.push(row);
            if !self.eat_if(|t| matches!(t, Token::Comma)) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn update(&mut self) -> Result<Statement> {
        let table = self.ident()?;
        self.expect_kw("set")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(Token::Eq)?;
            sets.push((col, self.expr()?));
            if !self.eat_if(|t| matches!(t, Token::Comma)) {
                break;
            }
        }
        let filter = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            sets,
            filter,
        })
    }

    fn delete(&mut self) -> Result<Statement> {
        let table = self.ident()?;
        let filter = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, filter })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let table = self.ident()?;
        let has_alias =
            self.eat_kw("as") || matches!(self.peek(), Some(Token::Ident(s)) if !is_reserved(s));
        let alias = if has_alias {
            self.ident()?
        } else {
            table.clone()
        };
        Ok(TableRef { table, alias })
    }

    fn select(&mut self) -> Result<SelectStmt> {
        let distinct = self.eat_kw("distinct");
        // Select list.
        let mut items = Vec::new();
        loop {
            if self.eat_if(|t| matches!(t, Token::Star)) {
                items.push(SelectItem::Wildcard);
            } else {
                let e = self.expr()?;
                let has_alias = self.eat_kw("as")
                    || matches!(self.peek(), Some(Token::Ident(s)) if !is_reserved(s));
                let alias = if has_alias { Some(self.ident()?) } else { None };
                items.push(SelectItem::Expr(e, alias));
            }
            if !self.eat_if(|t| matches!(t, Token::Comma)) {
                break;
            }
        }
        self.expect_kw("from")?;
        let mut from = vec![self.table_ref()?];
        let mut join_on = Vec::new();
        loop {
            if self.eat_if(|t| matches!(t, Token::Comma)) {
                from.push(self.table_ref()?);
            } else if self.eat_kw("inner") {
                self.expect_kw("join")?;
                from.push(self.table_ref()?);
                self.expect_kw("on")?;
                join_on.push(self.expr()?);
            } else if self.eat_kw("join") {
                from.push(self.table_ref()?);
                self.expect_kw("on")?;
                join_on.push(self.expr()?);
            } else {
                break;
            }
        }
        let filter = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_if(|t| matches!(t, Token::Comma)) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("having") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let e = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push((e, desc));
                if !self.eat_if(|t| matches!(t, Token::Comma)) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.next()? {
                Token::Int(n) if n >= 0 => Some(n as u64),
                t => return Err(Error::Parse(format!("bad LIMIT: {t:?}"))),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            items,
            from,
            join_on,
            filter,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    // ---- expressions -------------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // BETWEEN / IN (optionally negated).
        let negated = if self.peek().map(|t| t.is_kw("not")).unwrap_or(false)
            && self
                .peek2()
                .map(|t| t.is_kw("between") || t.is_kw("in") || t.is_kw("like"))
                .unwrap_or(false)
        {
            self.pos += 1;
            true
        } else {
            false
        };
        if self.eat_kw("between") {
            let low = self.additive()?;
            self.expect_kw("and")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("in") {
            self.expect(Token::LParen)?;
            if self.peek().map(|t| t.is_kw("select")).unwrap_or(false) {
                self.pos += 1;
                let sub = self.select()?;
                self.expect(Token::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    query: Box::new(sub),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_if(|t| matches!(t, Token::Comma)) {
                    break;
                }
            }
            self.expect(Token::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("like") {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(Error::Parse(
                "NOT must precede BETWEEN, IN or LIKE here".into(),
            ));
        }
        let op = match self.peek() {
            Some(Token::Eq) => BinOp::Eq,
            Some(Token::Ne) => BinOp::Ne,
            Some(Token::Lt) => BinOp::Lt,
            Some(Token::Le) => BinOp::Le,
            Some(Token::Gt) => BinOp::Gt,
            Some(Token::Ge) => BinOp::Ge,
            _ => return Ok(left),
        };
        self.pos += 1;
        let right = self.additive()?;
        Ok(Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        })
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_if(|t| matches!(t, Token::Minus)) {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.next()? {
            Token::Int(v) => Ok(Expr::Literal(Value::Int(v))),
            Token::Float(v) => Ok(Expr::Literal(Value::Float(v))),
            Token::Str(s) => Ok(Expr::Literal(Value::Str(s))),
            Token::LParen => {
                if self.peek().map(|t| t.is_kw("select")).unwrap_or(false) {
                    self.pos += 1;
                    let sub = self.select()?;
                    self.expect(Token::RParen)?;
                    return Ok(Expr::Subquery(Box::new(sub)));
                }
                let e = self.expr()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => {
                // DATE 'YYYY-MM-DD' literal.
                if name.eq_ignore_ascii_case("date") {
                    if let Some(Token::Str(s)) = self.peek() {
                        let v = Value::parse_date(s)?;
                        self.pos += 1;
                        return Ok(Expr::Literal(v));
                    }
                }
                // Aggregate or scalar function call.
                if matches!(self.peek(), Some(Token::LParen)) {
                    if let Some(func) = AggFunc::from_name(&name) {
                        self.pos += 1; // consume '('
                        if matches!(func, AggFunc::Count)
                            && self.eat_if(|t| matches!(t, Token::Star))
                        {
                            self.expect(Token::RParen)?;
                            return Ok(Expr::Agg { func, arg: None });
                        }
                        let arg = self.expr()?;
                        self.expect(Token::RParen)?;
                        return Ok(Expr::Agg {
                            func,
                            arg: Some(Box::new(arg)),
                        });
                    }
                    if let Some(func) = ScalarFunc::from_name(&name) {
                        self.pos += 1; // consume '('
                        let mut args = Vec::new();
                        if !matches!(self.peek(), Some(Token::RParen)) {
                            loop {
                                args.push(self.expr()?);
                                if !self.eat_if(|t| matches!(t, Token::Comma)) {
                                    break;
                                }
                            }
                        }
                        self.expect(Token::RParen)?;
                        return Ok(Expr::Func { func, args });
                    }
                    return Err(Error::Parse(format!("unknown function {name}")));
                }
                if is_reserved(&name) {
                    return Err(Error::Parse(format!(
                        "unexpected keyword {name} in expression"
                    )));
                }
                // Qualified column?
                if matches!(self.peek(), Some(Token::Dot)) {
                    self.pos += 1;
                    let col = self.ident()?;
                    return Ok(Expr::Column {
                        qualifier: Some(name.to_ascii_lowercase()),
                        name: col,
                    });
                }
                Ok(Expr::Column {
                    qualifier: None,
                    name: name.to_ascii_lowercase(),
                })
            }
            t => Err(Error::Parse(format!(
                "unexpected token in expression: {t:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_table() {
        let s = parse(
            "CREATE TABLE quote (id INT PRIMARY KEY, count INT CHAINED, \
             price DECIMAL(15,2), note VARCHAR(44))",
        )
        .unwrap();
        match s {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "quote");
                assert_eq!(columns.len(), 4);
                assert_eq!(columns[0], ("id".into(), ColumnType::Int, true));
                assert_eq!(columns[1], ("count".into(), ColumnType::Int, true));
                assert_eq!(columns[2].1, ColumnType::Float);
                assert_eq!(columns[3].1, ColumnType::Str);
            }
            _ => panic!("wrong statement"),
        }
    }

    #[test]
    fn primary_key_must_be_first() {
        assert!(parse("CREATE TABLE t (a INT, b INT PRIMARY KEY)").is_err());
    }

    #[test]
    fn parses_insert_multi_row() {
        let s = parse("INSERT INTO t VALUES (1, 'a', 1.5), (2, 'b', -2.5)").unwrap();
        match s {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "t");
                assert_eq!(rows.len(), 2);
                assert_eq!(
                    rows[1][2],
                    Expr::Neg(Box::new(Expr::Literal(Value::Float(2.5))))
                );
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_update_and_delete() {
        let s = parse("UPDATE t SET a = a + 1, b = 'x' WHERE id = 3").unwrap();
        assert!(matches!(s, Statement::Update { ref sets, .. } if sets.len() == 2));
        let s = parse("DELETE FROM t WHERE id = 3").unwrap();
        assert!(matches!(s, Statement::Delete { .. }));
    }

    #[test]
    fn parses_basic_select() {
        let s = parse("SELECT * FROM t WHERE a >= 1 AND b < 'z' ORDER BY a DESC LIMIT 10").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.items, vec![SelectItem::Wildcard]);
        assert_eq!(sel.from.len(), 1);
        assert!(sel.filter.is_some());
        assert_eq!(sel.order_by.len(), 1);
        assert!(sel.order_by[0].1, "DESC");
        assert_eq!(sel.limit, Some(10));
    }

    #[test]
    fn parses_join_styles() {
        // Comma join (the paper's Example 5.4).
        let s = parse(
            "SELECT q.id, q.count, i.count FROM quote as q, inventory as i \
             WHERE q.id = i.id and q.count > i.count",
        )
        .unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.from.len(), 2);
        assert_eq!(sel.from[0].alias, "q");
        assert!(sel.join_on.is_empty());

        // Explicit JOIN ... ON.
        let s = parse("SELECT * FROM a JOIN b ON a.x = b.y WHERE a.z = 1").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.from.len(), 2);
        assert_eq!(sel.join_on.len(), 1);
    }

    #[test]
    fn parses_aggregates_and_group_by() {
        let s = parse(
            "SELECT l_returnflag, SUM(l_quantity) AS sum_qty, \
             AVG(l_extendedprice), COUNT(*) \
             FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag",
        )
        .unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.items.len(), 4);
        assert_eq!(sel.group_by.len(), 1);
        match &sel.items[1] {
            SelectItem::Expr(
                Expr::Agg {
                    func: AggFunc::Sum,
                    arg,
                },
                Some(alias),
            ) => {
                assert!(arg.is_some());
                assert_eq!(alias, "sum_qty");
            }
            other => panic!("unexpected item {other:?}"),
        }
    }

    #[test]
    fn parses_tpch_q6_shape() {
        let s = parse(
            "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem \
             WHERE l_shipdate >= DATE '1994-01-01' \
             AND l_shipdate < DATE '1995-01-01' \
             AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
        )
        .unwrap();
        let Statement::Select(sel) = s else { panic!() };
        let filter = sel.filter.unwrap();
        let conjuncts = filter.split_conjuncts();
        assert_eq!(conjuncts.len(), 4);
        assert!(matches!(conjuncts[2], Expr::Between { .. }));
    }

    #[test]
    fn parses_tpch_q19_shape() {
        let s = parse(
            "SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue \
             FROM lineitem, part WHERE \
             (p_partkey = l_partkey AND p_brand = 'Brand#12' \
              AND p_container IN ('SM CASE', 'SM BOX') \
              AND l_quantity >= 1 AND l_quantity <= 11 \
              AND p_size BETWEEN 1 AND 5 \
              AND l_shipmode IN ('AIR', 'AIR REG') \
              AND l_shipinstruct = 'DELIVER IN PERSON') \
             OR (p_partkey = l_partkey AND p_brand = 'Brand#23')",
        )
        .unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert!(sel.filter.is_some());
        let f = sel.filter.unwrap();
        // Top level is an OR of two parenthesized groups.
        assert!(matches!(f, Expr::Binary { op: BinOp::Or, .. }));
    }

    #[test]
    fn parses_in_and_not_variants() {
        let s = parse("SELECT * FROM t WHERE a NOT IN (1,2) AND b NOT BETWEEN 1 AND 2").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        let conj = sel.filter.unwrap().split_conjuncts();
        assert!(matches!(&conj[0], Expr::InList { negated: true, .. }));
        assert!(matches!(&conj[1], Expr::Between { negated: true, .. }));
    }

    #[test]
    fn rejects_malformed_sql() {
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("SELEC * FROM t").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("INSERT INTO t VALUES 1,2").is_err());
        assert!(parse("SELECT * FROM t extra garbage ,").is_err());
        assert!(parse("SELECT unknownfunc(x) FROM t").is_err());
    }

    #[test]
    fn operator_precedence() {
        let s = parse("SELECT a + b * c FROM t").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        let SelectItem::Expr(e, _) = &sel.items[0] else {
            panic!()
        };
        // a + (b * c)
        match e {
            Expr::Binary {
                op: BinOp::Add,
                right,
                ..
            } => {
                assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("bad precedence: {other:?}"),
        }
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let s = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        match sel.filter.unwrap() {
            Expr::Binary {
                op: BinOp::Or,
                right,
                ..
            } => {
                assert!(matches!(*right, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("bad precedence: {other:?}"),
        }
    }
}
