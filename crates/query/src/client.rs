//! The client library: attestation, query signing, endorsement
//! verification, and the rollback-defense bookkeeping (§5.1).
//!
//! The client's entire trusted state is tiny, exactly as the paper
//! promises: the channel key, a query-id counter, and a *compressed
//! interval set* of received sequence numbers ("VeriDB leverages
//! optimizations such as maintaining intervals of successive sequence
//! numbers … to help reduce user's storage cost"). Any repeated sequence
//! number — the unavoidable signature of a rollback attack — surfaces as
//! [`Error::RollbackDetected`].

use crate::portal::{result_digest, EndorsedResult, SignedQuery};
use std::collections::BTreeMap;
use veridb_common::{Error, Result, Row};
use veridb_enclave::{
    attestation::{Quote, QuoteVerifier},
    Enclave, MacKey, Measurement, QuotingEnclave,
};

/// A compressed set of `u64`s stored as disjoint inclusive intervals.
#[derive(Debug, Default, Clone)]
pub struct SeqIntervals {
    /// start → end (inclusive), non-overlapping, non-adjacent.
    runs: BTreeMap<u64, u64>,
}

impl SeqIntervals {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a value. Returns `false` if it was already present.
    pub fn insert(&mut self, v: u64) -> bool {
        // Find the run starting at or before v.
        if let Some((&s, &e)) = self.runs.range(..=v).next_back() {
            if v <= e {
                return false; // duplicate
            }
            if e.checked_add(1) == Some(v) {
                // extend the left run; maybe merge with the right run
                // (`checked_add` guards the v == u64::MAX boundary — there
                // can be no run starting past the maximum value)
                if let Some(succ) = v.checked_add(1) {
                    if let Some((&ns, &ne)) = self.runs.range(succ..).next() {
                        if ns == succ {
                            self.runs.remove(&ns);
                            self.runs.insert(s, ne);
                            return true;
                        }
                    }
                }
                self.runs.insert(s, v);
                return true;
            }
        }
        // Maybe prepend to the run starting at v+1.
        if let Some(succ) = v.checked_add(1) {
            if let Some((&ns, &ne)) = self.runs.range(succ..).next() {
                if ns == succ {
                    self.runs.remove(&ns);
                    self.runs.insert(v, ne);
                    return true;
                }
            }
        }
        self.runs.insert(v, v);
        true
    }

    /// Membership test.
    pub fn contains(&self, v: u64) -> bool {
        self.runs
            .range(..=v)
            .next_back()
            .map(|(_, &e)| v <= e)
            .unwrap_or(false)
    }

    /// Number of stored intervals (the client's actual storage cost).
    pub fn interval_count(&self) -> usize {
        self.runs.len()
    }

    /// Number of values represented.
    pub fn value_count(&self) -> u64 {
        self.runs.iter().map(|(s, e)| e - s + 1).sum()
    }
}

/// A VeriDB client: signs queries, verifies endorsements, tracks
/// sequence numbers.
pub struct Client {
    key: MacKey,
    next_qid: u64,
    seqs: SeqIntervals,
}

impl Client {
    /// Establish a channel with an attested enclave:
    ///
    /// 1. send a fresh nonce, obtain a quote binding it,
    /// 2. verify the quote's signature, measurement, and nonce,
    /// 3. accept the channel key.
    ///
    /// (In real SGX step 3 is a key exchange protected by the quote; the
    /// simulation hands over the derived key after a successful verify.)
    pub fn attest(
        enclave: &Enclave,
        qe: &QuotingEnclave,
        verifier: &QuoteVerifier,
        expected: Measurement,
        channel_key: MacKey,
        nonce: &[u8],
    ) -> Result<Client> {
        let quote = enclave.quote(qe, nonce);
        Client::attest_quote(verifier, &quote, expected, nonce, channel_key)
    }

    /// Transport-agnostic attestation: verify a quote that was obtained
    /// elsewhere (e.g. decoded off the wire by `veridb-net`) rather than by
    /// calling into a local enclave. The checks are identical to
    /// [`Client::attest`]; only the quote's provenance differs.
    pub fn attest_quote(
        verifier: &QuoteVerifier,
        quote: &Quote,
        expected: Measurement,
        nonce: &[u8],
        channel_key: MacKey,
    ) -> Result<Client> {
        verifier
            .verify(quote, expected, nonce)
            .map_err(|e| Error::AuthFailed(format!("attestation failed: {e}")))?;
        Ok(Client {
            key: channel_key,
            next_qid: 1,
            seqs: SeqIntervals::new(),
        })
    }

    /// Build a client directly from a pre-exchanged key (tests, or
    /// deployments with out-of-band provisioning).
    pub fn with_key(key: MacKey) -> Client {
        Client {
            key,
            next_qid: 1,
            seqs: SeqIntervals::new(),
        }
    }

    /// Sign a query for submission.
    pub fn sign_query(&mut self, sql: &str) -> SignedQuery {
        let qid = self.next_qid;
        self.next_qid += 1;
        let mac = self.key.sign(&[&qid.to_le_bytes(), sql.as_bytes()]);
        SignedQuery {
            qid,
            sql: sql.to_owned(),
            mac,
        }
    }

    /// Verify an endorsed result against the query that produced it.
    /// Returns the rows on success; any failure is a security alarm.
    pub fn verify_result(
        &mut self,
        query: &SignedQuery,
        endorsed: &EndorsedResult,
    ) -> Result<Vec<Row>> {
        if endorsed.qid != query.qid {
            return Err(Error::AuthFailed(format!(
                "result answers qid {} but query was {}",
                endorsed.qid, query.qid
            )));
        }
        let digest = result_digest(&endorsed.result);
        let ok = self.key.verify(
            &[
                &endorsed.qid.to_le_bytes(),
                &endorsed.sequence.to_le_bytes(),
                &digest,
            ],
            &endorsed.mac,
        );
        if !ok {
            return Err(Error::AuthFailed(
                "result endorsement MAC failed verification".into(),
            ));
        }
        // Rollback defense: the portal's counter is strictly increasing,
        // so a repeated sequence number proves a rollback.
        if !self.seqs.insert(endorsed.sequence) {
            return Err(Error::RollbackDetected {
                sequence: endorsed.sequence,
            });
        }
        Ok(endorsed.result.rows.clone())
    }

    /// The client's sequence-number storage footprint, in intervals.
    pub fn sequence_intervals(&self) -> usize {
        self.seqs.interval_count()
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("next_qid", &self.next_qid)
            .field("seq_intervals", &self.seqs.interval_count())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_set_compresses_consecutive_runs() {
        let mut s = SeqIntervals::new();
        for v in 1..=100u64 {
            assert!(s.insert(v));
        }
        assert_eq!(s.interval_count(), 1);
        assert_eq!(s.value_count(), 100);
        assert!(!s.insert(50), "duplicate must be reported");
        assert!(s.contains(100));
        assert!(!s.contains(101));
    }

    #[test]
    fn interval_set_merges_gaps() {
        let mut s = SeqIntervals::new();
        assert!(s.insert(1));
        assert!(s.insert(3));
        assert_eq!(s.interval_count(), 2);
        assert!(s.insert(2)); // bridges the two runs
        assert_eq!(s.interval_count(), 1);
        assert!(s.contains(1) && s.contains(2) && s.contains(3));
    }

    #[test]
    fn interval_set_out_of_order_arrivals() {
        // Network reordering is expected (§5.1 footnote): out-of-order
        // arrivals must not be mistaken for rollbacks.
        let mut s = SeqIntervals::new();
        for v in [5u64, 2, 9, 1, 7, 3, 8, 4, 6] {
            assert!(s.insert(v), "fresh value {v} flagged as duplicate");
        }
        assert_eq!(s.interval_count(), 1);
        assert_eq!(s.value_count(), 9);
        for v in [5u64, 2, 9] {
            assert!(!s.insert(v));
        }
    }

    #[test]
    fn interval_set_prepend_merge() {
        let mut s = SeqIntervals::new();
        assert!(s.insert(10));
        assert!(s.insert(9)); // prepend to run start
        assert_eq!(s.interval_count(), 1);
        assert!(s.contains(9));
    }

    #[test]
    fn interval_set_u64_max_boundary() {
        // v + 1 overflows at the top of the domain; insert must not panic
        // and must still merge correctly from below.
        let mut s = SeqIntervals::new();
        assert!(s.insert(u64::MAX));
        assert!(!s.insert(u64::MAX));
        assert!(s.contains(u64::MAX));
        assert!(s.insert(u64::MAX - 1)); // prepend-merge below MAX
        assert_eq!(s.interval_count(), 1);
        assert!(s.insert(u64::MAX - 3));
        assert_eq!(s.interval_count(), 2);
        assert!(s.insert(u64::MAX - 2)); // bridge up to the MAX run
        assert_eq!(s.interval_count(), 1);
        assert_eq!(s.value_count(), 4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    proptest! {
        #[test]
        fn interval_set_matches_hashset(values in prop::collection::vec(0u64..2000, 0..400)) {
            let mut s = SeqIntervals::new();
            let mut model = HashSet::new();
            for v in values {
                prop_assert_eq!(s.insert(v), model.insert(v), "insert({})", v);
            }
            for v in 0u64..2000 {
                prop_assert_eq!(s.contains(v), model.contains(&v));
            }
            prop_assert_eq!(s.value_count() as usize, model.len());
        }

        // Dense draws from a narrow range force heavy adjacent-run merging:
        // nearly every insert extends, prepends, or bridges existing runs.
        #[test]
        fn interval_set_adjacent_merge_matches_hashset(
            values in prop::collection::vec(0u64..64, 0..256)
        ) {
            let mut s = SeqIntervals::new();
            let mut model = HashSet::new();
            for v in values {
                prop_assert_eq!(s.insert(v), model.insert(v), "insert({})", v);
            }
            for v in 0u64..64 {
                prop_assert_eq!(s.contains(v), model.contains(&v));
            }
            prop_assert_eq!(s.value_count() as usize, model.len());
            // Invariant: runs are disjoint and non-adjacent, so the interval
            // count can never exceed the distinct-value count.
            prop_assert!(s.interval_count() <= model.len());
        }

        // Exercise both ends of the u64 domain, where `v + 1` can overflow.
        #[test]
        fn interval_set_u64_boundaries_match_hashset(
            values in prop::collection::vec(
                prop_oneof![0u64..16, (u64::MAX - 16)..=u64::MAX],
                0..128,
            )
        ) {
            let mut s = SeqIntervals::new();
            let mut model = HashSet::new();
            for v in values {
                prop_assert_eq!(s.insert(v), model.insert(v), "insert({})", v);
            }
            for v in 0u64..16 {
                prop_assert_eq!(s.contains(v), model.contains(&v));
            }
            for v in (u64::MAX - 16)..=u64::MAX {
                prop_assert_eq!(s.contains(v), model.contains(&v));
            }
            prop_assert_eq!(s.value_count() as usize, model.len());
        }
    }
}
