//! Hand-written SQL lexer.

use veridb_common::{Error, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (case preserved; keyword matching is
    /// case-insensitive).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (with `''` escaping).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `.`
    Dot,
}

impl Token {
    /// Keyword test, case-insensitive.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize `sql`.
pub fn lex(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '-' => {
                // `--` line comment
                if bytes.get(i + 1) == Some(&b'-') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    out.push(Token::Minus);
                    i += 1;
                }
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(Error::Parse(format!("unexpected '!' at byte {i}")));
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    out.push(Token::Le);
                    i += 2;
                }
                Some(b'>') => {
                    out.push(Token::Ne);
                    i += 2;
                }
                _ => {
                    out.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(Error::Parse("unterminated string literal".into())),
                        Some(b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && bytes[i + 1].is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &sql[start..i];
                if is_float {
                    out.push(Token::Float(
                        text.parse()
                            .map_err(|e| Error::Parse(format!("bad float {text}: {e}")))?,
                    ));
                } else {
                    out.push(Token::Int(
                        text.parse()
                            .map_err(|e| Error::Parse(format!("bad integer {text}: {e}")))?,
                    ));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'#')
                {
                    i += 1;
                }
                out.push(Token::Ident(sql[start..i].to_owned()));
            }
            other => {
                return Err(Error::Parse(format!(
                    "unexpected character {other:?} at byte {i}"
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_select() {
        let toks = lex("SELECT a.x, 42, 1.5 FROM t WHERE x <= 'it''s' AND y <> 3").unwrap();
        assert!(toks.contains(&Token::Ident("SELECT".into())));
        assert!(toks.contains(&Token::Int(42)));
        assert!(toks.contains(&Token::Float(1.5)));
        assert!(toks.contains(&Token::Str("it's".into())));
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Ne));
        assert!(toks.contains(&Token::Dot));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("SELECT x -- trailing comment\nFROM t").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("SELECT".into()),
                Token::Ident("x".into()),
                Token::Ident("FROM".into()),
                Token::Ident("t".into()),
            ]
        );
    }

    #[test]
    fn operators_and_negatives() {
        let toks = lex("a >= -5 != <>").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("a".into()),
                Token::Ge,
                Token::Minus,
                Token::Int(5),
                Token::Ne,
                Token::Ne,
            ]
        );
    }

    #[test]
    fn errors_on_garbage() {
        assert!(lex("select @").is_err());
        assert!(lex("'unterminated").is_err());
        assert!(lex("a ! b").is_err());
    }

    #[test]
    fn tpch_style_identifiers() {
        // TPC-H literals like Brand#12 appear inside strings; `#` also
        // allowed inside identifiers for robustness.
        let toks = lex("p_brand = 'Brand#12'").unwrap();
        assert_eq!(toks[2], Token::Str("Brand#12".into()));
    }
}
