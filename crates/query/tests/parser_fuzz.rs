//! Robustness tests for the SQL front end: the parser and lexer must never
//! panic, whatever bytes arrive — the portal feeds them attacker-supplied
//! strings (MAC'd, but a compromised *client* is still untrusted input).

use proptest::prelude::*;
use veridb_query::parser::parse;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary unicode strings: parse returns Ok or Err, never panics.
    #[test]
    fn parser_never_panics_on_arbitrary_strings(s in "\\PC*") {
        let _ = parse(&s);
    }

    /// ASCII soup biased toward SQL-ish tokens.
    #[test]
    fn parser_never_panics_on_sql_soup(
        parts in prop::collection::vec(
            prop_oneof![
                Just("SELECT".to_string()),
                Just("FROM".to_string()),
                Just("WHERE".to_string()),
                Just("GROUP BY".to_string()),
                Just("ORDER BY".to_string()),
                Just("JOIN".to_string()),
                Just("ON".to_string()),
                Just("AND".to_string()),
                Just("OR".to_string()),
                Just("NOT".to_string()),
                Just("IN".to_string()),
                Just("BETWEEN".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(",".to_string()),
                Just("*".to_string()),
                Just("=".to_string()),
                Just("<=".to_string()),
                Just("'str'".to_string()),
                Just("42".to_string()),
                Just("1.5".to_string()),
                Just("tbl".to_string()),
                Just("col".to_string()),
                Just("SUM".to_string()),
                Just("COUNT".to_string()),
            ],
            0..24,
        )
    ) {
        let sql = parts.join(" ");
        let _ = parse(&sql);
    }

    /// Structured SELECTs generated from a mini-grammar always parse.
    #[test]
    fn generated_selects_parse(
        cols in prop::collection::vec("c_[a-z0-9_]{0,8}", 1..4),
        table in "t_[a-z0-9_]{0,8}",
        lit in any::<i32>(),
        use_where in any::<bool>(),
        use_order in any::<bool>(),
        limit in prop::option::of(0u32..1000),
    ) {
        let mut sql = format!("SELECT {} FROM {}", cols.join(", "), table);
        if use_where {
            sql.push_str(&format!(" WHERE {} >= {}", cols[0], lit));
        }
        if use_order {
            sql.push_str(&format!(" ORDER BY {}", cols[0]));
        }
        if let Some(n) = limit {
            sql.push_str(&format!(" LIMIT {n}"));
        }
        parse(&sql).expect("generated SELECT must parse");
    }

    /// Expression nesting (parens, unary minus) does not overflow or panic
    /// at reasonable depth.
    #[test]
    fn nested_expressions_parse(depth in 0usize..64) {
        let sql = format!(
            "SELECT {}x{} FROM t",
            "(".repeat(depth),
            ")".repeat(depth)
        );
        parse(&sql).expect("balanced parens parse");
        // NB: "--" starts a line comment, so separate the unary minuses.
        let sql = format!("SELECT {}1 FROM t", "- ".repeat(depth));
        parse(&sql).expect("unary chains parse");
    }
}

#[test]
fn statement_kinds_round_trip_through_parse() {
    for sql in [
        "CREATE TABLE t (a INT PRIMARY KEY, b TEXT, c FLOAT CHAINED)",
        "DROP TABLE t",
        "INSERT INTO t VALUES (1, 'x', 2.5)",
        "UPDATE t SET b = 'y' WHERE a = 1",
        "DELETE FROM t WHERE a = 1",
        "SELECT DISTINCT a FROM t GROUP BY a HAVING COUNT(*) > 1 ORDER BY a LIMIT 5",
        "EXPLAIN SELECT * FROM t",
        "SELECT a FROM t WHERE a IN (SELECT a FROM t)",
        "SELECT (SELECT MAX(a) FROM t) FROM t",
        "SELECT a FROM t WHERE a BETWEEN 1 AND 2 OR NOT (b = 'z')",
        "SELECT * FROM t WHERE d >= DATE '1994-01-01'",
    ] {
        veridb_query::parser::parse(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
    }
}

#[test]
fn deeply_malformed_inputs_error_cleanly() {
    for sql in [
        "",
        ";",
        "(((((",
        "SELECT",
        "SELECT )",
        "SELECT * FROM",
        "SELECT * FROM t WHERE (a = 1",
        "INSERT INTO t VALUES (",
        "CREATE TABLE (a INT)",
        "UPDATE SET a = 1",
        "SELECT * FROM t ORDER",
        "SELECT * FROM t LIMIT 'x'",
        "SELECT 'unterminated FROM t",
        "\u{0}\u{1}\u{2}",
    ] {
        assert!(
            veridb_query::parser::parse(sql).is_err(),
            "must reject: {sql:?}"
        );
    }
}
