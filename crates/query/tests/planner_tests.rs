//! Planner-behavior tests: access-path selection, bound tightening,
//! residual re-application, and OR-factor hoisting — checked both through
//! EXPLAIN plan shapes and through answer correctness.

use std::sync::Arc;
use veridb_common::{Value, VeriDbConfig};
use veridb_enclave::Enclave;
use veridb_query::{PlanOptions, QueryEngine};
use veridb_storage::Catalog;
use veridb_wrcm::VerifiedMemory;

fn setup() -> Arc<QueryEngine> {
    let enclave = Enclave::create("planner-test", 1 << 24, [17u8; 32]);
    let mut cfg = VeriDbConfig::default();
    cfg.verify_every_ops = None;
    let mem = VerifiedMemory::from_config(enclave, &cfg);
    let eng = Arc::new(QueryEngine::new(Arc::new(Catalog::new(mem))));
    eng.execute("CREATE TABLE m (id INT PRIMARY KEY, ts INT CHAINED, grp INT CHAINED, note TEXT)")
        .unwrap();
    for i in 0..100 {
        eng.execute(&format!(
            "INSERT INTO m VALUES ({i}, {}, {}, 'n{i}')",
            1000 + i,
            i % 7
        ))
        .unwrap();
    }
    eng
}

fn plan(eng: &QueryEngine, sql: &str) -> String {
    eng.explain(sql, &PlanOptions::default()).unwrap()
}

fn ids(eng: &QueryEngine, sql: &str) -> Vec<i64> {
    eng.execute(sql)
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].as_i64().unwrap())
        .collect()
}

#[test]
fn bounds_tighten_to_the_narrowest_range() {
    let eng = setup();
    // id > 10 AND id > 50 AND id <= 60 AND id <= 70 → (50, 60]
    let sql = "SELECT id FROM m WHERE id > 10 AND id > 50 AND id <= 60 AND id <= 70";
    assert!(plan(&eng, sql).contains("RangeScan"), "{}", plan(&eng, sql));
    assert_eq!(ids(&eng, sql), (51..=60).collect::<Vec<_>>());
}

#[test]
fn flipped_literal_comparisons_push_down() {
    let eng = setup();
    // `50 < id` must behave exactly like `id > 50`.
    let sql = "SELECT id FROM m WHERE 50 < id AND 60 >= id";
    assert!(plan(&eng, sql).contains("RangeScan"), "{}", plan(&eng, sql));
    assert_eq!(ids(&eng, sql), (51..=60).collect::<Vec<_>>());
}

#[test]
fn contradictory_bounds_give_verified_empty() {
    let eng = setup();
    let sql = "SELECT id FROM m WHERE id > 60 AND id < 40";
    assert!(ids(&eng, sql).is_empty());
}

#[test]
fn equality_beats_range_in_access_path_choice() {
    let eng = setup();
    let sql = "SELECT id FROM m WHERE id = 42 AND id > 10";
    let p = plan(&eng, sql);
    assert!(p.contains("IndexSearch"), "{p}");
    assert_eq!(ids(&eng, sql), vec![42]);
}

#[test]
fn unchosen_chain_bounds_are_reapplied_as_residuals() {
    let eng = setup();
    // Bounds exist on two chained columns; one becomes the access path,
    // the other MUST still filter (as a residual).
    let sql = "SELECT id FROM m WHERE ts >= 1010 AND ts <= 1040 AND grp = 3";
    let got = ids(&eng, sql);
    let want: Vec<i64> = (10..=40).filter(|i| i % 7 == 3).collect();
    assert_eq!(got, want);

    // And the symmetric case.
    let sql = "SELECT id FROM m WHERE grp = 3 AND ts >= 1010 AND ts <= 1040";
    let mut got = ids(&eng, sql);
    got.sort_unstable();
    assert_eq!(got, want);
}

#[test]
fn non_chained_predicates_never_panic_the_pusher() {
    let eng = setup();
    let sql = "SELECT id FROM m WHERE note = 'n33'";
    let p = plan(&eng, sql);
    assert!(p.contains("SeqScan"), "{p}");
    assert_eq!(ids(&eng, sql), vec![33]);
}

#[test]
fn or_common_factor_hoisting_enables_real_joins() {
    let eng = setup();
    eng.execute("CREATE TABLE dim (id INT PRIMARY KEY, tag TEXT)")
        .unwrap();
    for i in 0..7 {
        eng.execute(&format!("INSERT INTO dim VALUES ({i}, 'tag{i}')"))
            .unwrap();
    }
    // The equi condition lives inside both OR branches; hoisting lets the
    // planner pick an index nested-loop join instead of a cross product.
    let sql = "SELECT m.id FROM m, dim WHERE \
               (dim.id = m.grp AND m.ts < 1050 AND dim.tag = 'tag3') OR \
               (dim.id = m.grp AND m.ts >= 1050 AND dim.tag = 'tag5')";
    let p = eng.explain(sql, &PlanOptions::default()).unwrap();
    assert!(
        p.contains("IndexNestedLoopJoin") || p.contains("HashJoin"),
        "hoisting failed, plan:\n{p}"
    );
    let mut got = ids(&eng, sql);
    got.sort_unstable();
    let want: Vec<i64> = (0..100)
        .filter(|i| {
            let ts = 1000 + i;
            let grp = i % 7;
            (grp == 3 && ts < 1050) || (grp == 5 && ts >= 1050)
        })
        .collect();
    assert_eq!(got, want);
}

#[test]
fn between_pushes_both_bounds() {
    let eng = setup();
    let sql = "SELECT id FROM m WHERE ts BETWEEN 1020 AND 1030";
    let p = plan(&eng, sql);
    assert!(p.contains("RangeScan(chain 1)"), "{p}");
    assert_eq!(ids(&eng, sql), (20..=30).collect::<Vec<_>>());
}

#[test]
fn order_by_position_and_name() {
    let eng = setup();
    let r = eng
        .execute("SELECT grp, COUNT(*) AS n FROM m GROUP BY grp ORDER BY 2 DESC, grp")
        .unwrap();
    // 100 rows over 7 groups: groups 0 and 1 have 15, rest 14.
    assert_eq!(r.rows[0][1], Value::Int(15));
    assert!(r.rows[6][1] == Value::Int(14));
    // By alias.
    let r2 = eng
        .execute("SELECT grp, COUNT(*) AS n FROM m GROUP BY grp ORDER BY n DESC, grp")
        .unwrap();
    assert_eq!(r.rows, r2.rows);
}

#[test]
fn aggregate_without_group_by_rejects_bare_columns() {
    let eng = setup();
    assert!(eng.execute("SELECT id, COUNT(*) FROM m").is_err());
    assert!(eng
        .execute("SELECT grp, COUNT(*) FROM m GROUP BY ts")
        .is_err());
}

#[test]
fn duplicate_aliases_rejected() {
    let eng = setup();
    assert!(eng
        .execute("SELECT * FROM m a, m a WHERE a.id = a.id")
        .is_err());
}
